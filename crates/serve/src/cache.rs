//! The daemon's two-level answer cache.
//!
//! **Level 1 — [`ConfigCache`].**  Keyed by the [`WireScenario`]
//! fingerprint (the same [`star_exec::RunFingerprint`] hex that stamps
//! shard partial headers): one entry per configuration ever queried,
//! holding the rebuilt [`Scenario`] and the `Arc`-shared
//! [`ScenarioSpectrum`].  Entries of different configurations on the same
//! network (`S7` under two disciplines, say) share one topology value and
//! one spectrum build, so the expensive half of a solve is paid once per
//! *network*, not once per configuration — let alone per query.  The
//! configuration space is small (four families × tabled sizes × four
//! disciplines × a handful of `V`/`M` values), so this level is unbounded.
//!
//! **Level 2 — [`SolveCache`].**  Keyed by (fingerprint hex, exact rate
//! bits): the canonical encoded answer of every solve, with a per-entry hit
//! counter, under an LRU byte budget.  Beyond verbatim hits it keeps, per
//! configuration, the rate-ordered chain of converged warm-start seeds —
//! exactly the value [`star_workloads::ModelBackend`] chains through a
//! batch sweep — so a `warm`-mode miss can start its fixed point from the
//! **nearest cached rate** instead of from cold.  Entries remember whether
//! they were solved cold (`exact`) or warm-started; `exact`-mode queries
//! are only ever answered by exact entries, keeping the daemon's
//! byte-identity contract intact.
//!
//! Positive finite `f64` rates are order-isomorphic to their IEEE-754 bit
//! patterns, which is what lets the seed chain live in a `BTreeMap<u64, _>`
//! and answer nearest-rate lookups with two bounded range scans.
//!
//! **Concurrency.**  Both levels own their synchronisation.  The config
//! cache is read-mostly (six-ish configurations serve millions of queries),
//! so [`ConfigCache::resolve`] takes a shared read lock on the hit path and
//! upgrades to a write lock only to build a new entry.  The solve cache is
//! write-heavy (every miss inserts), so [`ShardedSolveCache`] splits it into
//! independently locked shards keyed by the fingerprint hash — all rates of
//! one configuration land on one shard, keeping its warm-seed chain intact —
//! each with its own byte budget and counters that [`ShardedSolveCache::stats`]
//! aggregates losslessly.  Shards also run **single-flight admission**
//! ([`ShardedSolveCache::admit`]): the first miss on a (configuration, rate,
//! solve-kind) key becomes the *leader* and owes the solve; concurrent
//! misses on the same key become *followers* that wait on the leader's
//! [`Flight`] instead of racing redundant solves through the shard lock.

use std::collections::{BTreeMap, HashMap};

use serde_json::Value;
use star_workloads::{Scenario, ScenarioSpectrum, WireScenario};

use crate::protocol::SolveMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

/// One resolved configuration: the rebuilt scenario plus its shared
/// spectrum, ready to answer any rate.
#[derive(Debug)]
pub struct ConfigEntry {
    /// The configuration fingerprint, as the canonical 16-hex-digit string.
    pub fingerprint: String,
    /// The batch scenario this configuration denotes.
    pub scenario: Scenario,
    /// The topology's spectrum build, shared by every query and every
    /// configuration on the same network.
    pub spectrum: Arc<ScenarioSpectrum>,
}

/// The maps behind [`ConfigCache`], guarded together by one `RwLock`.
#[derive(Debug, Default)]
struct ConfigMaps {
    by_fingerprint: HashMap<String, Arc<ConfigEntry>>,
    /// First scenario seen per network label, holding the shared topology
    /// `Arc`, next to the network's one spectrum build.
    by_network: HashMap<String, (Scenario, Arc<ScenarioSpectrum>)>,
}

/// Level 1: fingerprint → configuration, with per-network sharing of the
/// topology value and spectrum build.
///
/// Synchronisation is internal and read-mostly: a hit takes only a shared
/// read lock, so concurrent connections resolving known configurations
/// never serialise on this level; a miss upgrades to the write lock (with a
/// double-check, so racing first sights build once) and pays the spectrum
/// build there — rare, the configuration space is tiny.
#[derive(Debug, Default)]
pub struct ConfigCache {
    maps: RwLock<ConfigMaps>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConfigCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The configuration for a wire scenario, building topology and
    /// spectrum only on first sight of the network.
    pub fn resolve(&self, wire: &WireScenario) -> Arc<ConfigEntry> {
        let fingerprint = wire.fingerprint().to_hex();
        if let Some(entry) =
            self.maps.read().expect("config cache poisoned").by_fingerprint.get(&fingerprint)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(entry);
        }
        let mut maps = self.maps.write().expect("config cache poisoned");
        // double-check: another connection may have built it while this one
        // waited for the write lock
        if let Some(entry) = maps.by_fingerprint.get(&fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(entry);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let label = wire.network_label();
        let (base, spectrum) = maps.by_network.entry(label).or_insert_with(|| {
            let scenario = wire.scenario();
            let spectrum = Arc::new(ScenarioSpectrum::build(&scenario));
            (scenario, spectrum)
        });
        let entry = Arc::new(ConfigEntry {
            fingerprint: fingerprint.clone(),
            scenario: wire.scenario_on(base.topology()),
            spectrum: Arc::clone(spectrum),
        });
        maps.by_fingerprint.insert(fingerprint, Arc::clone(&entry));
        entry
    }

    /// Counters as a JSON object (`entries`/`networks`/`hits`/`misses`).
    #[must_use]
    pub fn stats(&self) -> Value {
        let maps = self.maps.read().expect("config cache poisoned");
        Value::Object(vec![
            ("entries".to_string(), Value::from(maps.by_fingerprint.len())),
            ("networks".to_string(), Value::from(maps.by_network.len())),
            ("hits".to_string(), Value::from(self.hits.load(Ordering::Relaxed))),
            ("misses".to_string(), Value::from(self.misses.load(Ordering::Relaxed))),
        ])
    }
}

/// What a [`SolveCache::lookup`] answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// The exact (configuration, rate) pair is cached and admissible for
    /// the requested mode: the stored answer, verbatim, with the entry's
    /// hit count after this hit.
    Hit {
        /// The canonical encoded answer.
        payload: String,
        /// Times this entry has been served, including now.
        hits: u64,
    },
    /// No admissible entry; solve it.  `warm`-mode misses carry the
    /// converged seed of the nearest cached rate of the same
    /// configuration, when one exists.
    Miss {
        /// Warm-start seed from the nearest cached chain point.
        warm_seed: Option<f64>,
    },
}

#[derive(Debug)]
struct SolveEntry {
    payload: String,
    exact: bool,
    hits: u64,
    stamp: u64,
}

type SolveKey = (String, u64);

/// Level 2: the LRU-budgeted answer cache with the per-configuration
/// warm-seed chain.  See the [module docs](self).
#[derive(Debug)]
pub struct SolveCache {
    budget_bytes: usize,
    used_bytes: usize,
    entries: HashMap<SolveKey, SolveEntry>,
    /// Recency order: stamp → key (stamps are unique and monotonic).
    lru: BTreeMap<u64, SolveKey>,
    /// Per-fingerprint chain of converged warm seeds, rate-ordered via the
    /// positive-float/bits isomorphism.
    seeds: HashMap<String, BTreeMap<u64, f64>>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    seeded: u64,
    evictions: u64,
}

/// Approximate heap cost of one cached solve, for the byte budget: the two
/// key strings, the payload, the seed-chain slot and map overheads.
fn entry_cost(key: &SolveKey, payload: &str) -> usize {
    2 * key.0.len() + payload.len() + 96
}

impl SolveCache {
    /// A cache evicting least-recently-used answers beyond `budget_bytes`
    /// of (approximate) heap use.  The most recent answer always stays,
    /// however small the budget.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            seeds: HashMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            seeded: 0,
            evictions: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Looks up (configuration, rate) for the given mode, counting the
    /// outcome and refreshing recency on hits.
    pub fn lookup(&mut self, fingerprint: &str, rate: f64, mode: SolveMode) -> Lookup {
        let key: SolveKey = (fingerprint.to_string(), rate.to_bits());
        let fresh = self.stamp();
        if let Some(entry) = self.entries.get_mut(&key) {
            // warm-solved answers sit within solver tolerance of the exact
            // ones — good enough for warm mode, inadmissible for exact mode
            if entry.exact || mode == SolveMode::Warm {
                entry.hits += 1;
                self.hits += 1;
                let old = std::mem::replace(&mut entry.stamp, fresh);
                let payload = entry.payload.clone();
                let hits = entry.hits;
                self.lru.remove(&old);
                self.lru.insert(fresh, key);
                return Lookup::Hit { payload, hits };
            }
        }
        self.misses += 1;
        let warm_seed = if mode == SolveMode::Warm {
            let seed = self.nearest_seed(fingerprint, rate);
            if seed.is_some() {
                self.seeded += 1;
            }
            seed
        } else {
            None
        };
        Lookup::Miss { warm_seed }
    }

    /// The converged seed of the cached rate nearest to `rate` for this
    /// configuration, if any rate of it is cached at all.
    fn nearest_seed(&self, fingerprint: &str, rate: f64) -> Option<f64> {
        let chain = self.seeds.get(fingerprint)?;
        let bits = rate.to_bits();
        let below = chain.range(..=bits).next_back();
        let above = chain.range(bits..).next();
        match (below, above) {
            (Some((&b, &s_b)), Some((&a, &s_a))) => {
                let d_b = (rate - f64::from_bits(b)).abs();
                let d_a = (f64::from_bits(a) - rate).abs();
                Some(if d_b <= d_a { s_b } else { s_a })
            }
            (Some((_, &s)), None) | (None, Some((_, &s))) => Some(s),
            (None, None) => None,
        }
    }

    /// Stores a solved answer: the canonical payload, whether it was
    /// solved cold (`exact`), and its converged warm seed for the chain
    /// (non-finite seeds — saturated points — are kept out of the chain;
    /// `solve_from` would ignore them anyway).  Re-inserting a key
    /// replaces the old entry; an exact re-solve upgrades a warm one.
    pub fn insert(
        &mut self,
        fingerprint: &str,
        rate: f64,
        payload: String,
        exact: bool,
        warm_seed: f64,
    ) {
        let key: SolveKey = (fingerprint.to_string(), rate.to_bits());
        let cost = entry_cost(&key, &payload);
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.stamp);
            self.used_bytes -= entry_cost(&key, &old.payload);
        }
        if warm_seed.is_finite() {
            self.seeds.entry(key.0.clone()).or_default().insert(key.1, warm_seed);
        }
        let stamp = self.stamp();
        self.entries.insert(key.clone(), SolveEntry { payload, exact, hits: 0, stamp });
        self.lru.insert(stamp, key);
        self.used_bytes += cost;
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes && self.entries.len() > 1 {
            let (&stamp, _) = self.lru.iter().next().expect("lru tracks every entry");
            let key = self.lru.remove(&stamp).expect("stamp just observed");
            let entry = self.entries.remove(&key).expect("entries track every lru stamp");
            self.used_bytes -= entry_cost(&key, &entry.payload);
            if let Some(chain) = self.seeds.get_mut(&key.0) {
                chain.remove(&key.1);
                if chain.is_empty() {
                    self.seeds.remove(&key.0);
                }
            }
            self.evictions += 1;
        }
    }

    /// Number of cached answers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters behind [`Self::stats`], as plain numbers — what the
    /// sharded cache sums across shards.
    #[must_use]
    pub fn counters(&self) -> SolveCounters {
        SolveCounters {
            entries: self.entries.len() as u64,
            bytes: self.used_bytes as u64,
            budget_bytes: self.budget_bytes as u64,
            hits: self.hits,
            misses: self.misses,
            seeded: self.seeded,
            evictions: self.evictions,
        }
    }

    /// Counters as a JSON object (`entries`/`bytes`/`budget_bytes`/`hits`/
    /// `misses`/`seeded`/`evictions`).
    #[must_use]
    pub fn stats(&self) -> Value {
        self.counters().to_value()
    }
}

/// One solve-cache level's counters as plain numbers: a single shard's, or
/// (summed field by field) the whole sharded cache's.  The aggregate is
/// lossless — every counter is a sum, `entries`/`bytes` partition over
/// shards by key, and `budget_bytes` sums to the configured total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounters {
    /// Cached answers held.
    pub entries: u64,
    /// Approximate heap bytes used.
    pub bytes: u64,
    /// Byte budget.
    pub budget_bytes: u64,
    /// Lookups answered verbatim.
    pub hits: u64,
    /// Lookups that missed (including ones later coalesced onto a flight).
    pub misses: u64,
    /// Warm misses that carried a nearest-rate seed.
    pub seeded: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
}

impl SolveCounters {
    /// Field-by-field sum.
    #[must_use]
    pub fn merge(self, other: Self) -> Self {
        Self {
            entries: self.entries + other.entries,
            bytes: self.bytes + other.bytes,
            budget_bytes: self.budget_bytes + other.budget_bytes,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            seeded: self.seeded + other.seeded,
            evictions: self.evictions + other.evictions,
        }
    }

    /// The counters as the JSON object the `stats` wire reply carries.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("entries".to_string(), Value::from(self.entries)),
            ("bytes".to_string(), Value::from(self.bytes)),
            ("budget_bytes".to_string(), Value::from(self.budget_bytes)),
            ("hits".to_string(), Value::from(self.hits)),
            ("misses".to_string(), Value::from(self.misses)),
            ("seeded".to_string(), Value::from(self.seeded)),
            ("evictions".to_string(), Value::from(self.evictions)),
        ])
    }
}

/// One in-flight solve's key: (fingerprint hex, rate bits, solved-cold?).
/// Cold flights (exact-mode misses, and warm-mode misses with no seed to
/// chain from) and seeded warm flights of the same (configuration, rate)
/// are distinct — they run different solver paths and admit differently —
/// so they never coalesce onto each other.
type FlightKey = (String, u64, bool);

#[derive(Debug)]
enum FlightState {
    /// The leader is still solving.
    Pending,
    /// The leader published its canonical encoded answer.
    Done(String),
    /// The leader died (panic / dropped token) without an answer.
    Aborted,
}

/// A single-flight rendezvous: one leader solves, any number of followers
/// [`wait`](Self::wait) for the published answer instead of re-solving.
#[derive(Debug)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self { state: Mutex::new(FlightState::Pending), cv: Condvar::new() }
    }

    fn is_pending(&self) -> bool {
        matches!(*self.state.lock().expect("flight poisoned"), FlightState::Pending)
    }

    /// Resolves the flight exactly once; later calls are no-ops.
    fn publish(&self, payload: Option<String>) {
        let mut state = self.state.lock().expect("flight poisoned");
        if matches!(*state, FlightState::Pending) {
            *state = match payload {
                Some(payload) => FlightState::Done(payload),
                None => FlightState::Aborted,
            };
            self.cv.notify_all();
        }
    }

    /// Blocks until the leader resolves the flight.  `None` means the
    /// leader aborted: the follower must fall back to solving (cold)
    /// itself.
    #[must_use]
    pub fn wait(&self) -> Option<String> {
        let mut state = self.state.lock().expect("flight poisoned");
        loop {
            match &*state {
                FlightState::Pending => state = self.cv.wait(state).expect("flight poisoned"),
                FlightState::Done(payload) => return Some(payload.clone()),
                FlightState::Aborted => return None,
            }
        }
    }
}

/// The leader's obligation to resolve its [`Flight`].  Pass it back to
/// [`ShardedSolveCache::complete`] with the solved answer; dropping it
/// without completing (a panicking solve, say) aborts the flight so
/// followers unblock and self-solve instead of hanging forever.
#[derive(Debug)]
pub struct FlightToken {
    key: FlightKey,
    flight: Arc<Flight>,
    done: bool,
}

impl Drop for FlightToken {
    fn drop(&mut self) {
        if !self.done {
            self.flight.publish(None);
        }
    }
}

/// What [`ShardedSolveCache::admit`] decided for one query.
#[derive(Debug)]
pub enum Admission {
    /// Cached: the stored answer, verbatim.
    Hit {
        /// The canonical encoded answer.
        payload: String,
        /// Times this entry has been served, including now.
        hits: u64,
    },
    /// First miss on this (configuration, rate, kind): the caller owes the
    /// solve and must [`complete`](ShardedSolveCache::complete) the token.
    Lead {
        /// The obligation to publish the answer (or abort on drop).
        token: FlightToken,
        /// Warm-start seed from the nearest cached chain point, for
        /// seeded warm-mode solves.
        warm_seed: Option<f64>,
    },
    /// Another caller is already solving this exact key: wait on its
    /// flight instead of re-solving.
    Follow {
        /// The leader's flight; [`Flight::wait`] yields the answer.
        flight: Arc<Flight>,
        /// Whether the joined flight solves cold (exact) rather than from
        /// a warm seed.
        cold: bool,
    },
}

/// One shard: a [`SolveCache`] plus its in-flight solves, under one lock,
/// with admission counters.
#[derive(Debug)]
struct ShardInner {
    cache: SolveCache,
    flights: HashMap<FlightKey, Arc<Flight>>,
    /// Answers stored (via flights, prewarming, or fallback inserts).
    inserted: u64,
    /// Misses that joined an existing flight instead of re-solving.
    coalesced: u64,
}

#[derive(Debug)]
struct Shard {
    inner: Mutex<ShardInner>,
    /// Lock acquisitions that found the shard lock already held.
    contended: AtomicU64,
}

impl Shard {
    fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(ShardInner {
                cache: SolveCache::new(budget_bytes),
                flights: HashMap::new(),
                inserted: 0,
                coalesced: 0,
            }),
            contended: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ShardInner> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock().expect("solve shard poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(poison)) => {
                panic!("solve shard poisoned: {poison}")
            }
        }
    }
}

/// Level 2, scaled out: N independently locked [`SolveCache`] shards with
/// single-flight admission.  The fingerprint hash picks the shard, so all
/// rates of one configuration share a shard and its warm-seed chain stays
/// whole; the total byte budget splits evenly across shards (each shard
/// runs its own LRU within `budget / N`).  See the [module docs](self).
#[derive(Debug)]
pub struct ShardedSolveCache {
    shards: Vec<Shard>,
}

impl ShardedSolveCache {
    /// `shards` independently locked shards (at least one) splitting
    /// `budget_bytes` evenly.
    #[must_use]
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = budget_bytes.div_ceil(shards);
        Self { shards: (0..shards).map(|_| Shard::new(per_shard)).collect() }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// FNV-1a over the fingerprint hex — stable, dependency-free, and
    /// well mixed over the 16-hex-digit alphabet.
    fn shard_index(&self, fingerprint: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in fingerprint.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    fn shard(&self, fingerprint: &str) -> &Shard {
        &self.shards[self.shard_index(fingerprint)]
    }

    /// Admits one query: a cache hit answers verbatim; the first miss on a
    /// (configuration, rate, kind) key becomes the leader and owes the
    /// solve; concurrent misses on the same key follow the leader's
    /// flight.  Atomic per key — exactly one caller holds a live
    /// [`FlightToken`] at a time.
    pub fn admit(&self, fingerprint: &str, rate: f64, mode: SolveMode) -> Admission {
        let mut inner = self.shard(fingerprint).lock();
        match inner.cache.lookup(fingerprint, rate, mode) {
            Lookup::Hit { payload, hits } => Admission::Hit { payload, hits },
            Lookup::Miss { warm_seed } => {
                let cold = warm_seed.is_none();
                let key: FlightKey = (fingerprint.to_string(), rate.to_bits(), cold);
                if let Some(flight) = inner.flights.get(&key) {
                    // a flight whose leader aborted stays in the map until
                    // someone re-misses; that someone replaces it below
                    if flight.is_pending() {
                        let flight = Arc::clone(flight);
                        inner.coalesced += 1;
                        return Admission::Follow { flight, cold };
                    }
                }
                let flight = Arc::new(Flight::new());
                inner.flights.insert(key.clone(), Arc::clone(&flight));
                Admission::Lead { token: FlightToken { key, flight, done: false }, warm_seed }
            }
        }
    }

    /// Stores the leader's answer, retires its flight, and wakes every
    /// follower with the same payload.  Cold flights store `exact`
    /// entries (admissible in both modes), seeded warm flights store warm
    /// ones.
    pub fn complete(&self, mut token: FlightToken, payload: String, warm_seed: f64) {
        let exact = token.key.2;
        {
            let mut inner = self.shard(&token.key.0).lock();
            let rate = f64::from_bits(token.key.1);
            inner.cache.insert(&token.key.0, rate, payload.clone(), exact, warm_seed);
            inner.inserted += 1;
            if inner.flights.get(&token.key).is_some_and(|f| Arc::ptr_eq(f, &token.flight)) {
                inner.flights.remove(&token.key);
            }
        }
        token.done = true;
        token.flight.publish(Some(payload));
    }

    /// Stores an answer outside any flight — prewarming, and followers
    /// falling back after an aborted flight.
    pub fn insert(&self, fingerprint: &str, rate: f64, payload: String, exact: bool, seed: f64) {
        let mut inner = self.shard(fingerprint).lock();
        inner.cache.insert(fingerprint, rate, payload, exact, seed);
        inner.inserted += 1;
    }

    /// Total cached answers across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().cache.len()).sum()
    }

    /// Whether nothing is cached anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Each shard's counters, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<SolveCounters> {
        self.shards.iter().map(|shard| shard.lock().cache.counters()).collect()
    }

    /// A consistent snapshot: locks every shard (in index order), sums the
    /// counters, and runs `with` while all shards are pinned — so a stats
    /// reply can combine this level with others without interleaving
    /// mid-update counts.  The JSON keeps the flat [`SolveCounters`]
    /// fields and adds `shards` / `inserted` / `coalesced` / `contended`.
    pub fn snapshot<T>(&self, with: impl FnOnce() -> T) -> (Value, T) {
        let guards: Vec<MutexGuard<'_, ShardInner>> = self.shards.iter().map(Shard::lock).collect();
        let extra = with();
        let mut total = SolveCounters::default();
        let mut inserted = 0u64;
        let mut coalesced = 0u64;
        for guard in &guards {
            total = total.merge(guard.cache.counters());
            inserted += guard.inserted;
            coalesced += guard.coalesced;
        }
        drop(guards);
        let contended: u64 =
            self.shards.iter().map(|shard| shard.contended.load(Ordering::Relaxed)).sum();
        let Value::Object(mut fields) = total.to_value() else {
            unreachable!("counters encode as an object")
        };
        fields.push(("shards".to_string(), Value::from(self.shards.len())));
        fields.push(("inserted".to_string(), Value::from(inserted)));
        fields.push(("coalesced".to_string(), Value::from(coalesced)));
        fields.push(("contended".to_string(), Value::from(contended)));
        (Value::Object(fields), extra)
    }

    /// Aggregate counters as a JSON object; see [`Self::snapshot`].
    #[must_use]
    pub fn stats(&self) -> Value {
        self.snapshot(|| ()).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::{Discipline, TopologyKind};

    fn wire(discipline: Discipline, vc: usize) -> WireScenario {
        WireScenario {
            kind: TopologyKind::Star,
            size: 5,
            discipline,
            virtual_channels: vc,
            message_length: 32,
        }
    }

    #[test]
    fn config_cache_shares_spectra_per_network_and_hits_per_fingerprint() {
        let cache = ConfigCache::new();
        let a = cache.resolve(&wire(Discipline::EnhancedNbc, 6));
        let b = cache.resolve(&wire(Discipline::EnhancedNbc, 6));
        assert!(Arc::ptr_eq(&a, &b), "same fingerprint must be one entry");
        let c = cache.resolve(&wire(Discipline::Nbc, 7));
        assert_ne!(a.fingerprint, c.fingerprint);
        // different configurations, one network: topology and spectrum shared
        assert!(Arc::ptr_eq(&a.spectrum, &c.spectrum));
        assert!(Arc::ptr_eq(&a.scenario.topology(), &c.scenario.topology()));
        let stats = cache.stats();
        assert_eq!(stats.get("entries").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("networks").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("misses").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn exact_entries_serve_both_modes_warm_entries_only_warm() {
        let mut cache = SolveCache::new(1 << 20);
        cache.insert("aaaa", 0.004, "{\"exact\":true}".to_string(), true, 40.0);
        cache.insert("aaaa", 0.005, "{\"warm\":true}".to_string(), false, 41.0);
        // exact entry: admissible everywhere, hit counter climbs
        assert_eq!(
            cache.lookup("aaaa", 0.004, SolveMode::Exact),
            Lookup::Hit { payload: "{\"exact\":true}".to_string(), hits: 1 }
        );
        assert_eq!(
            cache.lookup("aaaa", 0.004, SolveMode::Warm),
            Lookup::Hit { payload: "{\"exact\":true}".to_string(), hits: 2 }
        );
        // warm entry: never answers exact mode (and exact misses never
        // carry a seed — they must solve cold)
        assert_eq!(cache.lookup("aaaa", 0.005, SolveMode::Exact), Lookup::Miss { warm_seed: None });
        assert_eq!(
            cache.lookup("aaaa", 0.005, SolveMode::Warm),
            Lookup::Hit { payload: "{\"warm\":true}".to_string(), hits: 1 }
        );
        // an exact re-solve upgrades the entry in place
        cache.insert("aaaa", 0.005, "{\"exact\":2}".to_string(), true, 41.5);
        assert_eq!(
            cache.lookup("aaaa", 0.005, SolveMode::Exact),
            Lookup::Hit { payload: "{\"exact\":2}".to_string(), hits: 1 }
        );
    }

    #[test]
    fn warm_misses_seed_from_the_nearest_cached_rate() {
        let mut cache = SolveCache::new(1 << 20);
        assert_eq!(cache.lookup("f", 0.004, SolveMode::Warm), Lookup::Miss { warm_seed: None });
        cache.insert("f", 0.002, "a".to_string(), true, 20.0);
        cache.insert("f", 0.008, "b".to_string(), true, 80.0);
        // below, between (closer to each side), above — and other
        // fingerprints never leak their seeds
        assert_eq!(
            cache.lookup("f", 0.001, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(20.0) }
        );
        assert_eq!(
            cache.lookup("f", 0.003, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(20.0) }
        );
        assert_eq!(
            cache.lookup("f", 0.007, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(80.0) }
        );
        assert_eq!(
            cache.lookup("f", 0.020, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(80.0) }
        );
        assert_eq!(cache.lookup("g", 0.004, SolveMode::Warm), Lookup::Miss { warm_seed: None });
        // saturated answers (non-finite seeds) stay out of the chain
        cache.insert("f", 0.015, "sat".to_string(), true, f64::INFINITY);
        assert_eq!(
            cache.lookup("f", 0.014, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(80.0) }
        );
        let stats = cache.stats();
        assert_eq!(stats.get("seeded").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn lru_budget_evicts_cold_entries_first_and_keeps_the_newest() {
        let one = entry_cost(&("ffffffffffffffff".to_string(), 0), "x");
        let mut cache = SolveCache::new(3 * one + one / 2);
        cache.insert("ffffffffffffffff", 0.001, "x".to_string(), true, 1.0);
        cache.insert("ffffffffffffffff", 0.002, "x".to_string(), true, 2.0);
        cache.insert("ffffffffffffffff", 0.003, "x".to_string(), true, 3.0);
        assert_eq!(cache.len(), 3);
        // touch 0.001 so 0.002 is the least recently used…
        assert!(matches!(
            cache.lookup("ffffffffffffffff", 0.001, SolveMode::Exact),
            Lookup::Hit { .. }
        ));
        cache.insert("ffffffffffffffff", 0.004, "x".to_string(), true, 4.0);
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.lookup("ffffffffffffffff", 0.002, SolveMode::Exact),
            Lookup::Miss { warm_seed: None }
        );
        assert!(matches!(
            cache.lookup("ffffffffffffffff", 0.001, SolveMode::Exact),
            Lookup::Hit { .. }
        ));
        // …and the evicted entry's seed left the warm chain with it
        // (0.0015 now seeds from 0.001, not the evicted 0.002)
        assert_eq!(
            cache.lookup("ffffffffffffffff", 0.0015, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(1.0) }
        );
        // a budget below one entry still holds exactly the newest answer
        let mut tiny = SolveCache::new(1);
        tiny.insert("ffffffffffffffff", 0.001, "x".to_string(), true, 1.0);
        tiny.insert("ffffffffffffffff", 0.002, "y".to_string(), true, 2.0);
        assert_eq!(tiny.len(), 1);
        assert!(matches!(
            tiny.lookup("ffffffffffffffff", 0.002, SolveMode::Exact),
            Lookup::Hit { .. }
        ));
        assert!(tiny.stats().get("evictions").unwrap().as_u64().unwrap() >= 1);
        assert!(!tiny.is_empty());
    }

    /// 16-hex-digit fingerprints (the real key shape) that land on
    /// distinct shards of a 4-shard cache.
    fn distinct_shard_fingerprints(cache: &ShardedSolveCache, want: usize) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for i in 0..10_000u64 {
            let fp = format!("{i:016x}");
            if seen.insert(cache.shard_index(&fp)) {
                out.push(fp);
                if out.len() == want {
                    return out;
                }
            }
        }
        panic!("could not find {want} fingerprints on distinct shards");
    }

    #[test]
    fn sharded_budget_is_per_shard_and_stats_aggregate_losslessly() {
        let one = entry_cost(&("ffffffffffffffff".to_string(), 0), "x");
        // 4 shards, 2-entries-ish each: the whole cache could hold ~8, but
        // one configuration's shard alone holds only ~2
        let cache = ShardedSolveCache::new(4 * (2 * one + one / 2), 4);
        assert_eq!(cache.shard_count(), 4);
        let fps = distinct_shard_fingerprints(&cache, 2);
        for i in 0..4 {
            let rate = 0.001 * (i + 1) as f64;
            cache.insert(&fps[0], rate, "x".to_string(), true, rate);
        }
        // the overloaded shard evicted down to its own budget even though
        // the total budget had room to spare
        let per_shard = cache.shard_stats();
        let loaded = cache.shard_index(&fps[0]);
        assert_eq!(per_shard[loaded].entries, 2, "per-shard LRU holds ~2 entries");
        assert!(per_shard[loaded].evictions >= 2);
        cache.insert(&fps[1], 0.001, "x".to_string(), true, 0.001);
        assert!(matches!(
            cache.admit(&fps[1], 0.001, SolveMode::Exact),
            Admission::Hit { hits: 1, .. }
        ));
        // aggregate stats are exactly the field-by-field sum of the shards
        let sum =
            cache.shard_stats().into_iter().fold(SolveCounters::default(), SolveCounters::merge);
        let stats = cache.stats();
        for (key, got) in [
            ("entries", sum.entries),
            ("bytes", sum.bytes),
            ("budget_bytes", sum.budget_bytes),
            ("hits", sum.hits),
            ("misses", sum.misses),
            ("seeded", sum.seeded),
            ("evictions", sum.evictions),
        ] {
            assert_eq!(stats.get(key).unwrap().as_u64(), Some(got), "aggregate {key}");
        }
        assert_eq!(stats.get("shards").unwrap().as_u64(), Some(4));
        assert_eq!(stats.get("inserted").unwrap().as_u64(), Some(5));
        assert_eq!(cache.len(), sum.entries as usize);
        assert!(!cache.is_empty());
    }

    #[test]
    fn single_flight_race_two_threads_one_solve() {
        let cache = Arc::new(ShardedSolveCache::new(1 << 20, 4));
        let fp = "00000000000000aa";
        // leader admits first and holds its token across the follower's
        // admission — the deterministic version of two connections racing
        let Admission::Lead { token, warm_seed } = cache.admit(fp, 0.004, SolveMode::Exact) else {
            panic!("first miss must lead");
        };
        assert_eq!(warm_seed, None);
        let follower = {
            let cache = Arc::clone(&cache);
            let Admission::Follow { flight, cold: true } = cache.admit(fp, 0.004, SolveMode::Exact)
            else {
                panic!("concurrent same-key miss must follow, not re-solve");
            };
            std::thread::spawn(move || flight.wait())
        };
        cache.complete(token, "{\"answer\":1}".to_string(), 40.0);
        assert_eq!(follower.join().unwrap(), Some("{\"answer\":1}".to_string()));
        let stats = cache.stats();
        assert_eq!(stats.get("inserted").unwrap().as_u64(), Some(1), "exactly one solve stored");
        assert_eq!(stats.get("coalesced").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("entries").unwrap().as_u64(), Some(1));
        // and the answer now serves hits verbatim
        let Admission::Hit { payload, hits } = cache.admit(fp, 0.004, SolveMode::Exact) else {
            panic!("completed flight must have populated the cache");
        };
        assert_eq!((payload.as_str(), hits), ("{\"answer\":1}", 1));
    }

    #[test]
    fn aborted_leaders_unblock_followers_and_are_replaced() {
        let cache = ShardedSolveCache::new(1 << 20, 2);
        let fp = "00000000000000bb";
        let Admission::Lead { token, .. } = cache.admit(fp, 0.004, SolveMode::Exact) else {
            panic!("first miss must lead");
        };
        let Admission::Follow { flight, .. } = cache.admit(fp, 0.004, SolveMode::Exact) else {
            panic!("second miss must follow");
        };
        drop(token); // leader dies without an answer
        assert_eq!(flight.wait(), None, "followers get the abort, not a hang");
        // the stale aborted flight is replaced: the next miss leads again
        assert!(matches!(cache.admit(fp, 0.004, SolveMode::Exact), Admission::Lead { .. }));
    }

    #[test]
    fn cold_and_seeded_warm_flights_never_coalesce() {
        let cache = ShardedSolveCache::new(1 << 20, 2);
        let fp = "00000000000000cc";
        cache.insert(fp, 0.002, "near".to_string(), true, 20.0);
        let Admission::Lead { token: exact_token, warm_seed: None } =
            cache.admit(fp, 0.004, SolveMode::Exact)
        else {
            panic!("exact miss must lead cold");
        };
        // same (configuration, rate), warm mode with a seed: a different
        // flight key, so it leads its own solve instead of following the
        // cold one
        let Admission::Lead { token: warm_token, warm_seed: Some(seed) } =
            cache.admit(fp, 0.004, SolveMode::Warm)
        else {
            panic!("seeded warm miss must lead its own flight");
        };
        assert_eq!(seed, 20.0);
        cache.complete(warm_token, "warm".to_string(), 40.0);
        cache.complete(exact_token, "exact".to_string(), 40.0);
        // the exact entry (stored last) wins for both modes
        let Admission::Hit { payload, .. } = cache.admit(fp, 0.004, SolveMode::Exact) else {
            panic!("exact answer must be cached");
        };
        assert_eq!(payload, "exact");
    }
}
