//! The daemon's two-level answer cache.
//!
//! **Level 1 — [`ConfigCache`].**  Keyed by the [`WireScenario`]
//! fingerprint (the same [`star_exec::RunFingerprint`] hex that stamps
//! shard partial headers): one entry per configuration ever queried,
//! holding the rebuilt [`Scenario`] and the `Arc`-shared
//! [`ScenarioSpectrum`].  Entries of different configurations on the same
//! network (`S7` under two disciplines, say) share one topology value and
//! one spectrum build, so the expensive half of a solve is paid once per
//! *network*, not once per configuration — let alone per query.  The
//! configuration space is small (four families × tabled sizes × four
//! disciplines × a handful of `V`/`M` values), so this level is unbounded.
//!
//! **Level 2 — [`SolveCache`].**  Keyed by (fingerprint hex, exact rate
//! bits): the canonical encoded answer of every solve, with a per-entry hit
//! counter, under an LRU byte budget.  Beyond verbatim hits it keeps, per
//! configuration, the rate-ordered chain of converged warm-start seeds —
//! exactly the value [`star_workloads::ModelBackend`] chains through a
//! batch sweep — so a `warm`-mode miss can start its fixed point from the
//! **nearest cached rate** instead of from cold.  Entries remember whether
//! they were solved cold (`exact`) or warm-started; `exact`-mode queries
//! are only ever answered by exact entries, keeping the daemon's
//! byte-identity contract intact.
//!
//! Positive finite `f64` rates are order-isomorphic to their IEEE-754 bit
//! patterns, which is what lets the seed chain live in a `BTreeMap<u64, _>`
//! and answer nearest-rate lookups with two bounded range scans.

use std::collections::{BTreeMap, HashMap};

use serde_json::Value;
use star_workloads::{Scenario, ScenarioSpectrum, WireScenario};

use crate::protocol::SolveMode;
use std::sync::Arc;

/// One resolved configuration: the rebuilt scenario plus its shared
/// spectrum, ready to answer any rate.
#[derive(Debug)]
pub struct ConfigEntry {
    /// The configuration fingerprint, as the canonical 16-hex-digit string.
    pub fingerprint: String,
    /// The batch scenario this configuration denotes.
    pub scenario: Scenario,
    /// The topology's spectrum build, shared by every query and every
    /// configuration on the same network.
    pub spectrum: Arc<ScenarioSpectrum>,
}

/// Level 1: fingerprint → configuration, with per-network sharing of the
/// topology value and spectrum build.
#[derive(Debug, Default)]
pub struct ConfigCache {
    by_fingerprint: HashMap<String, Arc<ConfigEntry>>,
    /// First scenario seen per network label, holding the shared topology
    /// `Arc`, next to the network's one spectrum build.
    by_network: HashMap<String, (Scenario, Arc<ScenarioSpectrum>)>,
    hits: u64,
    misses: u64,
}

impl ConfigCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The configuration for a wire scenario, building topology and
    /// spectrum only on first sight of the network.
    pub fn resolve(&mut self, wire: &WireScenario) -> Arc<ConfigEntry> {
        let fingerprint = wire.fingerprint().to_hex();
        if let Some(entry) = self.by_fingerprint.get(&fingerprint) {
            self.hits += 1;
            return Arc::clone(entry);
        }
        self.misses += 1;
        let label = wire.network_label();
        let (base, spectrum) = self.by_network.entry(label).or_insert_with(|| {
            let scenario = wire.scenario();
            let spectrum = Arc::new(ScenarioSpectrum::build(&scenario));
            (scenario, spectrum)
        });
        let entry = Arc::new(ConfigEntry {
            fingerprint: fingerprint.clone(),
            scenario: wire.scenario_on(base.topology()),
            spectrum: Arc::clone(spectrum),
        });
        self.by_fingerprint.insert(fingerprint, Arc::clone(&entry));
        entry
    }

    /// Counters as a JSON object (`entries`/`networks`/`hits`/`misses`).
    #[must_use]
    pub fn stats(&self) -> Value {
        Value::Object(vec![
            ("entries".to_string(), Value::from(self.by_fingerprint.len())),
            ("networks".to_string(), Value::from(self.by_network.len())),
            ("hits".to_string(), Value::from(self.hits)),
            ("misses".to_string(), Value::from(self.misses)),
        ])
    }
}

/// What a [`SolveCache::lookup`] answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// The exact (configuration, rate) pair is cached and admissible for
    /// the requested mode: the stored answer, verbatim, with the entry's
    /// hit count after this hit.
    Hit {
        /// The canonical encoded answer.
        payload: String,
        /// Times this entry has been served, including now.
        hits: u64,
    },
    /// No admissible entry; solve it.  `warm`-mode misses carry the
    /// converged seed of the nearest cached rate of the same
    /// configuration, when one exists.
    Miss {
        /// Warm-start seed from the nearest cached chain point.
        warm_seed: Option<f64>,
    },
}

#[derive(Debug)]
struct SolveEntry {
    payload: String,
    exact: bool,
    hits: u64,
    stamp: u64,
}

type SolveKey = (String, u64);

/// Level 2: the LRU-budgeted answer cache with the per-configuration
/// warm-seed chain.  See the [module docs](self).
#[derive(Debug)]
pub struct SolveCache {
    budget_bytes: usize,
    used_bytes: usize,
    entries: HashMap<SolveKey, SolveEntry>,
    /// Recency order: stamp → key (stamps are unique and monotonic).
    lru: BTreeMap<u64, SolveKey>,
    /// Per-fingerprint chain of converged warm seeds, rate-ordered via the
    /// positive-float/bits isomorphism.
    seeds: HashMap<String, BTreeMap<u64, f64>>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    seeded: u64,
    evictions: u64,
}

/// Approximate heap cost of one cached solve, for the byte budget: the two
/// key strings, the payload, the seed-chain slot and map overheads.
fn entry_cost(key: &SolveKey, payload: &str) -> usize {
    2 * key.0.len() + payload.len() + 96
}

impl SolveCache {
    /// A cache evicting least-recently-used answers beyond `budget_bytes`
    /// of (approximate) heap use.  The most recent answer always stays,
    /// however small the budget.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            seeds: HashMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            seeded: 0,
            evictions: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Looks up (configuration, rate) for the given mode, counting the
    /// outcome and refreshing recency on hits.
    pub fn lookup(&mut self, fingerprint: &str, rate: f64, mode: SolveMode) -> Lookup {
        let key: SolveKey = (fingerprint.to_string(), rate.to_bits());
        let fresh = self.stamp();
        if let Some(entry) = self.entries.get_mut(&key) {
            // warm-solved answers sit within solver tolerance of the exact
            // ones — good enough for warm mode, inadmissible for exact mode
            if entry.exact || mode == SolveMode::Warm {
                entry.hits += 1;
                self.hits += 1;
                let old = std::mem::replace(&mut entry.stamp, fresh);
                let payload = entry.payload.clone();
                let hits = entry.hits;
                self.lru.remove(&old);
                self.lru.insert(fresh, key);
                return Lookup::Hit { payload, hits };
            }
        }
        self.misses += 1;
        let warm_seed = if mode == SolveMode::Warm {
            let seed = self.nearest_seed(fingerprint, rate);
            if seed.is_some() {
                self.seeded += 1;
            }
            seed
        } else {
            None
        };
        Lookup::Miss { warm_seed }
    }

    /// The converged seed of the cached rate nearest to `rate` for this
    /// configuration, if any rate of it is cached at all.
    fn nearest_seed(&self, fingerprint: &str, rate: f64) -> Option<f64> {
        let chain = self.seeds.get(fingerprint)?;
        let bits = rate.to_bits();
        let below = chain.range(..=bits).next_back();
        let above = chain.range(bits..).next();
        match (below, above) {
            (Some((&b, &s_b)), Some((&a, &s_a))) => {
                let d_b = (rate - f64::from_bits(b)).abs();
                let d_a = (f64::from_bits(a) - rate).abs();
                Some(if d_b <= d_a { s_b } else { s_a })
            }
            (Some((_, &s)), None) | (None, Some((_, &s))) => Some(s),
            (None, None) => None,
        }
    }

    /// Stores a solved answer: the canonical payload, whether it was
    /// solved cold (`exact`), and its converged warm seed for the chain
    /// (non-finite seeds — saturated points — are kept out of the chain;
    /// `solve_from` would ignore them anyway).  Re-inserting a key
    /// replaces the old entry; an exact re-solve upgrades a warm one.
    pub fn insert(
        &mut self,
        fingerprint: &str,
        rate: f64,
        payload: String,
        exact: bool,
        warm_seed: f64,
    ) {
        let key: SolveKey = (fingerprint.to_string(), rate.to_bits());
        let cost = entry_cost(&key, &payload);
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.stamp);
            self.used_bytes -= entry_cost(&key, &old.payload);
        }
        if warm_seed.is_finite() {
            self.seeds.entry(key.0.clone()).or_default().insert(key.1, warm_seed);
        }
        let stamp = self.stamp();
        self.entries.insert(key.clone(), SolveEntry { payload, exact, hits: 0, stamp });
        self.lru.insert(stamp, key);
        self.used_bytes += cost;
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes && self.entries.len() > 1 {
            let (&stamp, _) = self.lru.iter().next().expect("lru tracks every entry");
            let key = self.lru.remove(&stamp).expect("stamp just observed");
            let entry = self.entries.remove(&key).expect("entries track every lru stamp");
            self.used_bytes -= entry_cost(&key, &entry.payload);
            if let Some(chain) = self.seeds.get_mut(&key.0) {
                chain.remove(&key.1);
                if chain.is_empty() {
                    self.seeds.remove(&key.0);
                }
            }
            self.evictions += 1;
        }
    }

    /// Number of cached answers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters as a JSON object (`entries`/`bytes`/`budget_bytes`/`hits`/
    /// `misses`/`seeded`/`evictions`).
    #[must_use]
    pub fn stats(&self) -> Value {
        Value::Object(vec![
            ("entries".to_string(), Value::from(self.entries.len())),
            ("bytes".to_string(), Value::from(self.used_bytes)),
            ("budget_bytes".to_string(), Value::from(self.budget_bytes)),
            ("hits".to_string(), Value::from(self.hits)),
            ("misses".to_string(), Value::from(self.misses)),
            ("seeded".to_string(), Value::from(self.seeded)),
            ("evictions".to_string(), Value::from(self.evictions)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::{Discipline, TopologyKind};

    fn wire(discipline: Discipline, vc: usize) -> WireScenario {
        WireScenario {
            kind: TopologyKind::Star,
            size: 5,
            discipline,
            virtual_channels: vc,
            message_length: 32,
        }
    }

    #[test]
    fn config_cache_shares_spectra_per_network_and_hits_per_fingerprint() {
        let mut cache = ConfigCache::new();
        let a = cache.resolve(&wire(Discipline::EnhancedNbc, 6));
        let b = cache.resolve(&wire(Discipline::EnhancedNbc, 6));
        assert!(Arc::ptr_eq(&a, &b), "same fingerprint must be one entry");
        let c = cache.resolve(&wire(Discipline::Nbc, 7));
        assert_ne!(a.fingerprint, c.fingerprint);
        // different configurations, one network: topology and spectrum shared
        assert!(Arc::ptr_eq(&a.spectrum, &c.spectrum));
        assert!(Arc::ptr_eq(&a.scenario.topology(), &c.scenario.topology()));
        let stats = cache.stats();
        assert_eq!(stats.get("entries").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("networks").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("misses").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn exact_entries_serve_both_modes_warm_entries_only_warm() {
        let mut cache = SolveCache::new(1 << 20);
        cache.insert("aaaa", 0.004, "{\"exact\":true}".to_string(), true, 40.0);
        cache.insert("aaaa", 0.005, "{\"warm\":true}".to_string(), false, 41.0);
        // exact entry: admissible everywhere, hit counter climbs
        assert_eq!(
            cache.lookup("aaaa", 0.004, SolveMode::Exact),
            Lookup::Hit { payload: "{\"exact\":true}".to_string(), hits: 1 }
        );
        assert_eq!(
            cache.lookup("aaaa", 0.004, SolveMode::Warm),
            Lookup::Hit { payload: "{\"exact\":true}".to_string(), hits: 2 }
        );
        // warm entry: never answers exact mode (and exact misses never
        // carry a seed — they must solve cold)
        assert_eq!(cache.lookup("aaaa", 0.005, SolveMode::Exact), Lookup::Miss { warm_seed: None });
        assert_eq!(
            cache.lookup("aaaa", 0.005, SolveMode::Warm),
            Lookup::Hit { payload: "{\"warm\":true}".to_string(), hits: 1 }
        );
        // an exact re-solve upgrades the entry in place
        cache.insert("aaaa", 0.005, "{\"exact\":2}".to_string(), true, 41.5);
        assert_eq!(
            cache.lookup("aaaa", 0.005, SolveMode::Exact),
            Lookup::Hit { payload: "{\"exact\":2}".to_string(), hits: 1 }
        );
    }

    #[test]
    fn warm_misses_seed_from_the_nearest_cached_rate() {
        let mut cache = SolveCache::new(1 << 20);
        assert_eq!(cache.lookup("f", 0.004, SolveMode::Warm), Lookup::Miss { warm_seed: None });
        cache.insert("f", 0.002, "a".to_string(), true, 20.0);
        cache.insert("f", 0.008, "b".to_string(), true, 80.0);
        // below, between (closer to each side), above — and other
        // fingerprints never leak their seeds
        assert_eq!(
            cache.lookup("f", 0.001, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(20.0) }
        );
        assert_eq!(
            cache.lookup("f", 0.003, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(20.0) }
        );
        assert_eq!(
            cache.lookup("f", 0.007, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(80.0) }
        );
        assert_eq!(
            cache.lookup("f", 0.020, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(80.0) }
        );
        assert_eq!(cache.lookup("g", 0.004, SolveMode::Warm), Lookup::Miss { warm_seed: None });
        // saturated answers (non-finite seeds) stay out of the chain
        cache.insert("f", 0.015, "sat".to_string(), true, f64::INFINITY);
        assert_eq!(
            cache.lookup("f", 0.014, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(80.0) }
        );
        let stats = cache.stats();
        assert_eq!(stats.get("seeded").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn lru_budget_evicts_cold_entries_first_and_keeps_the_newest() {
        let one = entry_cost(&("ffffffffffffffff".to_string(), 0), "x");
        let mut cache = SolveCache::new(3 * one + one / 2);
        cache.insert("ffffffffffffffff", 0.001, "x".to_string(), true, 1.0);
        cache.insert("ffffffffffffffff", 0.002, "x".to_string(), true, 2.0);
        cache.insert("ffffffffffffffff", 0.003, "x".to_string(), true, 3.0);
        assert_eq!(cache.len(), 3);
        // touch 0.001 so 0.002 is the least recently used…
        assert!(matches!(
            cache.lookup("ffffffffffffffff", 0.001, SolveMode::Exact),
            Lookup::Hit { .. }
        ));
        cache.insert("ffffffffffffffff", 0.004, "x".to_string(), true, 4.0);
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.lookup("ffffffffffffffff", 0.002, SolveMode::Exact),
            Lookup::Miss { warm_seed: None }
        );
        assert!(matches!(
            cache.lookup("ffffffffffffffff", 0.001, SolveMode::Exact),
            Lookup::Hit { .. }
        ));
        // …and the evicted entry's seed left the warm chain with it
        // (0.0015 now seeds from 0.001, not the evicted 0.002)
        assert_eq!(
            cache.lookup("ffffffffffffffff", 0.0015, SolveMode::Warm),
            Lookup::Miss { warm_seed: Some(1.0) }
        );
        // a budget below one entry still holds exactly the newest answer
        let mut tiny = SolveCache::new(1);
        tiny.insert("ffffffffffffffff", 0.001, "x".to_string(), true, 1.0);
        tiny.insert("ffffffffffffffff", 0.002, "y".to_string(), true, 2.0);
        assert_eq!(tiny.len(), 1);
        assert!(matches!(
            tiny.lookup("ffffffffffffffff", 0.002, SolveMode::Exact),
            Lookup::Hit { .. }
        ));
        assert!(tiny.stats().get("evictions").unwrap().as_u64().unwrap() >= 1);
        assert!(!tiny.is_empty());
    }
}
