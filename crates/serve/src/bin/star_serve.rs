//! The `star-serve` binary: bind, prewarm, announce, serve until drained.
//!
//! ```text
//! star-serve [--addr HOST:PORT] [--width N] [--window N] [--cache-bytes N]
//!            [--shards N] [--max-connections N]
//!            [--prewarm LIST] [--prewarm-rates N]
//! ```
//!
//! Prints exactly one `star-serve listening on HOST:PORT` line to stdout
//! once the socket is bound — and prewarmed, when `--prewarm` names
//! configurations (the prewarm report goes to stderr first) — so the
//! handshake `cargo xtask serve-smoke` and the integration tests parse
//! never races a cold cache.  Then serves until SIGINT or a wire
//! `shutdown` request, draining in-flight queries before exiting.

use std::io::Write;
use std::process::ExitCode;

use star_serve::{parse_prewarm_list, signal, Daemon, ServeConfig};

fn usage() -> &'static str {
    "usage: star-serve [--addr HOST:PORT] [--width N] [--window N] [--cache-bytes N]\n\
     \x20                 [--shards N] [--max-connections N] [--prewarm LIST] [--prewarm-rates N]\n\
     \n\
     --addr HOST:PORT     bind address (default 127.0.0.1:0 = ephemeral port)\n\
     --width N            exec-pool width per evaluation batch (default 0 = all workers)\n\
     --window N           max pipelined requests per batch (default 64)\n\
     --cache-bytes N      total solve-cache byte budget, split across shards (default 4194304)\n\
     --shards N           independently locked solve-cache shards (default 8)\n\
     --max-connections N  connection budget; extra connects get a busy line (default 64, 0 = unlimited)\n\
     --prewarm LIST       configurations to solve before listening: `pool` and/or\n\
     \x20                    comma-separated topology[:size[:discipline[:vc[:m]]]] items\n\
     --prewarm-rates N    rates per prewarmed configuration across the load grid (default 24)"
}

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.to_string(),
            "--width" => {
                config.width = value("--width")?.parse().map_err(|e| format!("--width: {e}"))?;
            }
            "--window" => {
                config.window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?;
            }
            "--cache-bytes" => {
                config.cache_bytes =
                    value("--cache-bytes")?.parse().map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--shards" => {
                config.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--prewarm" => {
                config.prewarm = parse_prewarm_list(value("--prewarm")?)
                    .map_err(|e| format!("--prewarm: {e}"))?;
            }
            "--prewarm-rates" => {
                config.prewarm_rates = value("--prewarm-rates")?
                    .parse()
                    .map_err(|e| format!("--prewarm-rates: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    signal::install();
    let daemon = match Daemon::bind(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("star-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(report) = daemon.prewarmed() {
        eprintln!(
            "star-serve: prewarmed {} configurations, {} solves cached",
            report.configs, report.solves
        );
    }
    // the one line launchers wait for — flushed so piped stdout sees it now
    println!("star-serve listening on {}", daemon.local_addr());
    let _ = std::io::stdout().flush();
    match daemon.run() {
        Ok(()) => {
            eprintln!("star-serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("star-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
