//! Hot-configuration prewarming: solve the named configurations across the
//! whole load-generator rate grid *before* the listener opens.
//!
//! A freshly started daemon answers its first queries cold; under a known
//! traffic mix (the configurations `star-load` names) that cold ramp is
//! pure waste.  [`prewarm`] resolves each configuration once, solves every
//! rate of [`star_workloads::load_rate_grid`] as one ordered batch on the
//! shared [`star_exec::ExecPool`], and stores the answers as **exact**
//! entries — each solved cold through the very
//! [`star_workloads::ModelBackend::estimate_with`] path a live exact-mode
//! query takes, so prewarmed answers are byte-identical to batch solves
//! and admissible in both `exact` and `warm` mode.  The converged seeds
//! populate the per-configuration warm chain as a side effect, so warm
//! traffic near the grid starts seeded too.
//!
//! The `--prewarm` flag names configurations in a compact spec parsed by
//! [`parse_prewarm_list`]: the literal `pool` (the
//! [`star_workloads::default_config_pool`] mix `star-load` draws from) or
//! `topology[:size[:discipline[:vc[:m]]]]` items, comma-separated.

use std::collections::HashSet;
use std::io;
use std::sync::Arc;

use star_exec::ExecPool;
use star_workloads::{
    default_config_pool, encode_estimate, load_rate_grid, Discipline, ModelBackend, TopologyKind,
    WireScenario,
};

use crate::cache::ConfigEntry;
use crate::daemon::ServerState;

/// What [`prewarm`] did, for the daemon's startup report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmReport {
    /// Distinct configurations prewarmed (after fingerprint dedup).
    pub configs: usize,
    /// Answers stored (configurations × grid rates).
    pub solves: usize,
}

/// Parses a `--prewarm` spec: comma-separated items, each the literal
/// `pool` or `topology[:size[:discipline[:vc[:m]]]]` with the wire
/// defaults (the family's conventional size, `enhanced-nbc`, `vc=6`,
/// `m=32`).  Empty items are skipped, so a trailing comma is harmless.
///
/// # Errors
/// A human-readable message for unknown topologies/disciplines, malformed
/// numbers, or knobs outside the wire-validated ranges.
pub fn parse_prewarm_list(spec: &str) -> Result<Vec<WireScenario>, String> {
    let mut out = Vec::new();
    for item in spec.split(',').map(str::trim).filter(|item| !item.is_empty()) {
        if item == "pool" {
            out.extend(default_config_pool());
        } else {
            out.push(parse_item(item)?);
        }
    }
    Ok(out)
}

fn parse_item(item: &str) -> Result<WireScenario, String> {
    let parts: Vec<&str> = item.split(':').collect();
    if parts.len() > 5 {
        return Err(format!("trailing `{}` in prewarm item `{item}`", parts[5]));
    }
    let field = |index: usize| parts.get(index).copied().filter(|part| !part.is_empty());
    let kind = TopologyKind::parse(parts[0])
        .ok_or_else(|| format!("unknown topology `{}` in prewarm item `{item}`", parts[0]))?;
    let number = |name: &str, index: usize, default: usize| -> Result<usize, String> {
        match field(index) {
            None => Ok(default),
            Some(text) => {
                text.parse().map_err(|_| format!("bad {name} `{text}` in prewarm item `{item}`"))
            }
        }
    };
    let size = number("size", 1, kind.default_size())?;
    let discipline = match field(2) {
        None => Discipline::EnhancedNbc,
        Some(name) => Discipline::parse(name)
            .ok_or_else(|| format!("unknown discipline `{name}` in prewarm item `{item}`"))?,
    };
    let vc = number("vc", 3, 6)?;
    let m = number("m", 4, 32)?;
    WireScenario::checked(kind, size, discipline, vc, m).map_err(|e| e.to_string())
}

/// Solves the full rate grid of every named configuration into the solve
/// cache, as one deterministic ordered batch.  Duplicate fingerprints are
/// prewarmed once.
///
/// # Errors
/// [`io::ErrorKind::InvalidInput`] when a configuration's knobs fall
/// outside the analytical model (the same validation a live query gets,
/// surfaced at startup instead of to the first client).
pub fn prewarm(
    state: &ServerState,
    width: usize,
    configs: &[WireScenario],
    rates: usize,
) -> io::Result<PrewarmReport> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut entries: Vec<Arc<ConfigEntry>> = Vec::new();
    for wire in configs {
        let entry = state.configs.resolve(wire);
        if !seen.insert(entry.fingerprint.clone()) {
            continue;
        }
        match entry.scenario.model_params(0.0) {
            Ok(Some(_)) => entries.push(entry),
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cannot prewarm {}: {e}", entry.scenario.label()),
                ))
            }
            Ok(None) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "cannot prewarm {}: the analytical model does not cover it",
                        entry.scenario.label()
                    ),
                ))
            }
        }
    }
    let jobs: Vec<(Arc<ConfigEntry>, f64)> = entries
        .iter()
        .flat_map(|entry| {
            load_rate_grid(&entry.scenario, rates)
                .into_iter()
                .map(move |rate| (Arc::clone(entry), rate))
        })
        .collect();
    // every prewarm solve is cold — the exact-mode code path, so the
    // stored bytes equal what a batch solve of the same point encodes
    let estimates = ExecPool::global_ordered(width, &jobs, |_, (entry, rate)| {
        state.backend.estimate_with(&entry.scenario.at(*rate), &entry.spectrum, &[])
    });
    for ((entry, rate), estimate) in jobs.iter().zip(&estimates) {
        let payload = encode_estimate(estimate);
        let seed = ModelBackend::warm_seed(estimate).unwrap_or(f64::NAN);
        state.solves.insert(&entry.fingerprint, *rate, payload, true, seed);
    }
    Ok(PrewarmReport { configs: entries.len(), solves: jobs.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pool_items_defaults_and_rejects_junk() {
        let list = parse_prewarm_list("pool,").unwrap();
        assert_eq!(list, default_config_pool());
        let one = parse_prewarm_list("star:4:nbc:7:16").unwrap();
        assert_eq!(
            one,
            vec![WireScenario {
                kind: TopologyKind::Star,
                size: 4,
                discipline: Discipline::Nbc,
                virtual_channels: 7,
                message_length: 16,
            }]
        );
        // defaults fill in from the left
        let defaulted = parse_prewarm_list("hypercube").unwrap();
        assert_eq!(defaulted[0].size, TopologyKind::Hypercube.default_size());
        assert_eq!(defaulted[0].discipline, Discipline::EnhancedNbc);
        assert_eq!((defaulted[0].virtual_channels, defaulted[0].message_length), (6, 32));
        assert!(parse_prewarm_list("mesh").is_err());
        assert!(parse_prewarm_list("star:banana").is_err());
        assert!(parse_prewarm_list("star:4:nbc:7:16:extra").is_err());
        assert!(parse_prewarm_list("star:99").is_err(), "wire range validation applies");
    }
}
