//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; every request produces
//! exactly one response object on one line, in request order.  Three
//! operations exist:
//!
//! * `{"op":"query","id":N,"topology":"star","size":5,"discipline":
//!   "enhanced-nbc","vc":6,"m":32,"rate":0.004,"mode":"exact"}` — evaluate
//!   one operating point (`op` defaults to `query`, the scenario knobs to
//!   the paper's defaults, `mode` to `exact`);
//! * `{"op":"stats","id":N}` — a cache/traffic counter snapshot;
//! * `{"op":"shutdown","id":N}` — ask the daemon to drain and exit.
//!
//! Successful query responses are
//! `{"id":N,"status":"ok","cached":"cold|exact|warm","hits":H,"result":…}`
//! where `result` is the canonical
//! [`star_workloads::wire::encode_estimate`] payload — spliced in verbatim,
//! so the daemon's byte-identity contract (`result` equals the batch
//! encoding, byte for byte, for `exact`-mode answers) survives the framing.
//! Every failure is `{"id":…,"status":"error","error":"…"}` with `id` null
//! when the request was too broken to carry one; a malformed line is an
//! error *response*, never a dropped connection.

use serde_json::Value;
use star_workloads::WireScenario;

/// How a query wants its answer solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// Cold fixed-point solves only: answers are byte-identical to the
    /// batch [`star_workloads::ModelBackend`], and only exact-solved cache
    /// entries may answer.  The default.
    Exact,
    /// Warm-start from the nearest cached rate of the same configuration:
    /// answers agree with batch to solver tolerance (1e-9 relative
    /// latency) with fewer iterations.
    Warm,
}

impl SolveMode {
    /// The wire spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Warm => "warm",
        }
    }
}

/// Where a query's answer came from, echoed in the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A fresh cold fixed-point solve.
    Cold,
    /// Served verbatim from the solve cache.
    Exact,
    /// A fresh solve warm-started from a cached neighbouring rate.
    Warm,
}

impl CacheOutcome {
    /// The wire spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Cold => "cold",
            Self::Exact => "exact",
            Self::Warm => "warm",
        }
    }
}

/// One point-evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The scenario being asked about.
    pub wire: WireScenario,
    /// Traffic generation rate `λ_g` (finite, positive).
    pub rate: f64,
    /// Solve mode (`exact` unless the query says otherwise).
    pub mode: SolveMode,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one operating point.
    Query(Query),
    /// Snapshot the daemon's counters.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Drain in-flight work and exit.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

/// Why a request line could not be honoured, with the correlation id when
/// one could still be extracted (so the error response stays matchable).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The request's id, if the line carried a readable one.
    pub id: Option<u64>,
    /// Human-readable reason.
    pub message: String,
}

impl Request {
    /// Parses one request line.  Never panics, whatever the bytes say.
    ///
    /// # Errors
    /// Malformed JSON, unknown operations, missing/misshapen fields and
    /// out-of-range parameters all come back as a [`RequestError`].
    pub fn parse(line: &str) -> Result<Self, RequestError> {
        let value = serde_json::from_str(line)
            .map_err(|e| RequestError { id: None, message: e.to_string() })?;
        let id = value.get("id").and_then(Value::as_u64);
        let fail = |message: String| RequestError { id, message };
        let id = id.ok_or_else(|| RequestError {
            id: None,
            message: "missing field `id` (a non-negative integer)".to_string(),
        })?;
        let op = match value.get("op") {
            None => "query",
            Some(v) => v.as_str().ok_or_else(|| fail("field `op` must be a string".to_string()))?,
        };
        match op {
            "stats" => Ok(Self::Stats { id }),
            "shutdown" => Ok(Self::Shutdown { id }),
            "query" => {
                let wire = WireScenario::from_value(&value).map_err(|e| fail(e.to_string()))?;
                let rate = value
                    .get("rate")
                    .ok_or_else(|| fail("missing field `rate`".to_string()))?
                    .as_f64()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| {
                        fail("field `rate` must be a finite positive number".to_string())
                    })?;
                let mode = match value.get("mode") {
                    None => SolveMode::Exact,
                    Some(v) => match v.as_str() {
                        Some("exact") => SolveMode::Exact,
                        Some("warm") => SolveMode::Warm,
                        _ => {
                            return Err(fail(
                                "field `mode` must be \"exact\" or \"warm\"".to_string(),
                            ))
                        }
                    },
                };
                Ok(Self::Query(Query { id, wire, rate, mode }))
            }
            other => Err(fail(format!("unknown op `{other}` (query|stats|shutdown)"))),
        }
    }
}

/// A query's JSON request line — the inverse of [`Request::parse`], used by
/// the load generator and the smoke tests.
#[must_use]
pub fn query_line(query: &Query) -> String {
    let Value::Object(mut fields) = query.wire.to_value() else {
        unreachable!("WireScenario::to_value always yields an object")
    };
    fields.insert(0, ("id".to_string(), Value::from(query.id)));
    fields.insert(1, ("op".to_string(), Value::from("query")));
    fields.push(("rate".to_string(), Value::from(query.rate)));
    fields.push(("mode".to_string(), Value::from(query.mode.name())));
    Value::Object(fields).to_string()
}

/// A successful query response.  `payload` is a pre-encoded JSON object
/// (the canonical estimate encoding) and is spliced in verbatim.
#[must_use]
pub fn ok_query(id: u64, outcome: CacheOutcome, hits: u64, payload: &str) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"cached\":\"{}\",\"hits\":{hits},\"result\":{payload}}}",
        outcome.name()
    )
}

/// A successful stats response around a pre-built stats object.
#[must_use]
pub fn ok_stats(id: u64, stats: &Value) -> String {
    format!("{{\"id\":{id},\"status\":\"ok\",\"stats\":{stats}}}")
}

/// The acknowledgement of a shutdown request.
#[must_use]
pub fn ok_shutdown(id: u64) -> String {
    format!("{{\"id\":{id},\"status\":\"ok\",\"shutdown\":true}}")
}

/// The one-line refusal a connection past the daemon's budget receives
/// before its socket closes.  `id` is null — the refusal answers the
/// connection, not any particular request.
#[must_use]
pub fn busy_response(limit: usize) -> String {
    format!(
        "{{\"id\":null,\"status\":\"busy\",\"error\":\"connection budget ({limit}) exhausted; retry later\"}}"
    )
}

/// An error response (JSON-escaping the message; `id` null when unknown).
#[must_use]
pub fn error_response(id: Option<u64>, message: &str) -> String {
    let id = id.map_or(Value::Null, Value::from);
    Value::Object(vec![
        ("id".to_string(), id),
        ("status".to_string(), Value::from("error")),
        ("error".to_string(), Value::from(message)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::{Discipline, TopologyKind};

    #[test]
    fn parses_full_defaulted_and_control_requests() {
        let full = Request::parse(
            r#"{"op":"query","id":7,"topology":"star","size":5,"discipline":"nbc","vc":7,"m":16,"rate":0.004,"mode":"warm"}"#,
        )
        .unwrap();
        let Request::Query(q) = &full else { panic!("expected a query") };
        assert_eq!(q.id, 7);
        assert_eq!(q.wire.kind, TopologyKind::Star);
        assert_eq!(q.wire.discipline, Discipline::Nbc);
        assert_eq!(q.mode, SolveMode::Warm);
        // op and mode default; scenario knobs fall back to the paper's
        let bare = Request::parse(r#"{"id":1,"topology":"torus","rate":0.01}"#).unwrap();
        let Request::Query(q) = &bare else { panic!("expected a query") };
        assert_eq!(q.mode, SolveMode::Exact);
        assert_eq!(q.wire.network_label(), "T8");
        assert_eq!(q.wire.virtual_channels, 6);
        assert_eq!(Request::parse(r#"{"op":"stats","id":2}"#).unwrap(), Request::Stats { id: 2 });
        assert_eq!(
            Request::parse(r#"{"op":"shutdown","id":3}"#).unwrap(),
            Request::Shutdown { id: 3 }
        );
    }

    #[test]
    fn request_lines_round_trip_through_query_line() {
        let query = Query {
            id: 41,
            wire: WireScenario {
                kind: TopologyKind::Hypercube,
                size: 7,
                discipline: Discipline::EnhancedNbc,
                virtual_channels: 6,
                message_length: 32,
            },
            rate: 0.0125,
            mode: SolveMode::Warm,
        };
        assert_eq!(Request::parse(&query_line(&query)), Ok(Request::Query(query)));
    }

    #[test]
    fn malformed_lines_become_error_values_with_best_effort_ids() {
        // broken JSON: no id recoverable
        assert_eq!(Request::parse("{oops").unwrap_err().id, None);
        // id recoverable even when the rest is nonsense
        let e = Request::parse(r#"{"id":9,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.id, Some(9));
        assert!(e.message.contains("frobnicate"));
        // queries validate their scenario and rate
        let e = Request::parse(r#"{"id":4,"topology":"mesh","rate":0.1}"#).unwrap_err();
        assert!(e.message.contains("mesh"));
        for bad_rate in [r#"{"id":4,"topology":"star"}"#, r#"{"id":4,"topology":"star","rate":-1}"#]
        {
            let e = Request::parse(bad_rate).unwrap_err();
            assert!(e.message.contains("rate"), "{e:?}");
        }
        let e =
            Request::parse(r#"{"id":4,"topology":"star","rate":0.1,"mode":"tepid"}"#).unwrap_err();
        assert!(e.message.contains("mode"));
    }

    #[test]
    fn responses_are_single_json_lines() {
        let ok = ok_query(
            3,
            CacheOutcome::Exact,
            2,
            r#"{"latency":74.5,"saturated":false,"iterations":12}"#,
        );
        let value = serde_json::from_str(&ok).unwrap();
        assert_eq!(value.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("cached").unwrap().as_str(), Some("exact"));
        assert_eq!(value.get("hits").unwrap().as_u64(), Some(2));
        assert_eq!(value.get("result").unwrap().get("latency").unwrap().as_f64(), Some(74.5));
        let err = error_response(None, "bad \"quoted\" thing");
        let value = serde_json::from_str(&err).unwrap();
        assert!(value.get("id").unwrap().is_null());
        assert_eq!(value.get("error").unwrap().as_str(), Some("bad \"quoted\" thing"));
        let bye = serde_json::from_str(&ok_shutdown(5)).unwrap();
        assert_eq!(bye.get("shutdown").unwrap().as_bool(), Some(true));
        assert!(!ok.contains('\n') && !err.contains('\n'));
    }
}
