//! # star-serve
//!
//! A persistent evaluation daemon for the analytical model: scenario
//! queries as line-delimited JSON over TCP, answered from a
//! fingerprint-keyed two-level cache instead of a fresh process per batch.
//!
//! The batch pipeline pays its fixed costs — topology tables, destination
//! spectra, process startup — on every invocation.  A *serving* deployment
//! (a design-space dashboard, a surrogate-training loop issuing millions of
//! point queries) wants them paid once:
//!
//! * **Level 1** ([`cache::ConfigCache`]): configurations keyed by their
//!   [`star_exec::RunFingerprint`] identity, holding `Arc`-shared spectrum
//!   builds — one spectrum per *network* across all disciplines and knobs.
//! * **Level 2** ([`cache::ShardedSolveCache`]): solved answers keyed by
//!   (fingerprint, exact rate bits) under an LRU byte budget with per-entry
//!   hit counters, plus the rate-ordered chain of converged warm-start
//!   seeds per configuration, so `warm`-mode misses start their fixed
//!   point from the nearest cached rate.  The level is **sharded**: the
//!   fingerprint hash picks one of N independently locked
//!   [`cache::SolveCache`] shards (all rates of a configuration share a
//!   shard, so its warm chain stays whole), and each shard runs
//!   **single-flight admission** — concurrent misses on one
//!   (configuration, rate) coalesce into one solve instead of racing.
//!
//! Around the caches, the daemon scales out instead of serialising:
//! hot configurations can be **prewarmed** ([`prewarm`]) across the whole
//! load-generator rate grid before the listener opens, and the accept loop
//! enforces a **connection budget** ([`daemon::ServeConfig::max_connections`])
//! that answers overload with explicit `busy` refusals rather than
//! unbounded thread growth.
//!
//! The contract that keeps the daemon honest ([`protocol`]): `exact`-mode
//! answers are **byte-identical** to what the batch
//! [`star_workloads::ModelBackend`] encodes for the same point — cold
//! solves through literally the same code path
//! ([`star_workloads::ModelBackend::estimate_with`] with an empty warm
//! state), cache hits replaying previously-solved bytes verbatim.
//! `warm`-mode answers trade that guarantee for fewer fixed-point
//! iterations and agree to solver tolerance (1e-9 relative latency), the
//! same deal [`star_workloads::Evaluator::evaluate_sweep`] already makes
//! within a batch sweep.
//!
//! Queries pipelined on one connection are evaluated as deterministic
//! ordered batches on the shared [`star_exec::ExecPool`]; SIGINT or a wire
//! `shutdown` request drains in-flight windows before the process exits
//! ([`daemon`], [`signal`]).
//!
//! The workspace facade re-exports this crate as `star_wormhole::serve`;
//! the `star-serve` binary wraps [`Daemon`] behind a tiny CLI, and the
//! `star-load` binary (in `star-bench`) replays mixed query streams
//! against it.

#![deny(unsafe_code)] // one exception: the SIGINT binding in `signal`
#![warn(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod prewarm;
pub mod protocol;
pub mod signal;

pub use cache::{
    Admission, ConfigCache, Flight, FlightToken, Lookup, ShardedSolveCache, SolveCache,
    SolveCounters,
};
pub use daemon::{Daemon, ServeConfig, ServerState};
pub use prewarm::{parse_prewarm_list, PrewarmReport};
pub use protocol::{CacheOutcome, Query, Request, RequestError, SolveMode};
