//! The daemon proper: accept loop with a connection budget, per-connection
//! pipelining, single-flight admission, pool-backed evaluation, graceful
//! drain.
//!
//! One [`Daemon`] owns a non-blocking TCP listener and a shared
//! [`ServerState`] (the model backend, the two cache levels and the traffic
//! counters).  Each connection gets a thread, up to
//! [`ServeConfig::max_connections`]; connections past the budget receive
//! one `busy` line and are closed, so overload degrades into explicit
//! refusals instead of unbounded thread growth.  Within a connection,
//! queries are **pipelined**: the reader drains whatever lines are already
//! queued (up to [`ServeConfig::window`]) and evaluates the whole window's
//! cache misses as one ordered batch on the shared [`star_exec::ExecPool`]
//! — so a client that streams 100 queries gets every core, while a
//! one-query-at-a-time client still gets sub-millisecond turnarounds.
//! Responses always come back in request order.
//!
//! Cache misses go through the sharded cache's **single-flight admission**
//! ([`ShardedSolveCache::admit`]): the first miss on a (configuration,
//! rate, kind) key leads and owes the solve; duplicate misses — in the same
//! window or racing in from other connections — follow that flight and
//! reuse its answer instead of re-solving.  Every window publishes all the
//! flights it leads *before* waiting on any flight it follows, so no two
//! connections can deadlock waiting on each other.
//!
//! Shutdown is cooperative and draining: a SIGINT (via
//! [`crate::signal::install`]) or a wire `shutdown` request trips one flag;
//! the accept loop stops accepting, every connection finishes the window it
//! is working on, flushes, closes, and [`Daemon::run`] joins them all
//! before returning.  Nothing in flight is dropped.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use serde_json::Value;
use star_exec::ExecPool;
use star_workloads::{
    encode_estimate, ModelBackend, OperatingPoint, ScenarioSpectrum, WireScenario,
};

use crate::cache::{Admission, ConfigCache, Flight, FlightToken, ShardedSolveCache};
use crate::prewarm::{self, PrewarmReport};
use crate::protocol::{self, CacheOutcome, Request};
use crate::signal;

/// Daemon tuning knobs, all defaulted for the smoke/bench setups.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back with
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker width for each evaluation batch (`0` = all pool workers).
    pub width: usize,
    /// Maximum pipelined requests evaluated as one batch per connection.
    pub window: usize,
    /// Total solve-cache byte budget, split evenly across the shards.
    pub cache_bytes: usize,
    /// Solve-cache shard count (each shard is independently locked).
    pub shards: usize,
    /// Connection budget: accepts past this many live connections get one
    /// `busy` line and a close.  `0` means unlimited.
    pub max_connections: usize,
    /// Configurations to solve across the whole rate grid before the
    /// listener opens, so their steady-state traffic starts at the warm
    /// hit rate (empty = no prewarming).
    pub prewarm: Vec<WireScenario>,
    /// Rates per prewarmed configuration, spread over the same grid
    /// [`star_workloads::load_rate_grid`] gives the load generator.
    pub prewarm_rates: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            width: 0,
            window: 64,
            cache_bytes: 4 << 20,
            shards: 8,
            max_connections: 64,
            prewarm: Vec::new(),
            prewarm_rates: 24,
        }
    }
}

/// Everything the connection threads share.  The cache levels synchronise
/// internally ([`ConfigCache`] behind a read-mostly lock,
/// [`ShardedSolveCache`] behind per-shard locks), so there is no global
/// lock left to serialise on.
#[derive(Debug)]
pub struct ServerState {
    pub(crate) backend: ModelBackend,
    pub(crate) configs: ConfigCache,
    pub(crate) solves: ShardedSolveCache,
    queries: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(cache_bytes: usize, shards: usize) -> Self {
        Self {
            backend: ModelBackend::new(),
            configs: ConfigCache::new(),
            solves: ShardedSolveCache::new(cache_bytes, shards),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Whether drain-and-exit has been requested, by wire or by signal.
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::triggered()
    }

    /// The stats snapshot behind the wire `stats` op, also available to
    /// embedders running an in-process daemon.
    ///
    /// The snapshot is *consistent*: every solve shard is locked (in index
    /// order) while the traffic counters and config-cache stats are read,
    /// so the reply can never interleave mid-update counts from the two
    /// cache levels.
    #[must_use]
    pub fn stats(&self) -> Value {
        let (solves, (queries, errors, configs)) = self.solves.snapshot(|| {
            (
                self.queries.load(Ordering::Relaxed),
                self.errors.load(Ordering::Relaxed),
                self.configs.stats(),
            )
        });
        Value::Object(vec![
            ("queries".to_string(), Value::from(queries)),
            ("errors".to_string(), Value::from(errors)),
            ("configs".to_string(), configs),
            ("solves".to_string(), solves),
        ])
    }
}

/// One solve this window leads: everything `estimate_with` needs,
/// pre-resolved so the hot closure only computes, plus the flight token
/// that publishes the answer to any followers.
struct SolveJob {
    point: OperatingPoint,
    spectrum: Arc<ScenarioSpectrum>,
    warm_state: Vec<f64>,
    token: FlightToken,
}

/// The self-solve a follower falls back to if its leader aborts.
struct Fallback {
    point: OperatingPoint,
    spectrum: Arc<ScenarioSpectrum>,
    fingerprint: String,
}

/// What each request line of a window turns into before responses are
/// written back in line order.
enum Planned {
    /// Response already known (errors, control ops, cache hits).
    Ready(String),
    /// Stats snapshot, taken after the window's solves land.
    Stats { id: u64 },
    /// Awaiting solve job `index`'s estimate (this window leads it).
    Pending { id: u64, index: usize, outcome: CacheOutcome },
    /// Awaiting another leader's flight (coalesced duplicate miss).
    Follow { id: u64, outcome: CacheOutcome, flight: Arc<Flight>, fallback: Fallback },
}

/// The serving daemon.  [`Daemon::bind`] then [`Daemon::run`]; the run
/// blocks until shutdown and returns once every connection has drained.
///
/// ```
/// use std::io::{BufRead, BufReader, Write};
/// use std::net::TcpStream;
/// use star_serve::{Daemon, ServeConfig};
///
/// let daemon = Daemon::bind(ServeConfig::default()).unwrap();
/// let addr = daemon.local_addr();
/// let server = std::thread::spawn(move || daemon.run().unwrap());
///
/// let mut conn = TcpStream::connect(addr).unwrap();
/// writeln!(conn, r#"{{"id":1,"topology":"star","size":4,"m":16,"rate":0.004}}"#).unwrap();
/// writeln!(conn, r#"{{"id":2,"op":"shutdown"}}"#).unwrap();
/// let mut lines = BufReader::new(conn).lines();
/// let first = lines.next().unwrap().unwrap();
/// assert!(first.starts_with(r#"{"id":1,"status":"ok","cached":"cold""#));
/// server.join().unwrap(); // drained and exited
/// ```
#[derive(Debug)]
pub struct Daemon {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServeConfig,
    prewarmed: Option<PrewarmReport>,
}

/// How long an idle connection waits for bytes before re-checking the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(25);

impl Daemon {
    /// Binds the listener (port 0 = ephemeral), builds the shared state,
    /// and — when [`ServeConfig::prewarm`] names configurations — solves
    /// their full rate grids into the cache *before* returning, so the
    /// first client never sees a cold cache for a prewarmed configuration.
    ///
    /// # Errors
    /// Any socket error from binding the address, or
    /// [`io::ErrorKind::InvalidInput`] for a prewarm configuration the
    /// analytical model cannot solve.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState::new(config.cache_bytes, config.shards));
        let prewarmed = if config.prewarm.is_empty() {
            None
        } else {
            Some(prewarm::prewarm(&state, config.width, &config.prewarm, config.prewarm_rates)?)
        };
        Ok(Self { listener, state, config, prewarmed })
    }

    /// The bound address (the one thing a caller needs after port 0).
    ///
    /// # Panics
    /// Never after a successful [`Daemon::bind`].
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has an address")
    }

    /// What [`Daemon::bind`] prewarmed, when it was asked to.
    #[must_use]
    pub fn prewarmed(&self) -> Option<&PrewarmReport> {
        self.prewarmed.as_ref()
    }

    /// The shared state — exposed so an embedding test can read stats or
    /// request a drain without a connection.
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Asks a running daemon to drain and exit, as if SIGINT had arrived.
    pub fn request_shutdown(state: &ServerState) {
        state.shutdown.store(true, Ordering::Relaxed);
    }

    /// Serves until shutdown (SIGINT or a wire `shutdown` request), then
    /// drains: in-flight windows finish, responses flush, connections
    /// close, and every connection thread is joined before returning.
    ///
    /// # Errors
    /// Fatal listener errors only; per-connection I/O errors close that
    /// connection and are otherwise ignored.
    pub fn run(self) -> io::Result<()> {
        let limit = self.config.max_connections;
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    workers.retain(|w| !w.is_finished());
                    if limit != 0 && workers.len() >= limit {
                        refuse_busy(&stream, limit);
                        continue;
                    }
                    let state = Arc::clone(&self.state);
                    let width = self.config.width;
                    let window = self.config.window.max(1);
                    workers.push(thread::spawn(move || {
                        // a broken connection is the client's problem
                        let _ = serve_connection(&stream, &state, width, window);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(IDLE_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        drop(self.listener);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Answers a connection past the budget with one `busy` line and closes
/// it.  Refusal errors are ignored — the client is gone either way.
fn refuse_busy(stream: &TcpStream, limit: usize) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(IDLE_POLL));
    let mut writer = BufWriter::new(stream);
    let _ = writer.write_all(protocol::busy_response(limit).as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

/// Reads request lines, pipelines them into windows and answers in order
/// until EOF or drain.
///
/// A window opens with one blocking read (bounded by [`IDLE_POLL`] so the
/// shutdown flag stays live on idle connections), then drains whatever
/// lines have *already arrived* with non-blocking reads — a pipelining
/// client's whole burst lands in one evaluation batch, while a
/// query-at-a-time client is answered immediately instead of waiting out a
/// batching timer.
fn serve_connection(
    stream: &TcpStream,
    state: &ServerState,
    width: usize,
    window_cap: usize,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut pending = String::new();
    let mut window: Vec<String> = Vec::new();
    loop {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let mut eof = match reader.read_line(&mut pending) {
            Ok(0) => true,
            Ok(_) => {
                window.push(std::mem::take(&mut pending));
                false
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // idle (a timed-out read keeps any partial line buffered in
                // `pending` for the next pass): drain out when asked to
                if state.draining() {
                    return writer.flush();
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if !eof {
            stream.set_nonblocking(true)?;
            while window.len() < window_cap {
                match reader.read_line(&mut pending) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(_) => window.push(std::mem::take(&mut pending)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }
        if eof && !pending.trim().is_empty() {
            // a trailing unterminated line still deserves an answer
            window.push(std::mem::take(&mut pending));
        }
        if !window.is_empty() {
            let draining = process_window(state, width, &std::mem::take(&mut window), &mut writer)?;
            writer.flush()?;
            if draining {
                return Ok(());
            }
        }
        if eof {
            return writer.flush();
        }
    }
}

/// Evaluates one window of request lines and writes one response line per
/// request, in order.  Returns whether a shutdown request was seen.
///
/// Ordering discipline: admission happens line by line (hits answer
/// verbatim, first misses lead, duplicates follow), then *every* led
/// flight is solved and published, and only then does the response loop
/// wait on followed flights.  A follower can therefore only ever wait on
/// a flight whose leader — this window or another connection — publishes
/// without waiting on anyone, so cross-connection waits cannot cycle.
fn process_window(
    state: &ServerState,
    width: usize,
    lines: &[String],
    writer: &mut impl Write,
) -> io::Result<bool> {
    let mut planned: Vec<Planned> = Vec::with_capacity(lines.len());
    let mut jobs: Vec<SolveJob> = Vec::new();
    let mut saw_shutdown = false;
    for line in lines {
        planned.push(match Request::parse(line) {
            Err(e) => {
                state.errors.fetch_add(1, Ordering::Relaxed);
                Planned::Ready(protocol::error_response(e.id, &e.message))
            }
            Ok(Request::Stats { id }) => Planned::Stats { id },
            Ok(Request::Shutdown { id }) => {
                saw_shutdown = true;
                Daemon::request_shutdown(state);
                Planned::Ready(protocol::ok_shutdown(id))
            }
            Ok(Request::Query(query)) => {
                state.queries.fetch_add(1, Ordering::Relaxed);
                let entry = state.configs.resolve(&query.wire);
                // out-of-range knobs (V below the discipline's escape-level
                // minimum, …) and model-less pairings answer as errors, not
                // panics — the same validation the batch backend trusts
                match entry.scenario.model_params(query.rate) {
                    Err(e) => {
                        state.errors.fetch_add(1, Ordering::Relaxed);
                        Planned::Ready(protocol::error_response(Some(query.id), &e.to_string()))
                    }
                    Ok(None) => {
                        state.errors.fetch_add(1, Ordering::Relaxed);
                        Planned::Ready(protocol::error_response(
                            Some(query.id),
                            &format!(
                                "the analytical model does not cover {} (uniform traffic; \
                                 star networks have no deterministic variant)",
                                entry.scenario.label()
                            ),
                        ))
                    }
                    Ok(Some(_)) => {
                        match state.solves.admit(&entry.fingerprint, query.rate, query.mode) {
                            Admission::Hit { payload, hits } => Planned::Ready(protocol::ok_query(
                                query.id,
                                CacheOutcome::Exact,
                                hits,
                                &payload,
                            )),
                            Admission::Lead { token, warm_seed } => {
                                let outcome = if warm_seed.is_some() {
                                    CacheOutcome::Warm
                                } else {
                                    CacheOutcome::Cold
                                };
                                jobs.push(SolveJob {
                                    point: entry.scenario.at(query.rate),
                                    spectrum: Arc::clone(&entry.spectrum),
                                    warm_state: warm_seed.map(|s| vec![s]).unwrap_or_default(),
                                    token,
                                });
                                Planned::Pending { id: query.id, index: jobs.len() - 1, outcome }
                            }
                            Admission::Follow { flight, cold } => {
                                let outcome =
                                    if cold { CacheOutcome::Cold } else { CacheOutcome::Warm };
                                Planned::Follow {
                                    id: query.id,
                                    outcome,
                                    flight,
                                    fallback: Fallback {
                                        point: entry.scenario.at(query.rate),
                                        spectrum: Arc::clone(&entry.spectrum),
                                        fingerprint: entry.fingerprint.clone(),
                                    },
                                }
                            }
                        }
                    }
                }
            }
        });
    }

    // the window's led misses, solved as one deterministic ordered batch…
    let estimates = ExecPool::global_ordered(width, &jobs, |_, job| {
        state.backend.estimate_with(&job.point, &job.spectrum, &job.warm_state)
    });
    // …then published (cache insert + follower wake-up) before any Follow
    // below is waited on
    let mut payloads: Vec<String> = Vec::with_capacity(estimates.len());
    for (job, estimate) in jobs.into_iter().zip(&estimates) {
        let payload = encode_estimate(estimate);
        let seed = ModelBackend::warm_seed(estimate).unwrap_or(f64::NAN);
        state.solves.complete(job.token, payload.clone(), seed);
        payloads.push(payload);
    }

    for plan in planned {
        let response = match plan {
            Planned::Ready(response) => response,
            Planned::Stats { id } => protocol::ok_stats(id, &state.stats()),
            Planned::Pending { id, index, outcome } => {
                protocol::ok_query(id, outcome, 0, &payloads[index])
            }
            Planned::Follow { id, outcome, flight, fallback } => match flight.wait() {
                Some(payload) => protocol::ok_query(id, outcome, 0, &payload),
                None => {
                    // the leader died mid-solve: solve cold ourselves (an
                    // exact answer, admissible whatever mode asked)
                    let estimate =
                        state.backend.estimate_with(&fallback.point, &fallback.spectrum, &[]);
                    let payload = encode_estimate(&estimate);
                    let seed = ModelBackend::warm_seed(&estimate).unwrap_or(f64::NAN);
                    state.solves.insert(
                        &fallback.fingerprint,
                        fallback.point.traffic_rate,
                        payload.clone(),
                        true,
                        seed,
                    );
                    protocol::ok_query(id, CacheOutcome::Cold, 0, &payload)
                }
            },
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(saw_shutdown)
}
