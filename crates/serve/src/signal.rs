//! Minimal ctrl-c handling without a libc dependency.
//!
//! The daemon drains in-flight work on SIGINT; all the handler has to do is
//! flip one flag the accept/connection loops already poll.  The container
//! ships no `libc`/`signal-hook` crate, so the binding is a single
//! `extern "C"` declaration of ISO C `signal(2)` — the one place outside
//! `star_exec::pool` where the workspace says `unsafe`.  An async-signal
//! handler may do almost nothing; a relaxed atomic store is on the short
//! list of things it may.
//!
//! On non-Unix targets [`install`] is a no-op and the flag just never
//! trips from a signal (wire `shutdown` requests still work everywhere).

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT has been received since [`install`].
#[must_use]
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Trips the flag by hand — what the wire `shutdown` op and the tests use;
/// indistinguishable from a signal to the polling loops.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    /// ISO C signal handler shape; `signal(2)` returns the previous
    /// handler (a pointer, spelled as `usize` here since we never call it).
    type Handler = extern "C" fn(i32);

    unsafe extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_signum: i32) {
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the ISO C routine; the handler only performs
        // an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler (first ctrl-c drains; a second one hits the
/// default disposition only if the handler is reinstalled — it is not, so
/// repeated SIGINTs keep draining).  Call once from the binary; tests and
/// embedded daemons skip it and use [`trigger`] or wire shutdown instead.
pub fn install() {
    imp::install();
}
