//! The negative-hop scheme with bonus cards (`Nbc`).
//!
//! All `V` virtual channels are escape levels, but a header may climb above
//! its mandatory level by the number of bonus cards it still holds, which
//! spreads traffic over the otherwise idle high levels.

use star_graph::{NodeId, Topology};

use crate::bonus_card::BonusCardPolicy;
use crate::classes::VirtualChannelLayout;
use crate::traits::{CandidateVc, MessageRoutingState, RoutingAlgorithm};

/// Negative-hop routing with bonus cards over `V` escape levels.
#[derive(Debug, Clone)]
pub struct Nbc {
    layout: VirtualChannelLayout,
    policy: BonusCardPolicy,
}

impl Nbc {
    /// Builds the algorithm with `levels` escape levels.
    ///
    /// # Panics
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        Self {
            layout: VirtualChannelLayout::escape_only(levels),
            policy: BonusCardPolicy::new(levels),
        }
    }

    /// Builds the algorithm for a topology with `total_vcs` virtual channels,
    /// all of which become escape levels (more levels ⇒ more bonus cards).
    ///
    /// # Panics
    /// Panics if `total_vcs` is below the number of levels the topology
    /// requires.
    #[must_use]
    pub fn for_topology(topology: &dyn Topology, total_vcs: usize) -> Self {
        let required = BonusCardPolicy::required_levels(topology);
        assert!(
            total_vcs >= required,
            "{} needs at least {required} virtual channels, got {total_vcs}",
            topology.name()
        );
        Self::new(total_vcs)
    }
}

impl RoutingAlgorithm for Nbc {
    fn name(&self) -> String {
        format!("Nbc(V={})", self.layout.total())
    }

    fn layout(&self) -> VirtualChannelLayout {
        self.layout
    }

    fn candidates(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> Vec<CandidateVc> {
        debug_assert_ne!(current, dest);
        let mut out = Vec::new();
        for port in topology.min_route_ports(current, dest) {
            let next = topology.neighbor(current, port);
            if let Some((low, high)) =
                self.policy.admissible_levels(topology, current, next, dest, state)
            {
                for level in low..=high {
                    out.push(CandidateVc { port, vc: self.layout.escape_vc(level) });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::StarGraph;

    #[test]
    fn offers_strictly_more_candidates_than_nhop_when_levels_are_plentiful() {
        use crate::negative_hop::NHop;
        let s5 = StarGraph::new(5);
        let nbc = Nbc::for_topology(&s5, 6);
        let nhop = NHop::for_topology(&s5, 6);
        let state = MessageRoutingState::at_source();
        let mut strictly_more = 0;
        for dest in 1..s5.node_count() as u32 {
            let a = nbc.candidates(&s5, 0, dest, &state).len();
            let b = nhop.candidates(&s5, 0, dest, &state).len();
            assert!(a >= b);
            if a > b {
                strictly_more += 1;
            }
        }
        assert!(strictly_more > 0, "bonus cards must widen the choice somewhere");
    }

    #[test]
    fn candidate_levels_never_jeopardise_future_hops() {
        // From any state reached by spending bonus cards greedily, the message
        // must still reach the destination without exceeding the top level.
        let s5 = StarGraph::new(5);
        let nbc = Nbc::for_topology(&s5, 4); // the tight configuration
        for dest in (1..s5.node_count() as u32).step_by(11) {
            for src in (0..s5.node_count() as u32).step_by(17) {
                if src == dest {
                    continue;
                }
                let mut cur = src;
                let mut state = MessageRoutingState::at_source();
                while cur != dest {
                    let cands = nbc.candidates(&s5, cur, dest, &state);
                    assert!(!cands.is_empty(), "Nbc must always offer a candidate");
                    // pick the *highest* level offered (worst case for the future)
                    let pick = *cands.iter().max_by_key(|c| c.vc).unwrap();
                    let next = s5.neighbor(cur, pick.port);
                    state = state.after_hop(&s5, cur, next, Some(pick.vc));
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn all_candidates_are_minimal_and_within_layout() {
        let s5 = StarGraph::new(5);
        let nbc = Nbc::for_topology(&s5, 9);
        let state = MessageRoutingState { hops_taken: 2, negative_hops_taken: 1, escape_level: 2 };
        for src in [5u32, 40, 77] {
            for dest in [0u32, 33, 119] {
                if src == dest {
                    continue;
                }
                let ports = s5.min_route_ports(src, dest);
                for c in nbc.candidates(&s5, src, dest, &state) {
                    assert!(ports.contains(&c.port));
                    assert!(c.vc < nbc.virtual_channels());
                    assert!(c.vc >= state.escape_level, "never descend below the level floor");
                }
            }
        }
    }
}
