//! The bonus-card policy of Boppana & Chalasani, shared by `Nbc` and
//! `Enhanced-Nbc`.
//!
//! In the plain negative-hop scheme a message entering a node after `i`
//! negative hops *must* use escape level `i`; levels near the top are used by
//! almost no message, so their buffers sit idle.  The bonus-card refinement
//! hands each header `(levels − 1) − (negative hops it will still need)` bonus
//! cards; at every hop the header may pick any escape level between its
//! mandatory level and `mandatory + remaining cards`, spending one card per
//! level it climbs.  Deadlock freedom is preserved because the level is
//! non-decreasing along a path and bounded by the top level.

use serde::{Deserialize, Serialize};
use star_graph::{coloring, NodeId, Topology};

use crate::traits::MessageRoutingState;

/// Computes the admissible escape-level window for a hop under the bonus-card
/// rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BonusCardPolicy {
    /// Number of escape levels available per physical channel.
    pub levels: usize,
}

impl BonusCardPolicy {
    /// Creates a policy with the given number of escape levels.
    ///
    /// # Panics
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        assert!(levels > 0, "need at least one escape level");
        Self { levels }
    }

    /// Number of escape levels the negative-hop scheme needs on `topology`
    /// (`⌊H/2⌋ + 1` for a 2-coloured network of diameter `H`).
    #[must_use]
    pub fn required_levels(topology: &dyn Topology) -> usize {
        coloring::max_negative_hops(topology.diameter(), 2) + 1
    }

    /// The mandatory escape level a message must be able to use when it
    /// *arrives* at `next` after the hop `current → next`.
    #[must_use]
    pub fn mandatory_level(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        next: NodeId,
        state: &MessageRoutingState,
    ) -> usize {
        let negative = star_graph::HopSign::classify(topology.color(current), topology.color(next))
            .is_negative();
        let mandatory = state.negative_hops_taken + usize::from(negative);
        // Levels already climbed to (bonus spent) can never be descended from.
        mandatory.max(state.escape_level)
    }

    /// Inclusive range `(low, high)` of escape levels the message may use on
    /// the hop `current → next` when heading for `dest`: the mandatory level
    /// plus up to `bonus` extra levels, where `bonus` is the number of levels
    /// that can be spent without ever running out before the destination.
    ///
    /// Returns `None` if even the mandatory level exceeds the top level, which
    /// means the configuration has too few escape levels for this hop (the
    /// constructors of `Nbc`/`EnhancedNbc` prevent this for minimal routes).
    #[must_use]
    pub fn admissible_levels(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        next: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> Option<(usize, usize)> {
        let low = self.mandatory_level(topology, current, next, state);
        if low >= self.levels {
            return None;
        }
        let remaining = topology.distance(next, dest);
        let still_needed = coloring::negative_hops_remaining(topology.color(next), remaining);
        // Highest level such that climbing to it still leaves room for every
        // remaining mandatory increment.
        let high = (self.levels - 1).saturating_sub(still_needed).max(low);
        Some((low, high.min(self.levels - 1)))
    }

    /// Number of bonus cards available on a hop (the window size minus one).
    #[must_use]
    pub fn bonus_cards(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        next: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> usize {
        self.admissible_levels(topology, current, next, dest, state)
            .map_or(0, |(low, high)| high - low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{StarGraph, Topology};

    fn walk_minimal(topology: &StarGraph, src: u32, dest: u32) -> Vec<u32> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dest {
            let ports = topology.min_route_ports(cur, dest);
            cur = topology.neighbor(cur, ports[0]);
            path.push(cur);
        }
        path
    }

    #[test]
    fn required_levels_match_paper() {
        assert_eq!(BonusCardPolicy::required_levels(&StarGraph::new(5)), 4);
        assert_eq!(BonusCardPolicy::required_levels(&StarGraph::new(4)), 3);
        assert_eq!(BonusCardPolicy::required_levels(&StarGraph::new(6)), 4);
    }

    #[test]
    fn minimal_levels_always_admit_the_mandatory_level() {
        // With exactly the required number of levels, every hop of every
        // minimal path must still find an admissible window.
        let s5 = StarGraph::new(5);
        let policy = BonusCardPolicy::new(BonusCardPolicy::required_levels(&s5));
        for dest in (1..s5.node_count() as u32).step_by(13) {
            for src in (0..s5.node_count() as u32).step_by(7) {
                if src == dest {
                    continue;
                }
                let path = walk_minimal(&s5, src, dest);
                let mut state = MessageRoutingState::at_source();
                for w in path.windows(2) {
                    let (low, high) = policy
                        .admissible_levels(&s5, w[0], w[1], dest, &state)
                        .expect("mandatory level must fit");
                    assert!(low <= high);
                    assert!(high < policy.levels);
                    // always use the mandatory level for the walk
                    state = state.after_hop(&s5, w[0], w[1], Some(low));
                }
                assert!(state.negative_hops_taken < policy.levels);
            }
        }
    }

    #[test]
    fn more_levels_mean_more_bonus_cards() {
        let s5 = StarGraph::new(5);
        let tight = BonusCardPolicy::new(4);
        let loose = BonusCardPolicy::new(8);
        let state = MessageRoutingState::at_source();
        let dest = 119u32;
        let port = s5.min_route_ports(0, dest)[0];
        let next = s5.neighbor(0, port);
        let tight_cards = tight.bonus_cards(&s5, 0, next, dest, &state);
        let loose_cards = loose.bonus_cards(&s5, 0, next, dest, &state);
        assert!(loose_cards > tight_cards);
        assert_eq!(loose_cards - tight_cards, 4);
    }

    #[test]
    fn window_shrinks_as_negative_hops_are_spent() {
        let s5 = StarGraph::new(5);
        let policy = BonusCardPolicy::new(6);
        let dest = 95u32;
        let path = walk_minimal(&s5, 0, dest);
        let mut state = MessageRoutingState::at_source();
        let mut last_low = 0usize;
        for w in path.windows(2) {
            let (low, _high) = policy.admissible_levels(&s5, w[0], w[1], dest, &state).unwrap();
            assert!(low >= last_low, "mandatory level is non-decreasing along a path");
            last_low = low;
            state = state.after_hop(&s5, w[0], w[1], Some(low));
        }
    }

    #[test]
    fn spending_bonus_raises_the_mandatory_level() {
        let s5 = StarGraph::new(5);
        let policy = BonusCardPolicy::new(8);
        let dest = 31u32;
        let port = s5.min_route_ports(0, dest)[0];
        let next = s5.neighbor(0, port);
        let state = MessageRoutingState::at_source();
        let (_, high) = policy.admissible_levels(&s5, 0, next, dest, &state).unwrap();
        // climb straight to the top of the window
        let spent = state.after_hop(&s5, 0, next, Some(high));
        if next != dest {
            let port2 = s5.min_route_ports(next, dest)[0];
            let following = s5.neighbor(next, port2);
            let low2 = policy.mandatory_level(&s5, next, following, &spent);
            assert!(low2 >= high, "a spent card can never be recovered");
        }
    }
}
