//! Enhanced-Nbc: the fully adaptive routing algorithm the paper's analytical
//! model targets.
//!
//! The `V` virtual channels of every physical channel are split into
//!
//! * `V2` **class-b** (escape) channels — the *minimum* number of
//!   negative-hop levels the topology requires (`⌊H/2⌋ + 1`, i.e. 4 for `S5`)
//!   — governed by the Nbc bonus-card rule, and
//! * `V1 = V − V2` **class-a** channels that are fully adaptive: a header may
//!   use any class-a channel of any profitable output port at any time.
//!
//! A header is blocked only when every class-a channel *and* every admissible
//! class-b level of every profitable port is busy, which is exactly the
//! blocking event the analytical model of `star-core` evaluates.

use star_graph::{NodeId, Topology};

use crate::bonus_card::BonusCardPolicy;
use crate::classes::VirtualChannelLayout;
use crate::traits::{CandidateVc, MessageRoutingState, RoutingAlgorithm};

/// The Enhanced-Nbc routing algorithm.
#[derive(Debug, Clone)]
pub struct EnhancedNbc {
    layout: VirtualChannelLayout,
    policy: BonusCardPolicy,
}

impl EnhancedNbc {
    /// Builds the algorithm from an explicit layout.
    ///
    /// # Panics
    /// Panics if the layout has no adaptive channel or no escape level.
    #[must_use]
    pub fn with_layout(layout: VirtualChannelLayout) -> Self {
        assert!(layout.adaptive >= 1, "Enhanced-Nbc needs at least one class-a channel");
        assert!(layout.escape_levels >= 1, "Enhanced-Nbc needs at least one escape level");
        Self { layout, policy: BonusCardPolicy::new(layout.escape_levels) }
    }

    /// Builds the algorithm for `topology` with `total_vcs` virtual channels
    /// per physical channel: the escape set is kept at the minimum the
    /// topology requires and the rest become class-a channels.
    ///
    /// # Panics
    /// Panics if `total_vcs` does not exceed the required escape levels.
    #[must_use]
    pub fn for_topology(topology: &dyn Topology, total_vcs: usize) -> Self {
        let required = BonusCardPolicy::required_levels(topology);
        Self::with_layout(VirtualChannelLayout::enhanced(total_vcs, required))
    }

    /// Number of class-a (fully adaptive) channels.
    #[must_use]
    pub fn adaptive_channels(&self) -> usize {
        self.layout.adaptive
    }

    /// Number of class-b (escape) levels.
    #[must_use]
    pub fn escape_levels(&self) -> usize {
        self.layout.escape_levels
    }

    /// The bonus-card policy governing the class-b channels.
    #[must_use]
    pub fn policy(&self) -> BonusCardPolicy {
        self.policy
    }
}

impl RoutingAlgorithm for EnhancedNbc {
    fn name(&self) -> String {
        format!(
            "Enhanced-Nbc(V={},V1={},V2={})",
            self.layout.total(),
            self.layout.adaptive,
            self.layout.escape_levels
        )
    }

    fn layout(&self) -> VirtualChannelLayout {
        self.layout
    }

    fn candidates(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> Vec<CandidateVc> {
        debug_assert_ne!(current, dest);
        let mut out = Vec::new();
        for port in topology.min_route_ports(current, dest) {
            // class-a: every adaptive channel of every profitable port
            for vc in self.layout.adaptive_vcs() {
                out.push(CandidateVc { port, vc });
            }
            // class-b: the bonus-card window
            let next = topology.neighbor(current, port);
            if let Some((low, high)) =
                self.policy.admissible_levels(topology, current, next, dest, state)
            {
                for level in low..=high {
                    out.push(CandidateVc { port, vc: self.layout.escape_vc(level) });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{Hypercube, StarGraph};

    #[test]
    fn paper_configurations_have_expected_split() {
        let s5 = StarGraph::new(5);
        for &(v, v1) in &[(6usize, 2usize), (9, 5), (12, 8)] {
            let algo = EnhancedNbc::for_topology(&s5, v);
            assert_eq!(algo.virtual_channels(), v);
            assert_eq!(algo.adaptive_channels(), v1);
            assert_eq!(algo.escape_levels(), 4);
            assert!(algo.name().contains("Enhanced-Nbc"));
        }
    }

    #[test]
    fn candidates_contain_all_adaptive_channels_of_every_profitable_port() {
        let s5 = StarGraph::new(5);
        let algo = EnhancedNbc::for_topology(&s5, 6);
        let state = MessageRoutingState::at_source();
        for dest in (1..s5.node_count() as u32).step_by(5) {
            let ports = s5.min_route_ports(0, dest);
            let cands = algo.candidates(&s5, 0, dest, &state);
            for &port in &ports {
                for vc in 0..algo.adaptive_channels() {
                    assert!(cands.contains(&CandidateVc { port, vc }));
                }
            }
            // at least one escape candidate per profitable port
            for &port in &ports {
                assert!(
                    cands.iter().any(|c| c.port == port && c.vc >= algo.adaptive_channels()),
                    "every profitable port must keep an escape path"
                );
            }
        }
    }

    #[test]
    fn escape_candidates_respect_the_level_floor() {
        let s5 = StarGraph::new(5);
        let algo = EnhancedNbc::for_topology(&s5, 9);
        let state = MessageRoutingState { hops_taken: 3, negative_hops_taken: 2, escape_level: 2 };
        for src in [10u32, 60, 100] {
            for dest in [0u32, 50, 110] {
                if src == dest {
                    continue;
                }
                for c in algo.candidates(&s5, src, dest, &state) {
                    if c.vc >= algo.adaptive_channels() {
                        let level = c.vc - algo.adaptive_channels();
                        assert!(level >= 2, "escape level below the floor offered");
                        assert!(level < algo.escape_levels());
                    }
                }
            }
        }
    }

    #[test]
    fn never_returns_empty_along_any_minimal_walk() {
        let s5 = StarGraph::new(5);
        let algo = EnhancedNbc::for_topology(&s5, 5); // minimum legal configuration
        for dest in (1..s5.node_count() as u32).step_by(7) {
            let mut cur = 0u32;
            let mut state = MessageRoutingState::at_source();
            while cur != dest {
                let cands = algo.candidates(&s5, cur, dest, &state);
                assert!(!cands.is_empty());
                // take the worst case: always climb to the highest escape level offered
                let pick = *cands.iter().max_by_key(|c| c.vc).unwrap();
                let next = s5.neighbor(cur, pick.port);
                let level = if pick.vc >= algo.adaptive_channels() {
                    Some(pick.vc - algo.adaptive_channels())
                } else {
                    None
                };
                state = state.after_hop(&s5, cur, next, level);
                cur = next;
            }
        }
    }

    #[test]
    fn works_on_the_hypercube_too() {
        // The scheme is defined for any bipartite topology; the hypercube is
        // used by the star-vs-hypercube comparison harness.
        let q7 = Hypercube::new(7);
        let algo = EnhancedNbc::for_topology(&q7, 6);
        assert_eq!(algo.escape_levels(), 4); // diameter 7 → ⌊7/2⌋ + 1
        let state = MessageRoutingState::at_source();
        let cands = algo.candidates(&q7, 0, 0b1111111, &state);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.vc < algo.virtual_channels()));
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn rejects_insufficient_virtual_channels() {
        let s5 = StarGraph::new(5);
        let _ = EnhancedNbc::for_topology(&s5, 4);
    }
}
