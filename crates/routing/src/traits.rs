//! The [`RoutingAlgorithm`] trait and the per-message routing state the
//! algorithms consume.

use serde::{Deserialize, Serialize};
use star_graph::{HopSign, NodeId, Topology};

use crate::classes::VirtualChannelLayout;

/// Per-message state a routing algorithm may consult.  The simulator updates
/// it whenever a header flit acquires a new channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRoutingState {
    /// Hops taken so far (0 at the source).
    pub hops_taken: usize,
    /// Negative hops taken so far.
    pub negative_hops_taken: usize,
    /// Highest escape (class-b) level used so far; with bonus cards the level
    /// is non-decreasing along the path.
    pub escape_level: usize,
}

impl MessageRoutingState {
    /// State of a freshly injected message.
    #[must_use]
    pub fn at_source() -> Self {
        Self::default()
    }

    /// The state after taking the hop `current → next`, having used the given
    /// virtual channel class (`Some(level)` when an escape channel of that
    /// level was used, `None` for a class-a channel).
    #[must_use]
    pub fn after_hop(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        next: NodeId,
        escape_level_used: Option<usize>,
    ) -> Self {
        let negative =
            HopSign::classify(topology.color(current), topology.color(next)).is_negative();
        let negative_hops_taken = self.negative_hops_taken + usize::from(negative);
        let escape_level = match escape_level_used {
            Some(level) => self.escape_level.max(level),
            None => self.escape_level,
        }
        .max(negative_hops_taken);
        Self { hops_taken: self.hops_taken + 1, negative_hops_taken, escape_level }
    }
}

/// One admissible `(output port, virtual channel)` pair returned by a routing
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateVc {
    /// Output port (`0..topology.degree()`).
    pub port: usize,
    /// Virtual-channel index on that port (`0..layout.total()`).
    pub vc: usize,
}

/// A wormhole routing algorithm: given the current node, the destination and
/// the per-message state, produce every admissible `(port, virtual channel)`
/// pair.  The simulator picks one free candidate (its selection policy) or
/// blocks the header until one frees up.
pub trait RoutingAlgorithm: Send + Sync {
    /// Human-readable name (e.g. `"Enhanced-Nbc"`).
    fn name(&self) -> String;

    /// The virtual-channel layout this algorithm assumes on every physical
    /// channel.
    fn layout(&self) -> VirtualChannelLayout;

    /// Total number of virtual channels per physical channel.
    fn virtual_channels(&self) -> usize {
        self.layout().total()
    }

    /// Admissible `(port, vc)` pairs for a message currently at `current`
    /// (which must differ from `dest`) with routing state `state`.
    ///
    /// Implementations must only return ports on minimal paths and must never
    /// return an empty set for `current != dest` (the schemes in this crate
    /// always keep at least the mandatory escape level admissible).
    fn candidates(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> Vec<CandidateVc>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::StarGraph;

    #[test]
    fn state_after_hop_tracks_negative_hops_and_levels() {
        let s4 = StarGraph::new(4);
        let state = MessageRoutingState::at_source();
        // node 0 is the identity (colour Zero); its neighbours are colour One,
        // so the first hop is positive.
        let next = s4.neighbor(0, 0);
        let s1 = state.after_hop(&s4, 0, next, Some(0));
        assert_eq!(s1.hops_taken, 1);
        assert_eq!(s1.negative_hops_taken, 0);
        assert_eq!(s1.escape_level, 0);
        // the hop back is negative (One → Zero)
        let s2 = s1.after_hop(&s4, next, 0, Some(0));
        assert_eq!(s2.negative_hops_taken, 1);
        assert_eq!(s2.escape_level, 1, "escape level must cover the mandatory level");
    }

    #[test]
    fn bonus_spending_raises_the_floor() {
        let s4 = StarGraph::new(4);
        let state = MessageRoutingState::at_source();
        let next = s4.neighbor(0, 1);
        let s1 = state.after_hop(&s4, 0, next, Some(2));
        assert_eq!(s1.escape_level, 2);
        // using a class-a channel afterwards keeps the floor
        let back = s4.neighbor(next, 2);
        let s2 = s1.after_hop(&s4, next, back, None);
        assert!(s2.escape_level >= 2);
    }
}
