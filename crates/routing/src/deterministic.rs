//! Deterministic baselines.
//!
//! * [`DeterministicMinimal`]: a single canonical minimal path per
//!   source/destination pair on any topology (always the lowest-numbered
//!   profitable port), with the plain negative-hop virtual-channel discipline
//!   for deadlock freedom.  It isolates the benefit of *adaptivity* when
//!   compared against Enhanced-Nbc in the simulator.
//! * [`DimensionOrder`]: classic e-cube routing for the hypercube comparison;
//!   dimension order is itself deadlock-free, so every virtual channel of the
//!   chosen port is admissible.

use star_graph::{NodeId, Topology};

use crate::classes::VirtualChannelLayout;
use crate::traits::{CandidateVc, MessageRoutingState, RoutingAlgorithm};

/// Deterministic minimal routing: always the lowest profitable port, with the
/// negative-hop virtual-channel discipline.
#[derive(Debug, Clone)]
pub struct DeterministicMinimal {
    layout: VirtualChannelLayout,
}

impl DeterministicMinimal {
    /// Builds the algorithm with `levels` escape levels (one virtual channel
    /// per level).
    ///
    /// # Panics
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        Self { layout: VirtualChannelLayout::escape_only(levels) }
    }

    /// Builds the algorithm with the level count the topology requires,
    /// padded to `total_vcs` channels.
    ///
    /// # Panics
    /// Panics if `total_vcs` is below the required level count.
    #[must_use]
    pub fn for_topology(topology: &dyn Topology, total_vcs: usize) -> Self {
        let required = crate::bonus_card::BonusCardPolicy::required_levels(topology);
        assert!(
            total_vcs >= required,
            "{} needs at least {required} virtual channels, got {total_vcs}",
            topology.name()
        );
        Self::new(total_vcs)
    }
}

impl RoutingAlgorithm for DeterministicMinimal {
    fn name(&self) -> String {
        format!("Deterministic(V={})", self.layout.total())
    }

    fn layout(&self) -> VirtualChannelLayout {
        self.layout
    }

    fn candidates(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> Vec<CandidateVc> {
        debug_assert_ne!(current, dest);
        let ports = topology.min_route_ports(current, dest);
        let Some(&port) = ports.first() else { return Vec::new() };
        let next = topology.neighbor(current, port);
        let negative = star_graph::HopSign::classify(topology.color(current), topology.color(next))
            .is_negative();
        let level = state.negative_hops_taken + usize::from(negative);
        if level < self.layout.escape_levels {
            vec![CandidateVc { port, vc: self.layout.escape_vc(level) }]
        } else {
            Vec::new()
        }
    }
}

/// Dimension-order (e-cube) routing for the hypercube: corrects the lowest
/// differing dimension first; any virtual channel of that port may be used.
#[derive(Debug, Clone)]
pub struct DimensionOrder {
    vcs: usize,
}

impl DimensionOrder {
    /// Builds e-cube routing with `vcs` virtual channels per physical channel.
    ///
    /// # Panics
    /// Panics if `vcs` is zero.
    #[must_use]
    pub fn new(vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        Self { vcs }
    }
}

impl RoutingAlgorithm for DimensionOrder {
    fn name(&self) -> String {
        format!("DimensionOrder(V={})", self.vcs)
    }

    fn layout(&self) -> VirtualChannelLayout {
        // All channels behave identically; model them as a single adaptive set.
        VirtualChannelLayout { adaptive: self.vcs, escape_levels: 0 }
    }

    fn virtual_channels(&self) -> usize {
        self.vcs
    }

    fn candidates(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        _state: &MessageRoutingState,
    ) -> Vec<CandidateVc> {
        debug_assert_ne!(current, dest);
        let ports = topology.min_route_ports(current, dest);
        let Some(&port) = ports.iter().min() else { return Vec::new() };
        (0..self.vcs).map(|vc| CandidateVc { port, vc }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{Hypercube, StarGraph};

    #[test]
    fn deterministic_offers_exactly_one_candidate_on_star() {
        let s5 = StarGraph::new(5);
        let det = DeterministicMinimal::for_topology(&s5, 4);
        let state = MessageRoutingState::at_source();
        for dest in 1..s5.node_count() as u32 {
            let cands = det.candidates(&s5, 0, dest, &state);
            assert_eq!(cands.len(), 1);
            let d = s5.distance(0, dest);
            assert_eq!(s5.distance(s5.neighbor(0, cands[0].port), dest), d - 1);
        }
    }

    #[test]
    fn deterministic_walk_reaches_destination_within_distance() {
        let s5 = StarGraph::new(5);
        let det = DeterministicMinimal::for_topology(&s5, 4);
        for dest in (1..s5.node_count() as u32).step_by(9) {
            let mut cur = 0u32;
            let mut state = MessageRoutingState::at_source();
            let mut hops = 0;
            while cur != dest {
                let c = det.candidates(&s5, cur, dest, &state)[0];
                let next = s5.neighbor(cur, c.port);
                state = state.after_hop(&s5, cur, next, Some(c.vc));
                cur = next;
                hops += 1;
                assert!(hops <= s5.diameter());
            }
            assert_eq!(hops, s5.distance(0, dest));
        }
    }

    #[test]
    fn ecube_corrects_lowest_dimension_first() {
        let q = Hypercube::new(6);
        let ecube = DimensionOrder::new(2);
        let state = MessageRoutingState::at_source();
        let cands = ecube.candidates(&q, 0b000000, 0b101010, &state);
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.port == 1), "lowest differing dimension is 1");
    }

    #[test]
    fn ecube_walk_is_deterministic_and_minimal() {
        let q = Hypercube::new(7);
        let ecube = DimensionOrder::new(3);
        let dest = 0b1011011u32;
        let mut cur = 0u32;
        let mut hops = 0;
        let state = MessageRoutingState::at_source();
        while cur != dest {
            let c = ecube.candidates(&q, cur, dest, &state)[0];
            cur = q.neighbor(cur, c.port);
            hops += 1;
        }
        assert_eq!(hops, q.distance(0, dest));
    }
}
