//! Virtual-channel layouts: how the `V` virtual channels of a physical
//! channel are split between fully adaptive (*class-a*) channels and
//! negative-hop *escape* (*class-b*) levels.
//!
//! The paper's Enhanced-Nbc uses the **minimum** number of class-b levels the
//! negative-hop scheme needs on the topology (`⌊H/2⌋ + 1` for a 2-colourable
//! network of diameter `H`; 4 levels for `S5`) and turns every remaining
//! virtual channel into a fully adaptive class-a channel.

use serde::{Deserialize, Serialize};

/// Classification of a single virtual channel within a physical channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcClass {
    /// Fully adaptive class-a channel (Enhanced-Nbc only).
    Adaptive,
    /// Escape (class-b) channel belonging to the given negative-hop level.
    Escape(usize),
}

/// Split of the `V` virtual channels of every physical channel into adaptive
/// and escape channels.
///
/// Virtual-channel indices `0..adaptive` are class-a; index `adaptive + l` is
/// the escape channel of level `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VirtualChannelLayout {
    /// Number of fully adaptive (class-a) virtual channels.
    pub adaptive: usize,
    /// Number of escape (class-b) levels.
    pub escape_levels: usize,
}

impl VirtualChannelLayout {
    /// A layout with only escape levels (NHop / Nbc).
    ///
    /// # Panics
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn escape_only(levels: usize) -> Self {
        assert!(levels > 0, "need at least one escape level");
        Self { adaptive: 0, escape_levels: levels }
    }

    /// The Enhanced-Nbc layout for a total of `total_vcs` virtual channels on
    /// a network that needs `required_levels` escape levels: the escape set is
    /// kept at its minimum and every remaining channel becomes class-a.
    ///
    /// # Panics
    /// Panics if `total_vcs <= required_levels` (Enhanced-Nbc needs at least
    /// one adaptive channel) or `required_levels` is zero.
    #[must_use]
    pub fn enhanced(total_vcs: usize, required_levels: usize) -> Self {
        assert!(required_levels > 0, "need at least one escape level");
        assert!(
            total_vcs > required_levels,
            "Enhanced-Nbc needs more than {required_levels} virtual channels, got {total_vcs}"
        );
        Self { adaptive: total_vcs - required_levels, escape_levels: required_levels }
    }

    /// Total number of virtual channels per physical channel.
    #[must_use]
    pub fn total(&self) -> usize {
        self.adaptive + self.escape_levels
    }

    /// Class of a virtual-channel index.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    #[must_use]
    pub fn class_of(&self, vc: usize) -> VcClass {
        assert!(vc < self.total(), "virtual channel {vc} out of range");
        if vc < self.adaptive {
            VcClass::Adaptive
        } else {
            VcClass::Escape(vc - self.adaptive)
        }
    }

    /// Virtual-channel index of an escape level.
    ///
    /// # Panics
    /// Panics if the level is out of range.
    #[must_use]
    pub fn escape_vc(&self, level: usize) -> usize {
        assert!(level < self.escape_levels, "escape level {level} out of range");
        self.adaptive + level
    }

    /// Indices of all class-a virtual channels.
    #[must_use]
    pub fn adaptive_vcs(&self) -> std::ops::Range<usize> {
        0..self.adaptive
    }

    /// Whether the index denotes a class-a channel.
    #[must_use]
    pub fn is_adaptive(&self, vc: usize) -> bool {
        vc < self.adaptive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhanced_layout_matches_paper_configurations() {
        // S5 needs 4 escape levels; the paper evaluates V = 6, 9, 12.
        for &(v, expected_adaptive) in &[(6usize, 2usize), (9, 5), (12, 8)] {
            let layout = VirtualChannelLayout::enhanced(v, 4);
            assert_eq!(layout.total(), v);
            assert_eq!(layout.adaptive, expected_adaptive);
            assert_eq!(layout.escape_levels, 4);
        }
    }

    #[test]
    fn class_mapping_roundtrips() {
        let layout = VirtualChannelLayout::enhanced(9, 4);
        for vc in 0..layout.total() {
            match layout.class_of(vc) {
                VcClass::Adaptive => {
                    assert!(layout.is_adaptive(vc));
                    assert!(layout.adaptive_vcs().contains(&vc));
                }
                VcClass::Escape(level) => {
                    assert_eq!(layout.escape_vc(level), vc);
                    assert!(!layout.is_adaptive(vc));
                }
            }
        }
    }

    #[test]
    fn escape_only_layout() {
        let layout = VirtualChannelLayout::escape_only(6);
        assert_eq!(layout.total(), 6);
        assert_eq!(layout.adaptive, 0);
        assert_eq!(layout.class_of(0), VcClass::Escape(0));
        assert_eq!(layout.class_of(5), VcClass::Escape(5));
        assert!(layout.adaptive_vcs().is_empty());
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn enhanced_requires_surplus_channels() {
        let _ = VirtualChannelLayout::enhanced(4, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_of_out_of_range() {
        let _ = VirtualChannelLayout::enhanced(6, 4).class_of(6);
    }
}
