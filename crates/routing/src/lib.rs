//! # star-routing
//!
//! Wormhole routing algorithms for the star graph (and any bipartite
//! [`Topology`](star_graph::Topology)):
//!
//! * the **negative-hop** deadlock-free scheme (`NHop`) of Boppana &
//!   Chalasani: the virtual-channel level a message must use equals the
//!   number of negative hops it has taken;
//! * the **bonus-card** augmentation (`Nbc`): a header may climb above its
//!   mandatory level by the number of spare levels it still holds, balancing
//!   virtual-channel usage;
//! * **Enhanced-Nbc** (`EnhancedNbc`) — the algorithm the paper's analytical
//!   model targets: a minimal set of Nbc *escape* (class-b) channels plus
//!   `V1` fully adaptive *class-a* channels;
//! * a **deterministic minimal** baseline (`DeterministicMinimal`);
//! * **dimension-order** routing for the hypercube comparison
//!   (`DimensionOrder`).
//!
//! All algorithms are expressed against the [`RoutingAlgorithm`] trait, which
//! returns the set of admissible `(output port, virtual channel)` pairs for a
//! message at a given node; the flit-level simulator (`star-sim`) performs the
//! actual virtual-channel and switch allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bonus_card;
pub mod classes;
pub mod deterministic;
pub mod enhanced_nbc;
pub mod nbc;
pub mod negative_hop;
pub mod traits;

pub use bonus_card::BonusCardPolicy;
pub use classes::{VcClass, VirtualChannelLayout};
pub use deterministic::{DeterministicMinimal, DimensionOrder};
pub use enhanced_nbc::EnhancedNbc;
pub use nbc::Nbc;
pub use negative_hop::NHop;
pub use traits::{CandidateVc, MessageRoutingState, RoutingAlgorithm};
