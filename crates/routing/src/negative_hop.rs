//! The plain negative-hop (`NHop`) fully adaptive routing algorithm.
//!
//! Every escape level owns exactly one virtual channel; a message that has
//! taken `i` negative hops so far **must** use the level-`i` channel on its
//! next hop (or level `i + 1` when that hop is itself negative).  Routing is
//! fully adaptive over the minimal (profitable) ports; only the virtual
//! channel choice is forced.  The paper notes this scheme uses the virtual
//! channels very unevenly — high levels are almost never reached — which is
//! what the bonus-card refinement fixes.

use star_graph::{NodeId, Topology};

use crate::classes::VirtualChannelLayout;
use crate::traits::{CandidateVc, MessageRoutingState, RoutingAlgorithm};

/// Plain negative-hop routing with one virtual channel per level.
#[derive(Debug, Clone)]
pub struct NHop {
    layout: VirtualChannelLayout,
}

impl NHop {
    /// Builds the algorithm with `levels` virtual channels (one per level).
    ///
    /// # Panics
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        Self { layout: VirtualChannelLayout::escape_only(levels) }
    }

    /// Builds the algorithm with the number of levels the topology requires,
    /// optionally padded with extra (never used) levels so that the total
    /// virtual-channel count matches a configuration being compared against.
    ///
    /// # Panics
    /// Panics if `total_vcs` is smaller than the required number of levels.
    #[must_use]
    pub fn for_topology(topology: &dyn Topology, total_vcs: usize) -> Self {
        let required = crate::bonus_card::BonusCardPolicy::required_levels(topology);
        assert!(
            total_vcs >= required,
            "{} needs at least {required} virtual channels, got {total_vcs}",
            topology.name()
        );
        Self::new(total_vcs)
    }
}

impl RoutingAlgorithm for NHop {
    fn name(&self) -> String {
        format!("NHop(V={})", self.layout.total())
    }

    fn layout(&self) -> VirtualChannelLayout {
        self.layout
    }

    fn candidates(
        &self,
        topology: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        state: &MessageRoutingState,
    ) -> Vec<CandidateVc> {
        debug_assert_ne!(current, dest, "routing is only queried before the destination");
        let mut out = Vec::new();
        for port in topology.min_route_ports(current, dest) {
            let next = topology.neighbor(current, port);
            let negative =
                star_graph::HopSign::classify(topology.color(current), topology.color(next))
                    .is_negative();
            let level = state.negative_hops_taken + usize::from(negative);
            if level < self.layout.escape_levels {
                out.push(CandidateVc { port, vc: self.layout.escape_vc(level) });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::StarGraph;

    #[test]
    fn exactly_one_vc_per_profitable_port() {
        let s5 = StarGraph::new(5);
        let algo = NHop::for_topology(&s5, 6);
        assert_eq!(algo.virtual_channels(), 6);
        let state = MessageRoutingState::at_source();
        for dest in 1..40u32 {
            let ports = s5.min_route_ports(0, dest);
            let cands = algo.candidates(&s5, 0, dest, &state);
            assert_eq!(cands.len(), ports.len());
            for c in &cands {
                assert!(ports.contains(&c.port));
            }
        }
    }

    #[test]
    fn vc_level_tracks_negative_hops() {
        let s5 = StarGraph::new(5);
        let algo = NHop::for_topology(&s5, 4);
        // Walk a full minimal path and check the assigned level always equals
        // the negative-hop count on arrival.
        let dest = 119u32;
        let mut cur = 0u32;
        let mut state = MessageRoutingState::at_source();
        while cur != dest {
            let cands = algo.candidates(&s5, cur, dest, &state);
            assert!(!cands.is_empty(), "NHop must always offer a candidate");
            let pick = cands[0];
            let next = s5.neighbor(cur, pick.port);
            let negative = star_graph::HopSign::of_hop(s5.permutation(cur), s5.permutation(next))
                .is_negative();
            assert_eq!(pick.vc, state.negative_hops_taken + usize::from(negative));
            state = state.after_hop(&s5, cur, next, Some(pick.vc));
            cur = next;
        }
        assert!(state.negative_hops_taken <= 3);
    }

    #[test]
    fn high_levels_unused_from_identity_like_sources() {
        // The unbalanced-usage observation of the paper: messages can never
        // need more than ⌊H/2⌋ levels, so with V = 6 the top levels are idle.
        let s5 = StarGraph::new(5);
        let algo = NHop::for_topology(&s5, 6);
        let state = MessageRoutingState::at_source();
        for dest in 1..s5.node_count() as u32 {
            for c in algo.candidates(&s5, 0, dest, &state) {
                assert!(c.vc <= 1, "first hop can use at most level 1");
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn too_few_levels_rejected() {
        let s5 = StarGraph::new(5);
        let _ = NHop::for_topology(&s5, 3);
    }
}
