//! Model-vs-simulation validation rows (the content of Figure 1).
//!
//! The paper validates the model by plotting its latency predictions against a
//! flit-level simulator for several virtual-channel counts and message
//! lengths.  [`ValidationRow`] pairs one model evaluation with one simulation
//! report at the same operating point and exposes the relative error, which
//! `EXPERIMENTS.md` tabulates.

use serde::{Deserialize, Serialize};

use crate::model::ModelResult;

/// One operating point with both the model prediction and the simulation
/// measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Traffic generation rate `λ_g`.
    pub traffic_rate: f64,
    /// Message length in flits.
    pub message_length: usize,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Latency predicted by the analytical model (cycles); `None` when the
    /// model declares the point saturated.
    pub model_latency: Option<f64>,
    /// Latency measured by the simulator (cycles; the across-replicate mean
    /// when several replicates ran); `None` when the simulator saturated.
    pub simulated_latency: Option<f64>,
    /// Student-t 95% confidence half-width of the simulated latency across
    /// replicates (0 for a single replicate).
    pub simulated_ci95: f64,
    /// Number of simulator replicates behind the measurement.
    pub sim_replicates: u64,
}

impl ValidationRow {
    /// Builds a row from a model result and a (possibly saturated)
    /// single-replicate simulation measurement.
    #[must_use]
    pub fn new(model: &ModelResult, simulated_latency: Option<f64>) -> Self {
        Self {
            traffic_rate: model.config.traffic_rate,
            message_length: model.config.message_length,
            virtual_channels: model.config.virtual_channels,
            model_latency: if model.saturated { None } else { Some(model.mean_latency) },
            simulated_latency,
            simulated_ci95: 0.0,
            sim_replicates: 1,
        }
    }

    /// Attaches the across-replicate confidence interval of the simulated
    /// measurement.
    #[must_use]
    pub fn with_sim_ci(mut self, ci95: f64, replicates: u64) -> Self {
        self.simulated_ci95 = ci95;
        self.sim_replicates = replicates;
        self
    }

    /// Relative error of the model against the simulation,
    /// `(model − sim)/sim`, when both are available.
    #[must_use]
    pub fn relative_error(&self) -> Option<f64> {
        match (self.model_latency, self.simulated_latency) {
            (Some(m), Some(s)) if s > 0.0 => Some((m - s) / s),
            _ => None,
        }
    }

    /// Whether model and simulation agree on the operating point being beyond
    /// saturation.
    #[must_use]
    pub fn both_saturated(&self) -> bool {
        self.model_latency.is_none() && self.simulated_latency.is_none()
    }

    /// CSV header matching [`Self::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> String {
        "traffic_rate,message_length,virtual_channels,model_latency,simulated_latency,\
         simulated_ci95,sim_replicates,relative_error"
            .to_string()
    }

    /// The row in CSV form (empty fields for saturated points).
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        let fmt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
        format!(
            "{},{},{},{},{},{:.4},{},{}",
            self.traffic_rate,
            self.message_length,
            self.virtual_channels,
            fmt(self.model_latency),
            fmt(self.simulated_latency),
            self.simulated_ci95,
            self.sim_replicates,
            fmt(self.relative_error()),
        )
    }
}

/// Mean absolute relative error over the rows where both model and simulation
/// produced a latency.
#[must_use]
pub fn mean_absolute_relative_error(rows: &[ValidationRow]) -> Option<f64> {
    let errors: Vec<f64> = rows.iter().filter_map(|r| r.relative_error().map(f64::abs)).collect();
    if errors.is_empty() {
        None
    } else {
        Some(errors.iter().sum::<f64>() / errors.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::AnalyticalModel;

    fn model_at(rate: f64) -> ModelResult {
        AnalyticalModel::new(
            ModelConfig::builder()
                .symbols(4)
                .virtual_channels(6)
                .message_length(16)
                .traffic_rate(rate)
                .build(),
        )
        .solve()
    }

    #[test]
    fn relative_error_computation() {
        let m = model_at(0.002);
        let row = ValidationRow::new(&m, Some(m.mean_latency * 1.1));
        let err = row.relative_error().unwrap();
        assert!((err - (1.0 / 1.1 - 1.0)).abs() < 1e-9);
        assert!(!row.both_saturated());
    }

    #[test]
    fn saturated_points_have_no_error() {
        let m = model_at(0.5);
        assert!(m.saturated);
        let row = ValidationRow::new(&m, None);
        assert!(row.relative_error().is_none());
        assert!(row.both_saturated());
        assert!(row.to_csv_row().contains(",,"));
        assert!(row.to_csv_row().ends_with(','));
    }

    #[test]
    fn replicate_ci_travels_into_the_csv() {
        let m = model_at(0.002);
        let row = ValidationRow::new(&m, Some(50.0)).with_sim_ci(1.25, 8);
        assert_eq!(row.simulated_ci95, 1.25);
        assert_eq!(row.sim_replicates, 8);
        assert!(row.to_csv_row().contains(",1.2500,8,"));
        // the single-replicate default keeps a degenerate interval
        let plain = ValidationRow::new(&m, Some(50.0));
        assert_eq!(plain.simulated_ci95, 0.0);
        assert_eq!(plain.sim_replicates, 1);
    }

    #[test]
    fn mean_error_aggregates_only_defined_rows() {
        let m = model_at(0.002);
        let rows = vec![
            ValidationRow::new(&m, Some(m.mean_latency)),
            ValidationRow::new(&m, Some(m.mean_latency * 1.2)),
            ValidationRow::new(&m, None),
        ];
        let mare = mean_absolute_relative_error(&rows).unwrap();
        assert!(mare > 0.0 && mare < 0.2);
        assert!(mean_absolute_relative_error(&[]).is_none());
    }

    #[test]
    fn csv_header_matches_row_field_count() {
        let m = model_at(0.002);
        let row = ValidationRow::new(&m, Some(50.0));
        assert_eq!(
            ValidationRow::csv_header().split(',').count(),
            row.to_csv_row().split(',').count()
        );
    }
}
