//! Blocking probabilities (Eqs. 6-11).
//!
//! A header taking its `k`-th hop toward a destination at distance `h` is
//! blocked when, on **every** one of the `f` physical channels that bring it
//! closer to the destination, all of the virtual channels it is allowed to
//! use are busy.  Under Enhanced-Nbc the allowed set on one physical channel
//! is
//!
//! * the `V1` fully adaptive class-a channels, plus
//! * the class-b (escape) levels permitted by the bonus-card rule: from the
//!   mandatory level (the number of negative hops taken when the message
//!   *arrives* at the next node) up to the highest level that still leaves
//!   room for every negative hop the rest of the journey may require.
//!
//! Because the star graph is bipartite, hop signs alternate deterministically
//! along any path: a message from an even-coloured source takes its negative
//! hops on even-numbered hops, a message from an odd-coloured source on
//! odd-numbered ones.  The paper captures the same effect with its
//! A / B⁻ / B⁺ message groups and the ½–½ split between B⁻ and B⁺; here the
//! two source colours are averaged explicitly (the colour classes have equal
//! size).  The OCR of Eqs. 8-11 is partially unreadable; this reconstruction
//! preserves the quantities the paper identifies as driving the blocking
//! probability — remaining distance, negative hops already taken, and the
//! number of alternative output channels — and is documented in DESIGN.md.
//!
//! **Topology split:** everything in this module is topology-agnostic.  The
//! derivation only assumes a bipartite network with equal colour classes
//! (so hop signs alternate deterministically and the ½–½ colour average is
//! exact) — true of both the star graph and the binary hypercube — and all
//! topology knowledge arrives pre-digested through the [`AdaptivityProfile`]
//! (how many alternative ports each hop offers) and the [`VcSplit`] (how the
//! discipline partitions the virtual channels).  The star model
//! ([`crate::AnalyticalModel`]) and the hypercube model
//! ([`crate::HypercubeModel`]) call these functions unchanged.

use star_graph::coloring::{negative_hops_after, negative_hops_remaining, Color};
use star_graph::AdaptivityProfile;

use crate::occupancy::ChannelOccupancy;

/// The virtual-channel split the blocking computation assumes.
#[derive(Debug, Clone, Copy)]
pub struct VcSplit {
    /// Fully adaptive class-a channels (`V1`).
    pub adaptive: usize,
    /// Escape (class-b) levels (`V2`).
    pub escape_levels: usize,
    /// Whether headers may climb above their mandatory escape level
    /// (bonus cards — true for Enhanced-Nbc and Nbc, false for plain NHop).
    pub bonus_cards: bool,
}

impl VcSplit {
    /// Total virtual channels per physical channel.
    #[must_use]
    pub fn total(&self) -> usize {
        self.adaptive + self.escape_levels
    }
}

/// Number of virtual channels a message may use on one admissible physical
/// channel at its `k`-th hop (1-based) toward a destination at distance
/// `distance`, for a message whose source has colour `source_color`.
///
/// Returns `V1 + (number of admissible escape levels)`.
#[must_use]
pub fn selectable_vcs(split: VcSplit, source_color: Color, hop: usize, distance: usize) -> usize {
    assert!(hop >= 1 && hop <= distance, "hop {hop} out of range for distance {distance}");
    // Negative hops taken once the message arrives at the next node.
    let neg_taken = negative_hops_after(source_color, hop);
    // Colour of the node the message arrives at: the source colour flipped
    // `hop` times.
    let arrival_color = if hop % 2 == 0 { source_color } else { source_color.flip() };
    // Negative hops the remaining `distance - hop` hops may still require.
    let neg_remaining = negative_hops_remaining(arrival_color, distance - hop);
    // Admissible escape levels: mandatory level .. highest level that keeps
    // `neg_remaining` levels in reserve (just the mandatory level when the
    // discipline has no bonus cards).
    let top = split.escape_levels - 1;
    let low = neg_taken.min(top);
    let high = if split.bonus_cards { top.saturating_sub(neg_remaining).max(low) } else { low };
    split.adaptive + (high - low + 1)
}

/// Probability that a message is blocked at its `k`-th hop (1-based) toward a
/// destination at distance `distance`, given the per-hop adaptivity profile
/// and the channel occupancy at the current operating point (Eqs. 7-8).
///
/// The blocking event requires **all** `f` admissible physical channels to be
/// blocked, and each is blocked when all of the virtual channels the message
/// may use on it are busy; both source colours are averaged with weight ½.
#[must_use]
pub fn hop_blocking_probability(
    split: VcSplit,
    occupancy: &ChannelOccupancy,
    profile: &AdaptivityProfile,
    hop: usize,
    distance: usize,
) -> f64 {
    debug_assert_eq!(profile.distance, distance);
    let mut total = 0.0;
    for color in [Color::Zero, Color::One] {
        let selectable = selectable_vcs(split, color, hop, distance);
        let p_channel = occupancy.prob_all_busy(selectable);
        // expectation of p_channel^f over the adaptivity distribution at this hop
        let p_hop = profile.expect_over_adaptivity(hop - 1, |f| p_channel.powi(f as i32));
        total += 0.5 * p_hop;
    }
    total.clamp(0.0, 1.0)
}

/// Mean total blocking delay of a message headed to a destination of the
/// given profile: `Σ_k P_block(k) · w̄` (Eqs. 4-6).
#[must_use]
pub fn total_blocking_delay(
    split: VcSplit,
    occupancy: &ChannelOccupancy,
    profile: &AdaptivityProfile,
    mean_wait: f64,
) -> f64 {
    (1..=profile.distance)
        .map(|hop| {
            hop_blocking_probability(split, occupancy, profile, hop, profile.distance) * mean_wait
        })
        .sum()
}

/// The per-destination-class blocking delays of one latency step, in input
/// order: [`total_blocking_delay`] for every profile, optionally sharded
/// across the shared [`star_exec::ExecPool`].
///
/// The classes are mutually independent (this is the embarrassingly parallel
/// inner sum of every model iteration), and each class's delay is computed
/// exactly as in the serial path, so the output is **byte-identical for any
/// thread count** — parallelism only re-orders wall-clock, never the
/// per-class floating-point evaluation or the caller's summation order.
///
/// `threads` follows the workspace-wide width convention: `1` (the default
/// everywhere except explicitly opted-in solves and the
/// `model_solve`/`hypercube_model` benches) short-circuits to the serial
/// loop with no queue traffic, `0` means all pool workers, any other value
/// caps the executors.  This function is called once per fixed-point
/// iteration — thousands of times per solve — which is exactly why it runs
/// on persistent pool workers instead of spawning threads per call (the
/// spawn-per-step cost used to exceed the useful work on small spectra).
#[must_use]
pub fn batch_blocking_delays(
    split: VcSplit,
    occupancy: &ChannelOccupancy,
    profiles: &[&AdaptivityProfile],
    mean_wait: f64,
    threads: usize,
) -> Vec<f64> {
    star_exec::ExecPool::global_ordered(threads, profiles, |_, profile| {
        total_blocking_delay(split, occupancy, profile, mean_wait)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::path::MinimalPathDag;
    use star_graph::Permutation;

    const SPLIT_V6: VcSplit = VcSplit { adaptive: 2, escape_levels: 4, bonus_cards: true };
    const SPLIT_V12: VcSplit = VcSplit { adaptive: 8, escape_levels: 4, bonus_cards: true };
    const SPLIT_NHOP_V6: VcSplit = VcSplit { adaptive: 0, escape_levels: 6, bonus_cards: false };
    const SPLIT_NBC_V6: VcSplit = VcSplit { adaptive: 0, escape_levels: 6, bonus_cards: true };

    fn profile_for(symbols: &[u8]) -> AdaptivityProfile {
        MinimalPathDag::build(&Permutation::from_symbols(symbols).unwrap()).adaptivity_profile()
    }

    #[test]
    fn selectable_vcs_stay_within_total() {
        for &split in &[SPLIT_V6, SPLIT_V12] {
            for distance in 1..=6 {
                for hop in 1..=distance {
                    for color in [Color::Zero, Color::One] {
                        let s = selectable_vcs(split, color, hop, distance);
                        assert!(s > split.adaptive, "at least the mandatory escape level");
                        assert!(s <= split.total(), "cannot exceed V");
                    }
                }
            }
        }
    }

    #[test]
    fn last_hop_offers_the_widest_escape_window() {
        // On the final hop nothing more can go negative, so every level from
        // the mandatory one to the top is admissible.
        let split = SPLIT_V6;
        for distance in 1..=6usize {
            for color in [Color::Zero, Color::One] {
                let s = selectable_vcs(split, color, distance, distance);
                let neg_taken = negative_hops_after(color, distance);
                let expected =
                    split.adaptive + (split.escape_levels - neg_taken.min(split.escape_levels - 1));
                assert_eq!(s, expected);
            }
        }
    }

    #[test]
    fn more_virtual_channels_mean_more_choice() {
        for distance in 1..=6 {
            for hop in 1..=distance {
                for color in [Color::Zero, Color::One] {
                    assert!(
                        selectable_vcs(SPLIT_V12, color, hop, distance)
                            > selectable_vcs(SPLIT_V6, color, hop, distance)
                    );
                }
            }
        }
    }

    #[test]
    fn blocking_is_zero_at_zero_load_and_one_at_saturation() {
        let profile = profile_for(&[2, 1, 4, 3, 5]);
        let idle = ChannelOccupancy::new(0.0, 40.0, 6);
        let jammed = ChannelOccupancy::new(1.0, 40.0, 6);
        for hop in 1..=profile.distance {
            assert_eq!(
                hop_blocking_probability(SPLIT_V6, &idle, &profile, hop, profile.distance),
                0.0
            );
            assert!(
                (hop_blocking_probability(SPLIT_V6, &jammed, &profile, hop, profile.distance)
                    - 1.0)
                    .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn blocking_grows_with_load() {
        let profile = profile_for(&[3, 4, 5, 1, 2]);
        let mut last = -1.0;
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let occ = ChannelOccupancy::new(rho / 50.0, 50.0, 6);
            let p = hop_blocking_probability(SPLIT_V6, &occ, &profile, 2, profile.distance);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn adaptivity_reduces_blocking() {
        // The first hop of a two-transposition destination offers 3 choices;
        // its last hop only 1.  At the same occupancy the first hop must be
        // (weakly) less likely to block.
        let profile = profile_for(&[2, 1, 4, 3, 5]);
        let occ = ChannelOccupancy::new(0.006, 60.0, 6);
        let first = hop_blocking_probability(SPLIT_V6, &occ, &profile, 1, 4);
        let last = hop_blocking_probability(SPLIT_V6, &occ, &profile, 4, 4);
        assert!(first < last);
    }

    #[test]
    fn more_virtual_channels_reduce_blocking() {
        let profile = profile_for(&[5, 4, 3, 2, 1]);
        let occ6 = ChannelOccupancy::new(0.006, 60.0, 6);
        let occ12 = ChannelOccupancy::new(0.006, 60.0, 12);
        for hop in 1..=profile.distance {
            let p6 = hop_blocking_probability(SPLIT_V6, &occ6, &profile, hop, profile.distance);
            let p12 = hop_blocking_probability(SPLIT_V12, &occ12, &profile, hop, profile.distance);
            assert!(p12 <= p6 + 1e-12, "hop {hop}: V=12 must not block more than V=6");
        }
    }

    #[test]
    fn total_blocking_delay_scales_with_wait() {
        let profile = profile_for(&[2, 3, 1, 5, 4]);
        let occ = ChannelOccupancy::new(0.008, 55.0, 6);
        let d1 = total_blocking_delay(SPLIT_V6, &occ, &profile, 10.0);
        let d2 = total_blocking_delay(SPLIT_V6, &occ, &profile, 20.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn nhop_discipline_gets_exactly_one_channel_per_port() {
        for distance in 1..=6 {
            for hop in 1..=distance {
                for color in [Color::Zero, Color::One] {
                    assert_eq!(selectable_vcs(SPLIT_NHOP_V6, color, hop, distance), 1);
                }
            }
        }
    }

    #[test]
    fn bonus_cards_widen_the_window_over_plain_nhop() {
        let mut strictly_wider = 0;
        for distance in 1..=6 {
            for hop in 1..=distance {
                for color in [Color::Zero, Color::One] {
                    let nbc = selectable_vcs(SPLIT_NBC_V6, color, hop, distance);
                    let nhop = selectable_vcs(SPLIT_NHOP_V6, color, hop, distance);
                    assert!(nbc >= nhop);
                    if nbc > nhop {
                        strictly_wider += 1;
                    }
                }
            }
        }
        assert!(strictly_wider > 0);
    }

    #[test]
    fn nhop_blocks_more_than_nbc_at_the_same_occupancy() {
        let profile = profile_for(&[5, 4, 3, 2, 1]);
        let occ = ChannelOccupancy::new(0.006, 60.0, 6);
        for hop in 1..=profile.distance {
            let nhop =
                hop_blocking_probability(SPLIT_NHOP_V6, &occ, &profile, hop, profile.distance);
            let nbc = hop_blocking_probability(SPLIT_NBC_V6, &occ, &profile, hop, profile.distance);
            assert!(nhop >= nbc - 1e-12, "hop {hop}: NHop must block at least as much as Nbc");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_zero_is_rejected() {
        let _ = selectable_vcs(SPLIT_V6, Color::Zero, 0, 3);
    }

    #[test]
    fn batched_delays_are_byte_identical_for_any_thread_count() {
        let profiles = [
            profile_for(&[2, 1, 4, 3, 5]),
            profile_for(&[3, 4, 5, 1, 2]),
            profile_for(&[5, 4, 3, 2, 1]),
            profile_for(&[2, 3, 1, 5, 4]),
            profile_for(&[1, 2, 3, 5, 4]),
        ];
        let refs: Vec<&AdaptivityProfile> = profiles.iter().collect();
        let occ = ChannelOccupancy::new(0.006, 60.0, 6);
        let serial = batch_blocking_delays(SPLIT_V6, &occ, &refs, 12.0, 1);
        assert_eq!(serial.len(), refs.len());
        for (delay, profile) in serial.iter().zip(&refs) {
            assert_eq!(*delay, total_blocking_delay(SPLIT_V6, &occ, profile, 12.0));
        }
        // 0 = all pool workers, the workspace-wide width convention
        for threads in [0usize, 2, 3, 5, 16] {
            let sharded = batch_blocking_delays(SPLIT_V6, &occ, &refs, 12.0, threads);
            assert_eq!(serial, sharded, "threads = {threads}");
        }
    }
}
