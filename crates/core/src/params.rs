//! Unified model parameters that pair with a topology value instead of a
//! per-topology config struct.
//!
//! [`crate::ModelConfig`] (star) and [`crate::HypercubeConfig`] (hypercube)
//! bundle the *same* four knobs — virtual channels `V`, message length `M`,
//! traffic rate `λ_g`, routing discipline — with a topology-specific size
//! field and topology-specific validation ranges.  [`ModelParams`] keeps only
//! the four knobs; the topology arrives separately as `&dyn Topology`, and
//! [`ModelParams::validate_for`] derives the requirements (escape-level
//! minimum `⌊diameter/2⌋ + 1`, size ranges) from the topology itself,
//! delegating to the closed-form validators when the topology is a star graph
//! or hypercube so the error messages stay identical.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use star_graph::coloring::max_negative_hops;
use star_graph::{Hypercube, StarGraph, Topology};

use crate::blocking::VcSplit;
use crate::config::{ConfigError, ModelConfig, RoutingDiscipline};
use crate::hypercube::{HypercubeConfig, HypercubeConfigError, HypercubeRouting};

/// Which routing scheme the model evaluates, across every topology.
///
/// The three adaptive variants are the star paper's negative-hop disciplines
/// ([`RoutingDiscipline`]); `Deterministic` is the dimension-order style
/// baseline (one admissible output port and one admissible virtual channel
/// per hop), which the closed-form star model does not cover but the
/// hypercube model ([`HypercubeRouting::DimensionOrder`]) and the generic
/// [`crate::SpectrumModel`] do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ModelDiscipline {
    /// Minimal escape levels plus fully adaptive class-a channels, with
    /// bonus cards on the escape levels (the paper's algorithm).
    #[default]
    EnhancedNbc,
    /// Negative-hop with bonus cards over all `V` virtual channels.
    Nbc,
    /// Plain negative-hop: one admissible virtual channel per admissible
    /// physical channel.
    NHop,
    /// Deterministic minimal routing: one admissible output port per hop,
    /// one admissible virtual channel (the mandatory negative-hop level).
    Deterministic,
}

impl ModelDiscipline {
    /// Whether the scheme offers every profitable output port (adaptive) or
    /// a single canonical one (deterministic).
    #[must_use]
    pub fn is_adaptive(self) -> bool {
        !matches!(self, ModelDiscipline::Deterministic)
    }

    /// Whether headers may climb above their mandatory escape level
    /// (bonus cards).
    #[must_use]
    pub fn bonus_cards(self) -> bool {
        matches!(self, ModelDiscipline::EnhancedNbc | ModelDiscipline::Nbc)
    }

    /// The star-model discipline, if the closed-form star model covers this
    /// scheme (it has no deterministic variant).
    #[must_use]
    pub fn star_discipline(self) -> Option<RoutingDiscipline> {
        match self {
            ModelDiscipline::EnhancedNbc => Some(RoutingDiscipline::EnhancedNbc),
            ModelDiscipline::Nbc => Some(RoutingDiscipline::Nbc),
            ModelDiscipline::NHop => Some(RoutingDiscipline::NHop),
            ModelDiscipline::Deterministic => None,
        }
    }

    /// The hypercube-model routing scheme (every discipline is covered;
    /// `Deterministic` maps to dimension-order e-cube routing).
    #[must_use]
    pub fn hypercube_routing(self) -> HypercubeRouting {
        match self {
            ModelDiscipline::EnhancedNbc => HypercubeRouting::EnhancedNbc,
            ModelDiscipline::Nbc => HypercubeRouting::Nbc,
            ModelDiscipline::NHop => HypercubeRouting::NHop,
            ModelDiscipline::Deterministic => HypercubeRouting::DimensionOrder,
        }
    }
}

/// Why a [`ModelParams`] / topology pairing is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelParamsError {
    /// The star-graph validator rejected the pairing.
    Star(ConfigError),
    /// The hypercube validator rejected the pairing.
    Hypercube(HypercubeConfigError),
    /// Messages must be at least one flit long.
    ZeroLengthMessage,
    /// The traffic generation rate is negative, NaN or infinite.
    InvalidTrafficRate {
        /// The rejected rate.
        rate: f64,
    },
    /// The discipline needs more virtual channels than were configured.
    TooFewVirtualChannels {
        /// The discipline being modelled.
        discipline: ModelDiscipline,
        /// Minimum negative-hop levels the topology requires.
        required_levels: usize,
        /// The rejected virtual-channel count.
        got: usize,
    },
}

impl fmt::Display for ModelParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelParamsError::Star(e) => e.fmt(f),
            ModelParamsError::Hypercube(e) => e.fmt(f),
            ModelParamsError::ZeroLengthMessage => write!(f, "messages need at least one flit"),
            ModelParamsError::InvalidTrafficRate { rate } => {
                write!(f, "traffic rate must be finite and non-negative, got {rate}")
            }
            ModelParamsError::TooFewVirtualChannels {
                discipline: ModelDiscipline::EnhancedNbc,
                required_levels,
                got,
            } => write!(
                f,
                "Enhanced-Nbc needs more than {required_levels} virtual channels, got {got}"
            ),
            ModelParamsError::TooFewVirtualChannels { discipline, required_levels, got } => {
                write!(
                    f,
                    "{discipline:?} needs at least {required_levels} virtual channels, got {got}"
                )
            }
        }
    }
}

impl Error for ModelParamsError {}

/// The four model knobs that are common to every topology: virtual channels
/// `V`, message length `M`, traffic generation rate `λ_g` and the routing
/// discipline.  Pair with a [`Topology`] (or a
/// [`crate::TraversalSpectrum`]) to evaluate the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Virtual channels `V` per physical channel.
    pub virtual_channels: usize,
    /// Message length `M` in flits.
    pub message_length: usize,
    /// Traffic generation rate `λ_g` in messages per node per cycle.
    pub traffic_rate: f64,
    /// Routing discipline being modelled.
    pub discipline: ModelDiscipline,
}

impl Default for ModelParams {
    /// The paper's `V = 6`, `M = 32`, Enhanced-Nbc configuration at a low
    /// load (the topology is supplied separately).
    fn default() -> Self {
        Self {
            virtual_channels: 6,
            message_length: 32,
            traffic_rate: 0.001,
            discipline: ModelDiscipline::EnhancedNbc,
        }
    }
}

impl ModelParams {
    /// Returns a copy with the traffic rate replaced — the knob sweeps turn.
    #[must_use]
    pub fn with_rate(self, rate: f64) -> Self {
        Self { traffic_rate: rate, ..self }
    }

    /// Minimum number of negative-hop levels a bipartite topology of the
    /// given diameter requires (`⌊diameter/2⌋ + 1`).
    #[must_use]
    pub fn required_levels(diameter: usize) -> usize {
        max_negative_hops(diameter, 2) + 1
    }

    /// Smallest valid `V` for this discipline on a topology of the given
    /// diameter (`levels + 1` for Enhanced-Nbc, which needs at least one
    /// class-a channel; `levels` otherwise).
    #[must_use]
    pub fn min_virtual_channels(discipline: ModelDiscipline, diameter: usize) -> usize {
        let levels = Self::required_levels(diameter);
        match discipline {
            ModelDiscipline::EnhancedNbc => levels + 1,
            _ => levels,
        }
    }

    /// Number of class-b (escape) virtual channels for a topology of the
    /// given diameter.
    #[must_use]
    pub fn escape_levels(&self, diameter: usize) -> usize {
        match self.discipline {
            ModelDiscipline::EnhancedNbc => Self::required_levels(diameter),
            _ => self.virtual_channels,
        }
    }

    /// Number of class-a (fully adaptive) virtual channels for a topology of
    /// the given diameter.
    #[must_use]
    pub fn adaptive_channels(&self, diameter: usize) -> usize {
        match self.discipline {
            ModelDiscipline::EnhancedNbc => self.virtual_channels - Self::required_levels(diameter),
            _ => 0,
        }
    }

    /// The virtual-channel split the blocking equations assume on a topology
    /// of the given diameter.
    #[must_use]
    pub fn vc_split(&self, diameter: usize) -> VcSplit {
        VcSplit {
            adaptive: self.adaptive_channels(diameter),
            escape_levels: self.escape_levels(diameter),
            bonus_cards: self.discipline.bonus_cards(),
        }
    }

    /// Topology-agnostic validation against a diameter: message length,
    /// traffic rate and the virtual-channel floor.
    ///
    /// # Errors
    /// Returns a [`ModelParamsError`] describing the first violation.
    pub fn try_validate_generic(&self, diameter: usize) -> Result<(), ModelParamsError> {
        if self.message_length < 1 {
            return Err(ModelParamsError::ZeroLengthMessage);
        }
        if !(self.traffic_rate >= 0.0 && self.traffic_rate.is_finite()) {
            return Err(ModelParamsError::InvalidTrafficRate { rate: self.traffic_rate });
        }
        if self.virtual_channels < Self::min_virtual_channels(self.discipline, diameter) {
            return Err(ModelParamsError::TooFewVirtualChannels {
                discipline: self.discipline,
                required_levels: Self::required_levels(diameter),
                got: self.virtual_channels,
            });
        }
        Ok(())
    }

    /// Validates the pairing of these parameters with a topology, delegating
    /// to the closed-form validators when the topology is a [`StarGraph`] or
    /// [`Hypercube`] (so their size-range checks and error messages apply)
    /// and to [`Self::try_validate_generic`] otherwise.
    ///
    /// A star graph with the deterministic discipline validates generically:
    /// the closed-form star model has no deterministic variant, but the
    /// generic spectrum model covers it.
    ///
    /// # Errors
    /// Returns a [`ModelParamsError`] describing the first violation.
    pub fn validate_for(&self, topology: &dyn Topology) -> Result<(), ModelParamsError> {
        if let Some(star) = topology.as_any().downcast_ref::<StarGraph>() {
            if let Some(config) = self.star_config(star.symbols()) {
                return config.try_validate().map_err(ModelParamsError::Star);
            }
        } else if let Some(cube) = topology.as_any().downcast_ref::<Hypercube>() {
            return self
                .hypercube_config(cube.dims())
                .try_validate()
                .map_err(ModelParamsError::Hypercube);
        }
        self.try_validate_generic(topology.diameter())
    }

    /// The closed-form star configuration for `S_n`, if the star model
    /// covers this discipline (not validated — pair with
    /// [`ModelConfig::try_validate`]).
    #[must_use]
    pub fn star_config(&self, symbols: usize) -> Option<ModelConfig> {
        Some(ModelConfig {
            symbols,
            virtual_channels: self.virtual_channels,
            message_length: self.message_length,
            traffic_rate: self.traffic_rate,
            discipline: self.discipline.star_discipline()?,
        })
    }

    /// The closed-form hypercube configuration for `Q_d` (not validated —
    /// pair with [`HypercubeConfig::try_validate`]).
    #[must_use]
    pub fn hypercube_config(&self, dims: usize) -> HypercubeConfig {
        HypercubeConfig {
            dims,
            virtual_channels: self.virtual_channels,
            message_length: self.message_length,
            traffic_rate: self.traffic_rate,
            routing: self.discipline.hypercube_routing(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{Ring, Torus};

    fn params(v: usize) -> ModelParams {
        ModelParams { virtual_channels: v, ..ModelParams::default() }
    }

    #[test]
    fn default_matches_the_papers_knobs() {
        let p = ModelParams::default();
        assert_eq!(p.virtual_channels, 6);
        assert_eq!(p.message_length, 32);
        assert_eq!(p.discipline, ModelDiscipline::EnhancedNbc);
        assert!((p.with_rate(0.004).traffic_rate - 0.004).abs() < 1e-15);
    }

    #[test]
    fn star_validation_delegates_to_the_closed_form() {
        let star = StarGraph::new(5);
        assert!(params(6).validate_for(&star).is_ok());
        // V = 4 fails with the star validator's error, not the generic one
        assert_eq!(
            params(4).validate_for(&star),
            Err(ModelParamsError::Star(ConfigError::TooFewVirtualChannels {
                discipline: RoutingDiscipline::EnhancedNbc,
                symbols: 5,
                required_levels: 4,
                got: 4,
            }))
        );
        let msg = params(4).validate_for(&star).unwrap_err().to_string();
        assert!(msg.contains("Enhanced-Nbc on S_5"), "delegated message: {msg}");
    }

    #[test]
    fn hypercube_validation_delegates_to_the_closed_form() {
        let cube = Hypercube::new(10);
        assert!(params(8).validate_for(&cube).is_ok());
        let err = params(6).validate_for(&cube).unwrap_err();
        assert!(matches!(err, ModelParamsError::Hypercube(_)));
        assert!(err.to_string().contains("Q_10"));
        // the deterministic discipline maps to dimension-order and accepts
        // V == required levels
        let det = ModelParams { discipline: ModelDiscipline::Deterministic, ..params(6) };
        assert!(det.validate_for(&cube).is_ok());
    }

    #[test]
    fn generic_validation_covers_torus_and_ring() {
        let t12 = Torus::new(12); // diameter 12 → 7 levels → V ≥ 8 for Enhanced-Nbc
        assert_eq!(ModelParams::required_levels(t12.diameter()), 7);
        assert!(params(8).validate_for(&t12).is_ok());
        assert_eq!(
            params(7).validate_for(&t12),
            Err(ModelParamsError::TooFewVirtualChannels {
                discipline: ModelDiscipline::EnhancedNbc,
                required_levels: 7,
                got: 7,
            })
        );
        let ring = Ring::new(8); // diameter 4 → 3 levels
        assert!(params(4).validate_for(&ring).is_ok());
        let nhop = ModelParams { discipline: ModelDiscipline::NHop, ..params(3) };
        assert!(nhop.validate_for(&ring).is_ok(), "escape-only schemes accept V == levels");
    }

    #[test]
    fn generic_validation_rejects_bad_messages_and_rates() {
        let torus = Torus::new(8);
        let zero = ModelParams { message_length: 0, ..params(8) };
        assert_eq!(zero.validate_for(&torus), Err(ModelParamsError::ZeroLengthMessage));
        let nan = ModelParams { traffic_rate: f64::NAN, ..params(8) };
        assert!(matches!(
            nan.validate_for(&torus),
            Err(ModelParamsError::InvalidTrafficRate { .. })
        ));
    }

    #[test]
    fn star_deterministic_falls_back_to_generic_validation() {
        let star = StarGraph::new(5);
        let det = ModelParams { discipline: ModelDiscipline::Deterministic, ..params(4) };
        assert!(det.star_config(5).is_none(), "no closed-form star deterministic model");
        assert!(det.validate_for(&star).is_ok(), "V = 4 covers the 4 levels S5 needs");
    }

    #[test]
    fn vc_split_matches_the_per_topology_configs() {
        let p = params(6);
        let star_cfg = p.star_config(5).unwrap();
        let split = p.vc_split(star_cfg.diameter());
        assert_eq!(split.adaptive, star_cfg.adaptive_channels());
        assert_eq!(split.escape_levels, star_cfg.escape_levels());
        assert_eq!(split.bonus_cards, star_cfg.bonus_cards());
        let cube_cfg = params(8).hypercube_config(10);
        let split = params(8).vc_split(cube_cfg.diameter());
        assert_eq!(split.adaptive, cube_cfg.adaptive_channels());
        assert_eq!(split.escape_levels, cube_cfg.escape_levels());
        assert_eq!(split.bonus_cards, cube_cfg.bonus_cards());
    }

    #[test]
    fn discipline_mappings_round_trip() {
        for d in [
            ModelDiscipline::EnhancedNbc,
            ModelDiscipline::Nbc,
            ModelDiscipline::NHop,
            ModelDiscipline::Deterministic,
        ] {
            assert_eq!(d.is_adaptive(), d.hypercube_routing().is_adaptive());
            if let Some(star) = d.star_discipline() {
                assert_eq!(format!("{star:?}"), format!("{d:?}"));
            }
        }
        assert!(!ModelDiscipline::NHop.bonus_cards());
        assert!(!ModelDiscipline::Deterministic.bonus_cards());
        assert!(ModelDiscipline::Nbc.bonus_cards());
    }

    #[test]
    fn error_displays() {
        let err = ModelParamsError::TooFewVirtualChannels {
            discipline: ModelDiscipline::EnhancedNbc,
            required_levels: 7,
            got: 7,
        };
        assert_eq!(err.to_string(), "Enhanced-Nbc needs more than 7 virtual channels, got 7");
        let err = ModelParamsError::TooFewVirtualChannels {
            discipline: ModelDiscipline::Deterministic,
            required_levels: 3,
            got: 2,
        };
        assert_eq!(err.to_string(), "Deterministic needs at least 3 virtual channels, got 2");
        let boxed: Box<dyn std::error::Error> = Box::new(ModelParamsError::ZeroLengthMessage);
        assert_eq!(boxed.to_string(), "messages need at least one flit");
    }
}
