//! # star-core
//!
//! The paper's contribution: an analytical model of the mean message latency
//! of fully adaptive (Enhanced-Nbc) wormhole routing in the star
//! interconnection network `S_n` under uniform Poisson traffic
//! (Kiasari, Sarbazi-Azad & Ould-Khaoua, IPDPS 2006).
//!
//! The model composes (equation numbers refer to the paper):
//!
//! * the mean minimal distance `d̄` of `S_n` (Eq. 2), computed exactly from
//!   the permutation cycle structure by `star-graph`;
//! * the per-channel traffic rate `λ_c = λ_g·d̄/(n−1)` (Eq. 3);
//! * the per-destination network latency `S_i = M + h_i + Σ_k B_{i,k}`
//!   (Eq. 4-5), averaged over destinations weighted by how many nodes of each
//!   *cycle type* exist;
//! * the per-hop blocking time `B_{i,k} = P_block(i,k) · w̄` (Eq. 6) where the
//!   blocking probability accounts for the number of alternative output
//!   channels `f(i,j,k)` (Eq. 7-8) and for which virtual channels the
//!   Enhanced-Nbc scheme lets the message use (Eq. 9-11);
//! * M/G/1 waiting times at the channels and at the source queue with the
//!   paper's variance approximation `σ² ≈ (S̄ − M)²` (Eq. 12-16);
//! * the Markovian virtual-channel occupancy distribution (Eq. 18) and
//!   Dally's multiplexing factor `V̄` (Eq. 19);
//! * the final mean latency `(S̄ + W_s)·V̄` (Eq. 1), obtained by damped
//!   fixed-point iteration over the circular dependency between `S̄` and the
//!   waiting times.
//!
//! ## Derivation chain and topology split
//!
//! The modules compose in a fixed order — **config → spectrum → blocking →
//! waiting → latency** — and the chain forks only at the spectrum:
//!
//! | stage | star `S_n` | hypercube `Q_d` | any [`star_graph::Topology`] | topology-agnostic? |
//! |---|---|---|---|---|
//! | config | [`config`] ([`ModelConfig`]) | [`hypercube`] ([`HypercubeConfig`]) | [`params`] ([`ModelParams`]) | shape yes, ranges no |
//! | spectrum | [`adaptivity`] ([`DestinationSpectrum`], cycle types + path DAGs) | [`hypercube`] ([`HypercubeSpectrum`], binomial Hamming populations) | [`spectrum`] ([`TraversalSpectrum`], BFS census via `min_route_ports`) | the generic census makes it so |
//! | blocking | [`blocking`] (Eqs. 6–11) | same module, unchanged | same module, unchanged | yes for any bipartite network |
//! | waiting | [`waiting`] (Eqs. 12–16) | same module, unchanged | same module, unchanged | yes |
//! | occupancy | [`occupancy`] (Eqs. 18–19) | same module, unchanged | same module, unchanged | yes |
//! | latency | [`model`] ([`AnalyticalModel`]) | [`hypercube`] ([`HypercubeModel`]) | [`generic`] ([`SpectrumModel`]) | same fixed point, same solver |
//!
//! The closed-form star and hypercube columns are retained as **oracles**:
//! the generic [`TraversalSpectrum`] reproduces both bit-identically (exact
//! `u128` path counts, one final division), which the `spectrum` module's
//! tests pin down.  New topologies (e.g. [`star_graph::Torus`] /
//! [`star_graph::Ring`]) only implement the [`star_graph::Topology`] trait
//! and go through the generic column.  Each module's docs state which side
//! of this split it sits on.
//!
//! ```
//! use star_core::{AnalyticalModel, ModelConfig};
//!
//! let config = ModelConfig::builder()
//!     .symbols(5)            // S5: 120 nodes, the network of Figure 1
//!     .virtual_channels(6)
//!     .message_length(32)
//!     .traffic_rate(0.004)
//!     .build();
//! let result = AnalyticalModel::new(config).solve();
//! assert!(!result.saturated);
//! // latency is above the zero-load bound M + d̄ and finite below saturation
//! assert!(result.mean_latency > 32.0 + 3.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptivity;
pub mod blocking;
pub mod config;
pub mod generic;
pub mod hypercube;
pub mod model;
pub mod occupancy;
pub mod params;
pub mod spectrum;
pub mod sweep;
pub mod validation;
pub mod waiting;

pub use adaptivity::{DestinationClass, DestinationSpectrum};
pub use config::{ConfigError, ModelConfig, ModelConfigBuilder, RoutingDiscipline};
pub use generic::{spectrum_saturation_rate, SpectrumModel, SpectrumResult};
pub use hypercube::{
    hypercube_saturation_rate, HypercubeClass, HypercubeConfig, HypercubeConfigBuilder,
    HypercubeConfigError, HypercubeModel, HypercubeResult, HypercubeRouting, HypercubeSpectrum,
};
pub use model::{AnalyticalModel, ModelResult};
pub use params::{ModelDiscipline, ModelParams, ModelParamsError};
pub use spectrum::{TraversalClass, TraversalSpectrum};
pub use sweep::{saturation_rate, sweep_traffic, sweep_traffic_cold, SweepPoint};
pub use validation::ValidationRow;
