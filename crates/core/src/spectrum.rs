//! The generic traversal spectrum: the model's destination census derived
//! from any [`Topology`] instead of a per-topology closed form.
//!
//! **Topology split:** this module *removes* the split.  The star spectrum
//! ([`crate::DestinationSpectrum`]) enumerates permutation cycle types and the
//! hypercube spectrum ([`crate::HypercubeSpectrum`]) uses binomial Hamming
//! populations; both are exact combinatorial constructions that only exist
//! because someone derived them.  [`TraversalSpectrum`] instead asks the
//! topology three questions — `symmetry_classes()`, `min_route_ports()` and
//! `neighbor()` — and rebuilds the same information by breadth-first search
//! over the minimal-path DAG of each class representative, with the same
//! prefix/suffix path-counting DP `star_graph::path` uses.
//!
//! Because both builders accumulate exact `u128` path counts per adaptivity
//! value and divide once at the end, the generic spectrum reproduces the
//! closed forms **bit-identically** (see the oracle tests below), which is
//! what lets the closed-form stacks be retained as oracles rather than as
//! load-bearing code.  The contract a topology must satisfy for the census to
//! be meaningful is documented on [`Topology`] ("The spectrum contract").

use std::collections::{BTreeMap, HashMap};

use star_graph::topology::NodeId;
use star_graph::{AdaptivityProfile, Topology};

/// One destination equivalence class of a topology: all `count` destinations
/// that look like `representative` from node 0, with the per-hop adaptivity
/// profiles both routing families see on the way there.
#[derive(Debug, Clone)]
pub struct TraversalClass {
    /// Class representative (a destination node id).
    pub representative: NodeId,
    /// Number of destinations in this class.
    pub count: u64,
    /// Distance from the source.
    pub distance: usize,
    /// Per-hop adaptivity under fully adaptive minimal routing, uniformly
    /// weighted over all minimal paths to the representative.
    pub adaptive_profile: AdaptivityProfile,
    /// Per-hop adaptivity under deterministic (dimension-order style) minimal
    /// routing: always exactly one admissible output port.
    pub deterministic_profile: AdaptivityProfile,
}

/// The traversal spectrum of an arbitrary vertex-transitive [`Topology`]:
/// destination populations and per-hop adaptivity profiles in the same shape
/// the closed-form [`crate::DestinationSpectrum`] / [`crate::HypercubeSpectrum`]
/// provide, so the same blocking/waiting/occupancy chain consumes it
/// unchanged (see [`crate::SpectrumModel`]).
#[derive(Debug, Clone)]
pub struct TraversalSpectrum {
    topology_name: String,
    node_count: usize,
    degree: usize,
    diameter: usize,
    classes: Vec<TraversalClass>,
}

/// Builds the adaptivity profile for routing node 0 → `dest` by BFS over the
/// minimal-path DAG: levels are discovered through [`Topology::min_route_ports`]
/// (profitable successors only), path counts by the prefix/suffix DP, and the
/// per-hop histograms by exact `u128` accumulation — the node-id mirror of
/// [`star_graph::path::MinimalPathDag`].
fn profile_to(topology: &dyn Topology, dest: NodeId) -> AdaptivityProfile {
    let source: NodeId = 0;
    let distance = topology.distance(source, dest);
    let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); distance + 1];
    levels[0].push(source);
    let mut discovered: HashMap<NodeId, usize> = HashMap::new();
    discovered.insert(source, 0);
    for level in 0..distance {
        let current = levels[level].clone();
        for node in current {
            for port in topology.min_route_ports(node, dest) {
                let next = topology.neighbor(node, port);
                if let std::collections::hash_map::Entry::Vacant(e) = discovered.entry(next) {
                    e.insert(level + 1);
                    levels[level + 1].push(next);
                }
            }
        }
    }
    debug_assert_eq!(levels[distance], vec![dest]);

    // suffix counts: minimal paths from node to dest, bottom-up
    let mut suffix_counts: HashMap<NodeId, u128> = HashMap::new();
    suffix_counts.insert(dest, 1);
    for level in (0..distance).rev() {
        for &node in &levels[level] {
            let total: u128 = topology
                .min_route_ports(node, dest)
                .into_iter()
                .map(|port| suffix_counts[&topology.neighbor(node, port)])
                .sum();
            suffix_counts.insert(node, total);
        }
    }

    // prefix counts: minimal paths from the source to node, top-down
    let mut prefix_counts: HashMap<NodeId, u128> = HashMap::new();
    prefix_counts.insert(source, 1);
    for level_nodes in levels.iter().take(distance) {
        for &node in level_nodes {
            let from = prefix_counts[&node];
            for port in topology.min_route_ports(node, dest) {
                *prefix_counts.entry(topology.neighbor(node, port)).or_insert(0) += from;
            }
        }
    }

    let path_count = suffix_counts[&source];
    let mut hop_adaptivity = Vec::with_capacity(distance);
    for level_nodes in levels.iter().take(distance) {
        // exact u128 sums per adaptivity value, divided once — the same
        // order-independent arithmetic as `MinimalPathDag::adaptivity_profile`,
        // so identical integers produce identical floats
        let mut sums: BTreeMap<usize, u128> = BTreeMap::new();
        for &node in level_nodes {
            *sums.entry(topology.min_route_ports(node, dest).len()).or_insert(0) +=
                prefix_counts[&node] * suffix_counts[&node];
        }
        hop_adaptivity
            .push(sums.into_iter().map(|(f, s)| (f, s as f64 / path_count as f64)).collect());
    }
    AdaptivityProfile { distance, path_count, hop_adaptivity }
}

impl TraversalSpectrum {
    /// Builds the spectrum of a topology from its symmetry classes.
    ///
    /// # Panics
    /// Panics if the topology's [`Topology::symmetry_classes`] do not cover
    /// exactly the `node_count() − 1` destinations.
    #[must_use]
    pub fn new(topology: &dyn Topology) -> Self {
        Self::with_threads(topology, 1)
    }

    /// Builds the spectrum, sharding the per-class path-DAG construction
    /// across the shared [`star_exec::ExecPool`] (`1` = serial, `0` = all
    /// pool workers, anything else caps the executors).  Each class is built
    /// identically wherever it runs and the classes are sorted afterwards,
    /// so the result is identical for any width.
    ///
    /// # Panics
    /// As [`Self::new`].
    #[must_use]
    pub fn with_threads(topology: &dyn Topology, threads: usize) -> Self {
        let reps = topology.symmetry_classes();
        let covered: u64 = reps.iter().map(|&(_, count)| count).sum();
        assert_eq!(
            covered,
            (topology.node_count() - 1) as u64,
            "symmetry classes of {} must cover every destination",
            topology.name()
        );
        let mut classes =
            star_exec::ExecPool::global_ordered(threads, &reps, |_, &(representative, count)| {
                let adaptive_profile = profile_to(topology, representative);
                let distance = adaptive_profile.distance;
                let deterministic_profile = AdaptivityProfile {
                    distance,
                    path_count: 1,
                    hop_adaptivity: vec![vec![(1, 1.0)]; distance],
                };
                TraversalClass {
                    representative,
                    count,
                    distance,
                    adaptive_profile,
                    deterministic_profile,
                }
            });
        classes.sort_by_key(|c| (c.distance, c.representative));
        Self {
            topology_name: topology.name(),
            node_count: topology.node_count(),
            degree: topology.degree(),
            diameter: topology.diameter(),
            classes,
        }
    }

    /// Name of the topology the spectrum was built from (e.g. `"T8"`).
    #[must_use]
    pub fn topology_name(&self) -> &str {
        &self.topology_name
    }

    /// Number of nodes of the underlying topology.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Router degree of the underlying topology.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Diameter of the underlying topology.
    #[must_use]
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// The destination classes, sorted by `(distance, representative)`.
    #[must_use]
    pub fn classes(&self) -> &[TraversalClass] {
        &self.classes
    }

    /// Total number of destinations (`node_count − 1`).
    #[must_use]
    pub fn destination_count(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Mean distance over all destinations (the generic Eq. 2).
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        let weighted: f64 = self.classes.iter().map(|c| c.distance as f64 * c.count as f64).sum();
        weighted / self.destination_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{factorial, Hypercube, Ring, StarGraph, Torus};

    #[test]
    fn star_census_matches_closed_form_exactly() {
        // the generic BFS census must reproduce the cycle-type spectrum of
        // S3–S6 bit-for-bit: same populations, path counts and per-hop
        // adaptivity histograms (exact f64 equality, not tolerance)
        for n in 3..=6 {
            let star = StarGraph::new(n);
            let generic = TraversalSpectrum::new(&star);
            let oracle = crate::DestinationSpectrum::new(n);
            assert_eq!(generic.destination_count(), factorial(n) - 1);
            assert_eq!(generic.classes().len(), oracle.classes().len(), "S{n} class count");
            // cycle-type order and (distance, representative) order may
            // interleave within a distance; compare sorted per-distance bags
            let mut a: Vec<_> = generic
                .classes()
                .iter()
                .map(|c| {
                    (
                        c.distance,
                        c.count,
                        c.adaptive_profile.path_count,
                        c.adaptive_profile.hop_adaptivity.clone(),
                    )
                })
                .collect();
            let mut b: Vec<_> = oracle
                .classes()
                .iter()
                .map(|c| {
                    (c.distance, c.count, c.profile.path_count, c.profile.hop_adaptivity.clone())
                })
                .collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "S{n}: generic census must equal the cycle-type oracle exactly");
            assert!((generic.mean_distance() - oracle.mean_distance()).abs() < 1e-15);
        }
    }

    #[test]
    fn hypercube_census_matches_closed_form_exactly() {
        for d in 3..=8 {
            let cube = Hypercube::new(d);
            let generic = TraversalSpectrum::new(&cube);
            let oracle = crate::HypercubeSpectrum::new(d);
            assert_eq!(generic.classes().len(), oracle.classes().len(), "Q{d} class count");
            for (g, o) in generic.classes().iter().zip(oracle.classes()) {
                assert_eq!(g.distance, o.distance);
                assert_eq!(g.count, o.count, "Q{d} population at h={}", o.distance);
                assert_eq!(g.adaptive_profile, o.adaptive_profile, "Q{d} adaptive profile");
                assert_eq!(g.deterministic_profile, o.deterministic_profile);
            }
            assert!((generic.mean_distance() - oracle.mean_distance()).abs() < 1e-15);
        }
    }

    #[test]
    fn symmetry_classes_match_the_default_all_destinations_census() {
        // the folded-displacement classes of the torus and ring must describe
        // the same spectrum as treating every destination as its own class
        struct NoSymmetry<T: Topology>(T);
        impl<T: Topology + 'static> Topology for NoSymmetry<T> {
            fn name(&self) -> String {
                self.0.name()
            }
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
            fn degree(&self) -> usize {
                self.0.degree()
            }
            fn diameter(&self) -> usize {
                self.0.diameter()
            }
            fn neighbor(&self, node: NodeId, port: usize) -> NodeId {
                self.0.neighbor(node, port)
            }
            fn distance(&self, a: NodeId, b: NodeId) -> usize {
                self.0.distance(a, b)
            }
            fn min_route_ports(&self, current: NodeId, dest: NodeId) -> Vec<usize> {
                self.0.min_route_ports(current, dest)
            }
            fn color(&self, node: NodeId) -> star_graph::Color {
                self.0.color(node)
            }
            fn mean_distance(&self) -> f64 {
                self.0.mean_distance()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            // inherit the trait's every-destination default
        }
        let grouped = TraversalSpectrum::new(&Torus::new(6));
        let flat = TraversalSpectrum::new(&NoSymmetry(Torus::new(6)));
        assert_eq!(grouped.destination_count(), flat.destination_count());
        assert!((grouped.mean_distance() - flat.mean_distance()).abs() < 1e-15);
        // aggregate the flat census into (distance, profile) → count and
        // compare against the grouped classes
        let mut flat_bags: HashMap<(usize, String), u64> = HashMap::new();
        for c in flat.classes() {
            *flat_bags.entry((c.distance, format!("{:?}", c.adaptive_profile))).or_insert(0) +=
                c.count;
        }
        let mut grouped_bags: HashMap<(usize, String), u64> = HashMap::new();
        for c in grouped.classes() {
            *grouped_bags.entry((c.distance, format!("{:?}", c.adaptive_profile))).or_insert(0) +=
                c.count;
        }
        assert_eq!(grouped_bags, flat_bags, "T6: folded-displacement classes must be exact");

        let grouped = TraversalSpectrum::new(&Ring::new(10));
        let flat = TraversalSpectrum::new(&NoSymmetry(Ring::new(10)));
        assert_eq!(grouped.destination_count(), flat.destination_count());
        assert!((grouped.mean_distance() - flat.mean_distance()).abs() < 1e-15);
    }

    #[test]
    fn torus_spectrum_shape() {
        let t = TraversalSpectrum::new(&Torus::new(6));
        assert_eq!(t.topology_name(), "T6");
        assert_eq!(t.node_count(), 36);
        assert_eq!(t.degree(), 4);
        assert_eq!(t.diameter(), 6);
        assert_eq!(t.destination_count(), 35);
        assert!((t.mean_distance() - Torus::new(6).mean_distance()).abs() < 1e-12);
        for class in t.classes() {
            assert_eq!(class.adaptive_profile.distance, class.distance);
            assert_eq!(class.adaptive_profile.hop_adaptivity.len(), class.distance);
            // last hop of any minimal path is forced
            let last = &class.adaptive_profile.hop_adaptivity[class.distance - 1];
            assert_eq!(last, &vec![(1, 1.0)]);
            for hop in &class.adaptive_profile.hop_adaptivity {
                let sum: f64 = hop.iter().map(|&(_, p)| p).sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
        }
        // the antipode class (k/2, k/2) sees all 4 ports on the first hop
        let antipode = t.classes().iter().find(|c| c.distance == 6).unwrap();
        assert_eq!(antipode.adaptive_profile.hop_adaptivity[0], vec![(4, 1.0)]);
    }

    #[test]
    fn ring_spectrum_has_one_or_two_destinations_per_distance() {
        let r = TraversalSpectrum::new(&Ring::new(8));
        assert_eq!(r.destination_count(), 7);
        for class in r.classes() {
            if class.distance == 4 {
                // the antipode: unique, reachable both ways round
                assert_eq!(class.count, 1);
                assert_eq!(class.adaptive_profile.path_count, 2);
            } else {
                assert_eq!(class.count, 2);
                assert_eq!(class.adaptive_profile.path_count, 1);
            }
        }
    }

    #[test]
    fn threaded_spectrum_construction_matches_serial() {
        let star = StarGraph::new(5);
        let serial = TraversalSpectrum::new(&star);
        for threads in [0usize, 2, 4] {
            let threaded = TraversalSpectrum::with_threads(&star, threads);
            assert_eq!(serial.classes().len(), threaded.classes().len());
            for (a, b) in serial.classes().iter().zip(threaded.classes()) {
                assert_eq!(a.representative, b.representative, "threads = {threads}");
                assert_eq!(a.count, b.count);
                assert_eq!(a.adaptive_profile, b.adaptive_profile);
            }
        }
    }
}
