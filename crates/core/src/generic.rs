//! The analytical latency model evaluated on a generic
//! [`TraversalSpectrum`] — the topology-agnostic end of the latency stage.
//!
//! [`crate::AnalyticalModel`] walks the star's cycle-type spectrum and
//! [`crate::HypercubeModel`] walks the hypercube's Hamming spectrum; this
//! module walks whatever census [`TraversalSpectrum`] extracted from a
//! [`star_graph::Topology`] value, with the *identical* fixed-point
//! structure: the same damped solver ([`crate::model`]'s `latency_solver`),
//! the same `λ_c = λ_g·d̄/degree` channel rate, the same saturation screens
//! and the same warm-start contract.  On a topology whose closed-form
//! spectrum exists (star, hypercube), the generic model reproduces the
//! closed-form model because the spectra are bit-identical — that
//! equivalence is what lets the torus and ring ship without their own
//! derivation.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_queueing::FixedPointOutcome;

use crate::blocking::{batch_blocking_delays, total_blocking_delay};
use crate::model::latency_solver;
use crate::occupancy::ChannelOccupancy;
use crate::params::ModelParams;
use crate::spectrum::{TraversalClass, TraversalSpectrum};
use crate::waiting::{channel_waiting_time, source_waiting_time};

/// Result of evaluating the generic spectrum model at one operating point:
/// the same headline quantities as [`crate::ModelResult`], tagged with the
/// parameters and the topology name instead of a per-topology config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumResult {
    /// The parameters that were evaluated.
    pub params: ModelParams,
    /// Name of the topology the spectrum was built from.
    pub topology: String,
    /// Whether the operating point is beyond saturation.
    pub saturated: bool,
    /// Mean network latency `S̄`, in cycles.
    pub mean_network_latency: f64,
    /// Mean waiting time at the source queue `W_s`, in cycles.
    pub source_waiting: f64,
    /// Average degree of virtual-channel multiplexing `V̄`.
    pub multiplexing: f64,
    /// Mean message latency `(S̄ + W_s)·V̄`, in cycles.
    pub mean_latency: f64,
    /// Mean minimal distance `d̄`.
    pub mean_distance: f64,
    /// Traffic rate per channel `λ_c = λ_g·d̄/degree`.
    pub channel_rate: f64,
    /// Channel utilisation `λ_c · S̄` at the solution.
    pub channel_utilization: f64,
    /// Mean waiting time `w̄` at a channel when blocking occurs.
    pub channel_waiting: f64,
    /// Number of fixed-point iterations used.
    pub iterations: usize,
}

impl SpectrumResult {
    /// A saturated placeholder result (infinite latency).
    fn saturated(
        params: ModelParams,
        topology: String,
        mean_distance: f64,
        channel_rate: f64,
        iterations: usize,
    ) -> Self {
        Self {
            params,
            topology,
            saturated: true,
            mean_network_latency: f64::INFINITY,
            source_waiting: f64::INFINITY,
            multiplexing: params.virtual_channels as f64,
            mean_latency: f64::INFINITY,
            mean_distance,
            channel_rate,
            channel_utilization: 1.0,
            channel_waiting: f64::INFINITY,
            iterations,
        }
    }
}

/// The analytical model of mean message latency on any topology with a
/// [`TraversalSpectrum`], mirroring [`crate::AnalyticalModel`] /
/// [`crate::HypercubeModel`] with the generic census.
#[derive(Debug, Clone)]
pub struct SpectrumModel {
    params: ModelParams,
    spectrum: Arc<TraversalSpectrum>,
    parallelism: usize,
}

impl SpectrumModel {
    /// Builds the model around an already computed spectrum (the spectrum
    /// only depends on the topology, so a sweep — or several threads — can
    /// reuse one allocation).
    ///
    /// # Panics
    /// Panics if the parameters are invalid for the spectrum's topology
    /// (diameter-derived virtual-channel floor, message length, rate).
    #[must_use]
    pub fn new(params: ModelParams, spectrum: Arc<TraversalSpectrum>) -> Self {
        if let Err(e) = params.try_validate_generic(spectrum.diameter()) {
            panic!("invalid parameters for {}: {e}", spectrum.topology_name());
        }
        Self { params, spectrum, parallelism: 1 }
    }

    /// Builds the model and the spectrum in one go.
    ///
    /// # Panics
    /// As [`Self::new`] and [`TraversalSpectrum::new`].
    #[must_use]
    pub fn for_topology(params: ModelParams, topology: &dyn star_graph::Topology) -> Self {
        Self::new(params, Arc::new(TraversalSpectrum::new(topology)))
    }

    /// Shards the per-class blocking sums of every fixed-point iteration
    /// across the shared [`star_exec::ExecPool`] (`1` = serial, the default;
    /// `0` = all pool workers; anything else caps the executors) — the
    /// generic side of [`crate::AnalyticalModel::with_parallelism`],
    /// byte-identical for any width.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// The parameters being evaluated.
    #[must_use]
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The traversal spectrum (shared across operating points of the same
    /// topology).
    #[must_use]
    pub fn spectrum(&self) -> &TraversalSpectrum {
        &self.spectrum
    }

    /// Evaluates the mean network latency implied by a current estimate of
    /// `S̄`: one application of the blocking/waiting equations on the generic
    /// spectrum.
    fn network_latency_step(&self, mean_service: f64, channel_rate: f64) -> f64 {
        let params = &self.params;
        let split = params.vc_split(self.spectrum.diameter());
        let occupancy = ChannelOccupancy::new(channel_rate, mean_service, params.virtual_channels);
        let mean_wait = channel_waiting_time(channel_rate, mean_service, params.message_length);
        if !mean_wait.is_finite() {
            return f64::INFINITY;
        }
        fn profile_of(class: &TraversalClass, adaptive: bool) -> &star_graph::AdaptivityProfile {
            if adaptive {
                &class.adaptive_profile
            } else {
                &class.deterministic_profile
            }
        }
        let adaptive = params.discipline.is_adaptive();
        let mut weighted = 0.0;
        if self.parallelism == 1 {
            // serial fast path: no per-iteration allocation in the solver's
            // innermost loop
            for class in self.spectrum.classes() {
                let blocking =
                    total_blocking_delay(split, &occupancy, profile_of(class, adaptive), mean_wait);
                let latency = params.message_length as f64 + class.distance as f64 + blocking;
                weighted += latency * class.count as f64;
            }
        } else {
            let profiles: Vec<&star_graph::AdaptivityProfile> =
                self.spectrum.classes().iter().map(|c| profile_of(c, adaptive)).collect();
            let delays =
                batch_blocking_delays(split, &occupancy, &profiles, mean_wait, self.parallelism);
            for (class, blocking) in self.spectrum.classes().iter().zip(delays) {
                let latency = params.message_length as f64 + class.distance as f64 + blocking;
                weighted += latency * class.count as f64;
            }
        }
        weighted / self.spectrum.destination_count() as f64
    }

    /// Solves the model at the configured operating point from the cold
    /// (zero-load) initial state.
    #[must_use]
    pub fn solve(&self) -> SpectrumResult {
        self.solve_from(&[])
    }

    /// Solves the model, warm-starting the damped fixed-point iteration from
    /// a previously converged state vector (one component: the mean network
    /// latency `S̄`) — the same contract as
    /// [`crate::AnalyticalModel::solve_from`].  An empty slice or a
    /// non-finite / below-zero-load seed falls back to the cold start.
    #[must_use]
    pub fn solve_from(&self, warm_state: &[f64]) -> SpectrumResult {
        let params = &self.params;
        let name = self.spectrum.topology_name().to_string();
        let mean_distance = self.spectrum.mean_distance();
        let channel_rate = params.traffic_rate * mean_distance / self.spectrum.degree() as f64;
        let zero_load = params.message_length as f64 + mean_distance;

        // a channel can never serve more than one message of M flits at a
        // time, so λ_c·M ≥ 1 is beyond saturation
        if channel_rate * params.message_length as f64 >= 1.0 {
            return SpectrumResult::saturated(*params, name, mean_distance, channel_rate, 0);
        }

        let initial = match warm_state.first() {
            Some(&seed) if seed.is_finite() && seed >= zero_load => seed,
            _ => zero_load,
        };
        let solver = latency_solver();
        let outcome = solver
            .solve(vec![initial], |state| vec![self.network_latency_step(state[0], channel_rate)]);
        let (mean_network_latency, iterations) = match outcome {
            FixedPointOutcome::Converged { state, iterations } => (state[0], iterations),
            FixedPointOutcome::Diverged { iterations, .. } => {
                return SpectrumResult::saturated(
                    *params,
                    name,
                    mean_distance,
                    channel_rate,
                    iterations,
                );
            }
            FixedPointOutcome::MaxIterations { state, .. } => (state[0], solver.max_iterations),
        };

        let occupancy =
            ChannelOccupancy::new(channel_rate, mean_network_latency, params.virtual_channels);
        let multiplexing = occupancy.multiplexing_degree();
        let channel_waiting =
            channel_waiting_time(channel_rate, mean_network_latency, params.message_length);
        let source_waiting = source_waiting_time(
            params.traffic_rate,
            params.virtual_channels,
            mean_network_latency,
            params.message_length,
        );
        if !source_waiting.is_finite() || !channel_waiting.is_finite() {
            return SpectrumResult::saturated(
                *params,
                name,
                mean_distance,
                channel_rate,
                iterations,
            );
        }
        let mean_latency = (mean_network_latency + source_waiting) * multiplexing;
        SpectrumResult {
            params: *params,
            topology: name,
            saturated: false,
            mean_network_latency,
            source_waiting,
            multiplexing,
            mean_latency,
            mean_distance,
            channel_rate,
            channel_utilization: channel_rate * mean_network_latency,
            channel_waiting,
            iterations,
        }
    }
}

/// Largest traffic generation rate at which the generic model still converges
/// (the predicted saturation rate), found by bisection to the given relative
/// tolerance — the spectrum analogue of [`crate::saturation_rate`] /
/// [`crate::hypercube_saturation_rate`].
///
/// # Panics
/// Panics if the parameters are invalid for the spectrum's topology or
/// `tolerance` is outside `(0, 1)`.
#[must_use]
pub fn spectrum_saturation_rate(
    base: ModelParams,
    spectrum: &Arc<TraversalSpectrum>,
    tolerance: f64,
) -> f64 {
    assert!(tolerance > 0.0 && tolerance < 1.0, "tolerance must be in (0, 1)");
    let solves = |rate: f64| {
        !SpectrumModel::new(base.with_rate(rate), Arc::clone(spectrum)).solve().saturated
    };
    let mut low = 0.0;
    // λ_c·M ≥ 1 (one message of M flits per channel at a time) is certainly
    // beyond saturation: λ_g = degree/(d̄·M)
    let mut high =
        spectrum.degree() as f64 / (spectrum.mean_distance() * base.message_length as f64);
    debug_assert!(!solves(high));
    while (high - low) / high.max(1e-12) > tolerance {
        let mid = 0.5 * (low + high);
        if solves(mid) {
            low = mid;
        } else {
            high = mid;
        }
    }
    low
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelDiscipline;
    use crate::{AnalyticalModel, HypercubeConfig, HypercubeModel, ModelConfig};
    use star_graph::{Hypercube, Ring, StarGraph, Torus};

    fn torus_model(k: usize, v: usize, rate: f64) -> SpectrumModel {
        let params = ModelParams { virtual_channels: v, traffic_rate: rate, ..Default::default() };
        SpectrumModel::for_topology(params, &Torus::new(k))
    }

    #[test]
    fn zero_load_latency_equals_message_length_plus_mean_distance() {
        let r = torus_model(6, 6, 0.0).solve();
        assert!(!r.saturated);
        assert_eq!(r.topology, "T6");
        assert!((r.mean_network_latency - (32.0 + r.mean_distance)).abs() < 1e-6);
        assert_eq!(r.source_waiting, 0.0);
        assert!((r.multiplexing - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reproduces_the_star_model_on_the_star_spectrum() {
        // same spectrum integers, same solver: the generic model must land on
        // the star model's fixed point (tiny fp-ordering differences allowed —
        // the closed form sums classes in cycle-type order)
        for rate in [0.0, 0.004, 0.008] {
            let config = ModelConfig::builder()
                .symbols(5)
                .virtual_channels(6)
                .message_length(32)
                .traffic_rate(rate)
                .build();
            let star = AnalyticalModel::new(config).solve();
            let params = ModelParams { traffic_rate: rate, ..Default::default() };
            let generic = SpectrumModel::for_topology(params, &StarGraph::new(5)).solve();
            assert_eq!(star.saturated, generic.saturated, "rate {rate}");
            let rel = (star.mean_latency - generic.mean_latency).abs() / star.mean_latency;
            assert!(rel < 1e-9, "rate {rate}: relative deviation {rel}");
            assert!((star.mean_distance - generic.mean_distance).abs() < 1e-12);
        }
    }

    #[test]
    fn reproduces_the_hypercube_model_on_the_cube_spectrum() {
        for (routing, discipline) in [
            (crate::HypercubeRouting::EnhancedNbc, ModelDiscipline::EnhancedNbc),
            (crate::HypercubeRouting::DimensionOrder, ModelDiscipline::Deterministic),
        ] {
            let config = HypercubeConfig::builder()
                .dims(7)
                .virtual_channels(6)
                .message_length(32)
                .traffic_rate(0.01)
                .routing(routing)
                .build();
            let cube = HypercubeModel::new(config).solve();
            let params = ModelParams { discipline, traffic_rate: 0.01, ..Default::default() };
            let generic = SpectrumModel::for_topology(params, &Hypercube::new(7)).solve();
            assert_eq!(cube.saturated, generic.saturated);
            let rel = (cube.mean_latency - generic.mean_latency).abs() / cube.mean_latency;
            assert!(rel < 1e-9, "{discipline:?}: relative deviation {rel}");
            // class order and spectra are identical here, so the fixed-point
            // trajectory is too
            assert_eq!(cube.iterations, generic.iterations);
        }
    }

    #[test]
    fn torus_latency_is_monotone_in_load_until_saturation() {
        let spectrum = Arc::new(TraversalSpectrum::new(&Torus::new(8)));
        let mut last = 0.0;
        let mut saturated_seen = false;
        for i in 1..=60 {
            let rate = i as f64 * 0.002;
            let params = ModelParams { traffic_rate: rate, ..Default::default() };
            let r = SpectrumModel::new(params, Arc::clone(&spectrum)).solve();
            if r.saturated {
                saturated_seen = true;
                break;
            }
            assert!(r.mean_latency > last, "latency must grow with load at rate {rate}");
            last = r.mean_latency;
        }
        assert!(saturated_seen, "the sweep must eventually saturate");
    }

    #[test]
    fn deterministic_routing_is_slower_than_adaptive_on_the_torus() {
        let spectrum = Arc::new(TraversalSpectrum::new(&Torus::new(8)));
        let rate = 0.7 * spectrum_saturation_rate(ModelParams::default(), &spectrum, 0.02);
        let adaptive = SpectrumModel::new(
            ModelParams { traffic_rate: rate, ..Default::default() },
            Arc::clone(&spectrum),
        )
        .solve();
        let det = SpectrumModel::new(
            ModelParams {
                discipline: ModelDiscipline::Deterministic,
                traffic_rate: rate,
                ..Default::default()
            },
            Arc::clone(&spectrum),
        )
        .solve();
        assert!(!adaptive.saturated);
        if !det.saturated {
            assert!(det.mean_latency >= adaptive.mean_latency - 1e-9);
        }
    }

    #[test]
    fn ring_solves_at_light_load() {
        let params = ModelParams { virtual_channels: 4, traffic_rate: 0.001, ..Default::default() };
        let r = SpectrumModel::for_topology(params, &Ring::new(8)).solve();
        assert!(!r.saturated);
        assert!(r.mean_latency > 32.0 + r.mean_distance);
    }

    #[test]
    fn warm_start_reaches_the_cold_fixed_point_with_fewer_iterations() {
        let spectrum = Arc::new(TraversalSpectrum::new(&Torus::new(8)));
        let sat = spectrum_saturation_rate(ModelParams::default(), &spectrum, 0.02);
        let near =
            SpectrumModel::new(ModelParams::default().with_rate(sat * 0.9), Arc::clone(&spectrum));
        let seed = near.solve();
        assert!(!seed.saturated);
        let model =
            SpectrumModel::new(ModelParams::default().with_rate(sat * 0.92), Arc::clone(&spectrum));
        let cold = model.solve();
        let warm = model.solve_from(&[seed.mean_network_latency]);
        assert!(!cold.saturated && !warm.saturated);
        let rel = (warm.mean_latency - cold.mean_latency).abs() / cold.mean_latency;
        assert!(rel < 1e-9, "warm and cold fixed points differ by {rel}");
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn saturation_rate_is_consistent_with_solves() {
        let spectrum = Arc::new(TraversalSpectrum::new(&Torus::new(6)));
        let sat = spectrum_saturation_rate(ModelParams::default(), &spectrum, 0.02);
        assert!(sat > 0.0);
        let below =
            SpectrumModel::new(ModelParams::default().with_rate(sat * 0.9), Arc::clone(&spectrum))
                .solve();
        let above =
            SpectrumModel::new(ModelParams::default().with_rate(sat * 1.2), Arc::clone(&spectrum))
                .solve();
        assert!(!below.saturated);
        assert!(above.saturated);
    }

    #[test]
    fn parallel_blocking_sums_reproduce_the_serial_solve_exactly() {
        let spectrum = Arc::new(TraversalSpectrum::new(&Torus::new(10)));
        let params = ModelParams { virtual_channels: 7, traffic_rate: 0.01, ..Default::default() };
        let serial = SpectrumModel::new(params, Arc::clone(&spectrum)).solve();
        for threads in [0usize, 2, 4] {
            let parallel =
                SpectrumModel::new(params, Arc::clone(&spectrum)).with_parallelism(threads).solve();
            assert_eq!(serial, parallel, "threads = {threads} must be byte-identical");
        }
    }

    #[test]
    #[should_panic(expected = "invalid parameters for T12")]
    fn too_few_virtual_channels_are_rejected() {
        // T12: diameter 12 → 7 levels → Enhanced-Nbc needs V ≥ 8
        let _ = torus_model(12, 7, 0.001);
    }

    #[test]
    fn heavy_load_is_reported_as_saturated() {
        let r = torus_model(6, 6, 0.5).solve();
        assert!(r.saturated);
        assert!(r.mean_latency.is_infinite());
    }
}
