//! The analytical latency model extended to the binary hypercube `Q_d`.
//!
//! The paper derives its model for the star graph but names the
//! star-vs-hypercube comparison as the headline argument; this module is the
//! "few changes" that carry the derivation across.  The chain of equations is
//! the same one `S_n` uses — config → spectrum → blocking → waiting →
//! latency — and most links are **topology-agnostic**:
//!
//! * the per-channel rate `λ_c = λ_g·d̄/degree` (Eq. 3) holds for any
//!   edge-symmetric network under uniform traffic, with `degree = d` here;
//! * the blocking machinery of [`crate::blocking`] only consumes a
//!   [`VcSplit`] and an [`AdaptivityProfile`]; the negative-hop bookkeeping
//!   inside it ([`star_graph::coloring`]) applies to *any* bipartite network
//!   because hop signs alternate with the 2-colouring — and `Q_d` is
//!   bipartite (colour = parity of the node's popcount);
//! * the M/G/1 waiting times ([`crate::waiting`]), the virtual-channel
//!   occupancy chain and multiplexing degree ([`crate::occupancy`]), and the
//!   final `(S̄ + W_s)·V̄` composition (Eq. 1) never mention the topology.
//!
//! What *is* topology-specific — and what this module supplies — is the
//! destination spectrum.  Where `S_n` needs permutation cycle types and a
//! minimal-path DAG, the hypercube is pleasantly regular: the destinations of
//! a node group by Hamming distance `h`, with `C(d, h)` destinations per
//! group, and a message at hop `k` (1-based) of an `h`-hop journey *always*
//! sees exactly `h − k + 1` profitable output ports (the dimensions still to
//! correct).  [`HypercubeSpectrum`] packages those populations and per-hop
//! adaptivity profiles in the same shape [`crate::DestinationSpectrum`] uses,
//! so [`HypercubeModel`] can run the identical damped fixed-point iteration —
//! including [`HypercubeModel::solve_from`] warm-starting across the rates of
//! a sweep.
//!
//! Two routing families are modelled:
//!
//! * **adaptive** ([`HypercubeRouting::EnhancedNbc`], [`HypercubeRouting::Nbc`],
//!   [`HypercubeRouting::NHop`]) — the same negative-hop virtual-channel
//!   disciplines the star model covers, with the escape-level minimum
//!   `⌊d/2⌋ + 1` implied by the hypercube's diameter `d`;
//! * **dimension-order** ([`HypercubeRouting::DimensionOrder`]) — the
//!   deterministic e-cube baseline: one admissible output port per hop
//!   (`f = 1`) and one admissible virtual channel (the mandatory negative-hop
//!   level), matching the simulator's `DeterministicMinimal` on `Q_d`.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_graph::coloring::max_negative_hops;
use star_graph::{AdaptivityProfile, Hypercube};
use star_queueing::FixedPointOutcome;

use crate::blocking::{batch_blocking_delays, total_blocking_delay, VcSplit};
use crate::model::latency_solver;
use crate::occupancy::{binomial, ChannelOccupancy};
use crate::waiting::{channel_waiting_time, source_waiting_time};

/// Which hypercube routing scheme the model evaluates.
///
/// The three adaptive variants mirror [`crate::RoutingDiscipline`] (they
/// differ only in how the `V` virtual channels are split and whether bonus
/// cards apply); `DimensionOrder` is the deterministic e-cube baseline the
/// simulator's `DeterministicMinimal` implements on `Q_d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HypercubeRouting {
    /// Minimal escape levels plus fully adaptive class-a channels, with
    /// bonus cards on the escape levels (the star paper's scheme carried to
    /// `Q_d`).
    #[default]
    EnhancedNbc,
    /// Negative-hop with bonus cards over all `V` virtual channels.
    Nbc,
    /// Plain negative-hop: one admissible virtual channel per admissible
    /// physical channel.
    NHop,
    /// Deterministic dimension-order (e-cube) routing: one admissible
    /// physical channel per hop, one admissible virtual channel (the
    /// mandatory negative-hop level).
    DimensionOrder,
}

impl HypercubeRouting {
    /// Whether the scheme offers every profitable dimension (adaptive) or a
    /// single canonical one (dimension-order).
    #[must_use]
    pub fn is_adaptive(self) -> bool {
        !matches!(self, HypercubeRouting::DimensionOrder)
    }
}

/// Why a [`HypercubeConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HypercubeConfigError {
    /// `d` is outside the range the model supports.
    UnsupportedDims {
        /// The rejected dimension.
        dims: usize,
    },
    /// Messages must be at least one flit long.
    ZeroLengthMessage,
    /// The traffic generation rate is negative, NaN or infinite.
    InvalidTrafficRate {
        /// The rejected rate.
        rate: f64,
    },
    /// The routing scheme needs more virtual channels than were configured.
    TooFewVirtualChannels {
        /// The routing scheme being modelled.
        routing: HypercubeRouting,
        /// The dimension the requirement was computed for.
        dims: usize,
        /// Minimum negative-hop levels `Q_d` requires.
        required_levels: usize,
        /// The rejected virtual-channel count.
        got: usize,
    },
}

impl fmt::Display for HypercubeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HypercubeConfigError::UnsupportedDims { dims } => {
                write!(
                    f,
                    "the hypercube model supports Q_2 … Q_{}, got Q_{dims}",
                    Hypercube::MAX_DIMS
                )
            }
            HypercubeConfigError::ZeroLengthMessage => {
                write!(f, "messages need at least one flit")
            }
            HypercubeConfigError::InvalidTrafficRate { rate } => {
                write!(f, "traffic rate must be finite and non-negative, got {rate}")
            }
            HypercubeConfigError::TooFewVirtualChannels {
                routing: HypercubeRouting::EnhancedNbc,
                dims,
                required_levels,
                got,
            } => write!(
                f,
                "Enhanced-Nbc on Q_{dims} needs more than {required_levels} \
                 virtual channels, got {got}"
            ),
            HypercubeConfigError::TooFewVirtualChannels { routing, dims, required_levels, got } => {
                write!(
                    f,
                    "{routing:?} on Q_{dims} needs at least {required_levels} \
                     virtual channels, got {got}"
                )
            }
        }
    }
}

impl Error for HypercubeConfigError {}

/// Configuration of one hypercube-model evaluation: the cube `Q_d`, the
/// number of virtual channels per physical channel, the message length, the
/// per-node traffic generation rate and the routing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypercubeConfig {
    /// Dimension `d` of the cube (`Q_d` has `2^d` nodes).
    pub dims: usize,
    /// Virtual channels `V` per physical channel.
    pub virtual_channels: usize,
    /// Message length `M` in flits.
    pub message_length: usize,
    /// Traffic generation rate `λ_g` in messages per node per cycle.
    pub traffic_rate: f64,
    /// Routing scheme being modelled.
    pub routing: HypercubeRouting,
}

impl HypercubeConfig {
    /// Starts a builder with `Q7` (the hypercube matched to the paper's
    /// `S5`), `V = 6`, `M = 32`, adaptive Enhanced-Nbc routing at a low load.
    #[must_use]
    pub fn builder() -> HypercubeConfigBuilder {
        HypercubeConfigBuilder {
            config: Self {
                dims: 7,
                virtual_channels: 6,
                message_length: 32,
                traffic_rate: 0.001,
                routing: HypercubeRouting::EnhancedNbc,
            },
        }
    }

    /// Network diameter (`d` for `Q_d`).
    #[must_use]
    pub fn diameter(&self) -> usize {
        self.dims
    }

    /// Minimum number of negative-hop levels the topology requires
    /// (`⌊d/2⌋ + 1` for the 2-colourable hypercube).
    #[must_use]
    pub fn required_levels(&self) -> usize {
        max_negative_hops(self.diameter(), 2) + 1
    }

    /// Number of class-b (escape) virtual channels the modelled scheme uses:
    /// the minimum for Enhanced-Nbc, all `V` channels otherwise.
    #[must_use]
    pub fn escape_levels(&self) -> usize {
        match self.routing {
            HypercubeRouting::EnhancedNbc => self.required_levels(),
            _ => self.virtual_channels,
        }
    }

    /// Number of class-a (fully adaptive) virtual channels (`V − V2` for
    /// Enhanced-Nbc, none otherwise).
    #[must_use]
    pub fn adaptive_channels(&self) -> usize {
        match self.routing {
            HypercubeRouting::EnhancedNbc => self.virtual_channels - self.required_levels(),
            _ => 0,
        }
    }

    /// Whether the modelled scheme lets headers climb above their mandatory
    /// escape level (bonus cards).
    #[must_use]
    pub fn bonus_cards(&self) -> bool {
        matches!(self.routing, HypercubeRouting::EnhancedNbc | HypercubeRouting::Nbc)
    }

    /// Router degree (`d` for `Q_d`).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.dims
    }

    /// The virtual-channel split the blocking equations assume for this
    /// scheme.
    #[must_use]
    pub fn vc_split(&self) -> VcSplit {
        VcSplit {
            adaptive: self.adaptive_channels(),
            escape_levels: self.escape_levels(),
            bonus_cards: self.bonus_cards(),
        }
    }

    /// Validates the configuration, returning the first violation found.
    ///
    /// # Errors
    /// Returns a [`HypercubeConfigError`] describing the out-of-range
    /// parameter.
    pub fn try_validate(&self) -> Result<(), HypercubeConfigError> {
        if !(2..=Hypercube::MAX_DIMS).contains(&self.dims) {
            return Err(HypercubeConfigError::UnsupportedDims { dims: self.dims });
        }
        if self.message_length < 1 {
            return Err(HypercubeConfigError::ZeroLengthMessage);
        }
        if !(self.traffic_rate >= 0.0 && self.traffic_rate.is_finite()) {
            return Err(HypercubeConfigError::InvalidTrafficRate { rate: self.traffic_rate });
        }
        let enough = match self.routing {
            HypercubeRouting::EnhancedNbc => self.virtual_channels > self.required_levels(),
            _ => self.virtual_channels >= self.required_levels(),
        };
        if !enough {
            return Err(HypercubeConfigError::TooFewVirtualChannels {
                routing: self.routing,
                dims: self.dims,
                required_levels: self.required_levels(),
                got: self.virtual_channels,
            });
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics with the [`fmt::Display`] rendering of the
    /// [`HypercubeConfigError`] that [`Self::try_validate`] would return.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Builder for [`HypercubeConfig`].
#[derive(Debug, Clone)]
pub struct HypercubeConfigBuilder {
    config: HypercubeConfig,
}

impl HypercubeConfigBuilder {
    /// Sets the dimension `d`.
    #[must_use]
    pub fn dims(mut self, d: usize) -> Self {
        self.config.dims = d;
        self
    }

    /// Sets the number of virtual channels per physical channel.
    #[must_use]
    pub fn virtual_channels(mut self, v: usize) -> Self {
        self.config.virtual_channels = v;
        self
    }

    /// Sets the message length in flits.
    #[must_use]
    pub fn message_length(mut self, m: usize) -> Self {
        self.config.message_length = m;
        self
    }

    /// Sets the traffic generation rate (messages/node/cycle).
    #[must_use]
    pub fn traffic_rate(mut self, rate: f64) -> Self {
        self.config.traffic_rate = rate;
        self
    }

    /// Sets the routing scheme (defaults to adaptive Enhanced-Nbc).
    #[must_use]
    pub fn routing(mut self, routing: HypercubeRouting) -> Self {
        self.config.routing = routing;
        self
    }

    /// Finishes the builder without panicking.
    ///
    /// # Errors
    /// Returns the [`HypercubeConfigError`] describing why the configuration
    /// is invalid.
    pub fn try_build(self) -> Result<HypercubeConfig, HypercubeConfigError> {
        self.config.try_validate()?;
        Ok(self.config)
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (the panicking wrapper around
    /// [`Self::try_build`]).
    #[must_use]
    pub fn build(self) -> HypercubeConfig {
        self.config.validate();
        self.config
    }
}

/// One class of hypercube destinations: all `C(d, h)` nodes at Hamming
/// distance `h`, with the per-hop adaptivity profiles both routing families
/// see on the way there.
#[derive(Debug, Clone)]
pub struct HypercubeClass {
    /// Hamming distance from the source.
    pub distance: usize,
    /// Number of destinations at this distance (`C(d, h)`).
    pub count: u64,
    /// Per-hop adaptivity under fully adaptive minimal routing: hop `k`
    /// (0-based) always offers exactly `h − k` profitable dimensions.
    pub adaptive_profile: AdaptivityProfile,
    /// Per-hop adaptivity under dimension-order routing: always exactly one
    /// admissible output port.
    pub deterministic_profile: AdaptivityProfile,
}

/// The traversal spectrum of `Q_d`: the hypercube analogue of
/// [`crate::DestinationSpectrum`], with destination populations given by the
/// binomial distribution of Hamming distances instead of permutation cycle
/// types.
#[derive(Debug, Clone)]
pub struct HypercubeSpectrum {
    dims: usize,
    classes: Vec<HypercubeClass>,
}

impl HypercubeSpectrum {
    /// Builds the spectrum for `Q_d`.
    ///
    /// # Panics
    /// Panics if `dims` is outside `1..=`[`Hypercube::MAX_DIMS`].
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(
            (1..=Hypercube::MAX_DIMS).contains(&dims),
            "hypercube dimension {dims} out of range 1..={}",
            Hypercube::MAX_DIMS
        );
        let classes = (1..=dims)
            .map(|h| {
                // every minimal path is an ordering of the h differing
                // dimensions, so hop k (0-based) always offers h − k choices
                let adaptive_profile = AdaptivityProfile {
                    distance: h,
                    path_count: (1..=h as u128).product(),
                    hop_adaptivity: (0..h).map(|k| vec![(h - k, 1.0)]).collect(),
                };
                let deterministic_profile = AdaptivityProfile {
                    distance: h,
                    path_count: 1,
                    hop_adaptivity: vec![vec![(1, 1.0)]; h],
                };
                HypercubeClass {
                    distance: h,
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    count: binomial(dims, h) as u64,
                    adaptive_profile,
                    deterministic_profile,
                }
            })
            .collect();
        Self { dims, classes }
    }

    /// The dimension `d`.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The destination classes, sorted by distance.
    #[must_use]
    pub fn classes(&self) -> &[HypercubeClass] {
        &self.classes
    }

    /// Total number of destinations (`2^d − 1`).
    #[must_use]
    pub fn destination_count(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Mean Hamming distance over all destinations
    /// (`d·2^{d−1}/(2^d − 1)`, the hypercube's Eq. 2).
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        let weighted: f64 = self.classes.iter().map(|c| c.distance as f64 * c.count as f64).sum();
        weighted / self.destination_count() as f64
    }
}

/// Result of evaluating the hypercube model at one operating point: the same
/// headline quantities as the star model's [`crate::ModelResult`], for a
/// [`HypercubeConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypercubeResult {
    /// The configuration that was evaluated.
    pub config: HypercubeConfig,
    /// Whether the operating point is beyond saturation.
    pub saturated: bool,
    /// Mean network latency `S̄`, in cycles.
    pub mean_network_latency: f64,
    /// Mean waiting time at the source queue `W_s`, in cycles.
    pub source_waiting: f64,
    /// Average degree of virtual-channel multiplexing `V̄`.
    pub multiplexing: f64,
    /// Mean message latency `(S̄ + W_s)·V̄`, in cycles.
    pub mean_latency: f64,
    /// Mean Hamming distance `d̄`.
    pub mean_distance: f64,
    /// Traffic rate per channel `λ_c = λ_g·d̄/d`.
    pub channel_rate: f64,
    /// Channel utilisation `λ_c · S̄` at the solution.
    pub channel_utilization: f64,
    /// Mean waiting time `w̄` at a channel when blocking occurs.
    pub channel_waiting: f64,
    /// Number of fixed-point iterations used.
    pub iterations: usize,
}

impl HypercubeResult {
    /// A saturated placeholder result (infinite latency).
    fn saturated(
        config: HypercubeConfig,
        mean_distance: f64,
        channel_rate: f64,
        iterations: usize,
    ) -> Self {
        Self {
            config,
            saturated: true,
            mean_network_latency: f64::INFINITY,
            source_waiting: f64::INFINITY,
            multiplexing: config.virtual_channels as f64,
            mean_latency: f64::INFINITY,
            mean_distance,
            channel_rate,
            channel_utilization: 1.0,
            channel_waiting: f64::INFINITY,
            iterations,
        }
    }
}

/// The analytical model of mean message latency on the binary hypercube
/// `Q_d`, mirroring [`crate::AnalyticalModel`] with the hypercube's traversal
/// spectrum.
#[derive(Debug, Clone)]
pub struct HypercubeModel {
    config: HypercubeConfig,
    spectrum: Arc<HypercubeSpectrum>,
    parallelism: usize,
}

impl HypercubeModel {
    /// Builds the model, precomputing the traversal spectrum of `Q_d`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: HypercubeConfig) -> Self {
        config.validate();
        let spectrum = Arc::new(HypercubeSpectrum::new(config.dims));
        Self { config, spectrum, parallelism: 1 }
    }

    /// Builds the model sharing an already computed spectrum (the spectrum
    /// only depends on `d`, so a sweep — or several threads — can reuse one
    /// allocation).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the spectrum was built for
    /// a different `d`.
    #[must_use]
    pub fn with_spectrum(config: HypercubeConfig, spectrum: Arc<HypercubeSpectrum>) -> Self {
        config.validate();
        assert_eq!(spectrum.dims(), config.dims, "spectrum size mismatch");
        Self { config, spectrum, parallelism: 1 }
    }

    /// Shards the per-distance-class blocking sums of every fixed-point
    /// iteration across the shared [`star_exec::ExecPool`] (`1` = serial,
    /// the default; `0` = all pool workers; anything else caps the
    /// executors) — the hypercube side of
    /// [`crate::AnalyticalModel::with_parallelism`], byte-identical for any
    /// width; the `hypercube_model` bench quantifies it at `Q13`.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// The configuration being evaluated.
    #[must_use]
    pub fn config(&self) -> &HypercubeConfig {
        &self.config
    }

    /// The traversal spectrum (shared across operating points of the same
    /// `Q_d`).
    #[must_use]
    pub fn spectrum(&self) -> &HypercubeSpectrum {
        &self.spectrum
    }

    /// Evaluates the mean network latency implied by a current estimate of
    /// `S̄`: one application of the blocking/waiting equations on the
    /// hypercube spectrum.
    fn network_latency_step(&self, mean_service: f64, channel_rate: f64) -> f64 {
        let cfg = &self.config;
        let split = cfg.vc_split();
        let occupancy = ChannelOccupancy::new(channel_rate, mean_service, cfg.virtual_channels);
        let mean_wait = channel_waiting_time(channel_rate, mean_service, cfg.message_length);
        if !mean_wait.is_finite() {
            return f64::INFINITY;
        }
        fn profile_of(class: &HypercubeClass, adaptive: bool) -> &AdaptivityProfile {
            if adaptive {
                &class.adaptive_profile
            } else {
                &class.deterministic_profile
            }
        }
        let adaptive = cfg.routing.is_adaptive();
        let mut weighted = 0.0;
        if self.parallelism == 1 {
            // serial fast path: no per-iteration allocation in the solver's
            // innermost loop
            for class in self.spectrum.classes() {
                let blocking =
                    total_blocking_delay(split, &occupancy, profile_of(class, adaptive), mean_wait);
                let latency = cfg.message_length as f64 + class.distance as f64 + blocking;
                weighted += latency * class.count as f64;
            }
        } else {
            let profiles: Vec<&AdaptivityProfile> =
                self.spectrum.classes().iter().map(|c| profile_of(c, adaptive)).collect();
            let delays =
                batch_blocking_delays(split, &occupancy, &profiles, mean_wait, self.parallelism);
            for (class, blocking) in self.spectrum.classes().iter().zip(delays) {
                let latency = cfg.message_length as f64 + class.distance as f64 + blocking;
                weighted += latency * class.count as f64;
            }
        }
        weighted / self.spectrum.destination_count() as f64
    }

    /// Solves the model at the configured operating point from the cold
    /// (zero-load) initial state.
    #[must_use]
    pub fn solve(&self) -> HypercubeResult {
        self.solve_from(&[])
    }

    /// Solves the model, warm-starting the damped fixed-point iteration from
    /// a previously converged state vector (one component: the mean network
    /// latency `S̄`) — the same contract as
    /// [`crate::AnalyticalModel::solve_from`], so sweeps over increasing
    /// rates carry their converged state across the topology change for
    /// free.  An empty slice or a non-finite / below-zero-load seed falls
    /// back to the cold start.
    #[must_use]
    pub fn solve_from(&self, warm_state: &[f64]) -> HypercubeResult {
        let cfg = &self.config;
        let mean_distance = self.spectrum.mean_distance();
        let channel_rate = cfg.traffic_rate * mean_distance / cfg.degree() as f64;
        let zero_load = cfg.message_length as f64 + mean_distance;

        // a channel can never serve more than one message of M flits at a
        // time, so λ_c·M ≥ 1 is beyond saturation
        if channel_rate * cfg.message_length as f64 >= 1.0 {
            return HypercubeResult::saturated(*cfg, mean_distance, channel_rate, 0);
        }

        let initial = match warm_state.first() {
            Some(&seed) if seed.is_finite() && seed >= zero_load => seed,
            _ => zero_load,
        };
        let solver = latency_solver();
        let outcome = solver
            .solve(vec![initial], |state| vec![self.network_latency_step(state[0], channel_rate)]);
        let (mean_network_latency, iterations) = match outcome {
            FixedPointOutcome::Converged { state, iterations } => (state[0], iterations),
            FixedPointOutcome::Diverged { iterations, .. } => {
                return HypercubeResult::saturated(*cfg, mean_distance, channel_rate, iterations);
            }
            FixedPointOutcome::MaxIterations { state, .. } => (state[0], solver.max_iterations),
        };

        let occupancy =
            ChannelOccupancy::new(channel_rate, mean_network_latency, cfg.virtual_channels);
        let multiplexing = occupancy.multiplexing_degree();
        let channel_waiting =
            channel_waiting_time(channel_rate, mean_network_latency, cfg.message_length);
        let source_waiting = source_waiting_time(
            cfg.traffic_rate,
            cfg.virtual_channels,
            mean_network_latency,
            cfg.message_length,
        );
        if !source_waiting.is_finite() || !channel_waiting.is_finite() {
            return HypercubeResult::saturated(*cfg, mean_distance, channel_rate, iterations);
        }
        let mean_latency = (mean_network_latency + source_waiting) * multiplexing;
        HypercubeResult {
            config: *cfg,
            saturated: false,
            mean_network_latency,
            source_waiting,
            multiplexing,
            mean_latency,
            mean_distance,
            channel_rate,
            channel_utilization: channel_rate * mean_network_latency,
            channel_waiting,
            iterations,
        }
    }
}

/// Largest traffic generation rate at which the hypercube model still
/// converges (the predicted saturation rate), found by bisection to the
/// given relative tolerance — the `Q_d` analogue of
/// [`crate::saturation_rate`].
///
/// # Panics
/// Panics if the configuration is invalid or `tolerance` is outside `(0, 1)`.
#[must_use]
pub fn hypercube_saturation_rate(base: HypercubeConfig, tolerance: f64) -> f64 {
    assert!(tolerance > 0.0 && tolerance < 1.0, "tolerance must be in (0, 1)");
    let spectrum = Arc::new(HypercubeSpectrum::new(base.dims));
    let solves = |rate: f64| {
        let config = HypercubeConfig { traffic_rate: rate, ..base };
        !HypercubeModel::with_spectrum(config, Arc::clone(&spectrum)).solve().saturated
    };
    let mut low = 0.0;
    // λ_c·M ≥ 1 (one message of M flits per channel at a time) is certainly
    // beyond saturation: λ_g = degree/(d̄·M)
    let mut high = base.degree() as f64 / (spectrum.mean_distance() * base.message_length as f64);
    debug_assert!(!solves(high));
    while (high - low) / high.max(1e-12) > tolerance {
        let mid = 0.5 * (low + high);
        if solves(mid) {
            low = mid;
        } else {
            high = mid;
        }
    }
    low
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::Topology;

    fn solve(dims: usize, v: usize, m: usize, rate: f64) -> HypercubeResult {
        solve_with(dims, v, m, rate, HypercubeRouting::EnhancedNbc)
    }

    fn solve_with(
        dims: usize,
        v: usize,
        m: usize,
        rate: f64,
        routing: HypercubeRouting,
    ) -> HypercubeResult {
        HypercubeModel::new(
            HypercubeConfig::builder()
                .dims(dims)
                .virtual_channels(v)
                .message_length(m)
                .traffic_rate(rate)
                .routing(routing)
                .build(),
        )
        .solve()
    }

    #[test]
    fn spectrum_covers_all_destinations_with_binomial_populations() {
        for d in 2..=10 {
            let spectrum = HypercubeSpectrum::new(d);
            assert_eq!(spectrum.destination_count(), (1u64 << d) - 1);
            assert_eq!(spectrum.classes().len(), d);
            for class in spectrum.classes() {
                assert_eq!(class.adaptive_profile.distance, class.distance);
                assert_eq!(class.deterministic_profile.distance, class.distance);
                // last hop of any minimal path is forced
                assert_eq!(
                    class.adaptive_profile.hop_adaptivity[class.distance - 1],
                    vec![(1, 1.0)]
                );
            }
        }
    }

    #[test]
    fn spectrum_mean_distance_matches_topology() {
        for d in 2..=12 {
            let spectrum = HypercubeSpectrum::new(d);
            let topo = Hypercube::new(d);
            assert!(
                (spectrum.mean_distance() - topo.mean_distance()).abs() < 1e-12,
                "Q{d}: spectrum mean distance must equal the topology's"
            );
        }
    }

    #[test]
    fn first_hop_adaptivity_equals_distance() {
        let spectrum = HypercubeSpectrum::new(8);
        for class in spectrum.classes() {
            assert_eq!(class.adaptive_profile.hop_adaptivity[0], vec![(class.distance, 1.0)]);
            assert!(
                (class.adaptive_profile.mean_adaptivity(0) - class.distance as f64).abs() < 1e-12
            );
        }
    }

    #[test]
    fn zero_load_latency_equals_message_length_plus_mean_distance() {
        let r = solve(7, 6, 32, 0.0);
        assert!(!r.saturated);
        assert!((r.mean_network_latency - (32.0 + r.mean_distance)).abs() < 1e-6);
        assert_eq!(r.source_waiting, 0.0);
        assert!((r.multiplexing - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_monotone_in_load_until_saturation() {
        let mut last = 0.0;
        let mut saturated_seen = false;
        for i in 1..=40 {
            let rate = i as f64 * 0.001;
            let r = solve(7, 6, 32, rate);
            if r.saturated {
                saturated_seen = true;
                break;
            }
            assert!(
                r.mean_latency > last,
                "latency must grow with load (rate {rate}: {} vs {last})",
                r.mean_latency
            );
            last = r.mean_latency;
        }
        assert!(saturated_seen, "the sweep must eventually saturate");
    }

    #[test]
    fn channel_rate_follows_equation_three() {
        let r = solve(7, 9, 32, 0.006);
        let expected = 0.006 * r.mean_distance / 7.0;
        assert!((r.channel_rate - expected).abs() < 1e-12);
    }

    #[test]
    fn dimension_order_is_slower_than_adaptive_at_the_same_load() {
        // one admissible port and one admissible virtual channel per hop must
        // block at least as much as the fully adaptive scheme
        let rate = 0.01;
        let adaptive = solve_with(6, 6, 32, rate, HypercubeRouting::EnhancedNbc);
        let ecube = solve_with(6, 6, 32, rate, HypercubeRouting::DimensionOrder);
        assert!(!adaptive.saturated);
        if !ecube.saturated {
            assert!(ecube.mean_latency >= adaptive.mean_latency - 1e-9);
        }
    }

    #[test]
    fn routing_families_order_like_the_star_disciplines() {
        let rate = 0.012;
        let enhanced = solve_with(7, 6, 32, rate, HypercubeRouting::EnhancedNbc);
        let nbc = solve_with(7, 6, 32, rate, HypercubeRouting::Nbc);
        let nhop = solve_with(7, 6, 32, rate, HypercubeRouting::NHop);
        assert!(!enhanced.saturated);
        if !nhop.saturated && !nbc.saturated {
            assert!(nhop.mean_latency >= nbc.mean_latency - 1e-9);
            assert!(nbc.mean_latency >= enhanced.mean_latency - 1e-9);
        }
    }

    #[test]
    fn larger_cubes_have_higher_zero_load_latency() {
        let q6 = solve(6, 6, 32, 0.0);
        let q8 = solve(8, 6, 32, 0.0);
        let q10 = solve(10, 8, 32, 0.0);
        assert!(q8.mean_network_latency > q6.mean_network_latency);
        assert!(q10.mean_network_latency > q8.mean_network_latency);
    }

    #[test]
    fn with_spectrum_reuses_precomputed_spectrum() {
        let spectrum = Arc::new(HypercubeSpectrum::new(7));
        let config =
            HypercubeConfig::builder().dims(7).virtual_channels(6).traffic_rate(0.004).build();
        let a = HypercubeModel::with_spectrum(config, Arc::clone(&spectrum)).solve();
        let b = HypercubeModel::new(config).solve();
        assert!((a.mean_latency - b.mean_latency).abs() < 1e-12);
        assert_eq!(Arc::strong_count(&spectrum), 1);
    }

    #[test]
    #[should_panic(expected = "spectrum size mismatch")]
    fn mismatched_spectrum_is_rejected() {
        let spectrum = Arc::new(HypercubeSpectrum::new(6));
        let config = HypercubeConfig::builder().dims(7).virtual_channels(6).build();
        let _ = HypercubeModel::with_spectrum(config, spectrum);
    }

    #[test]
    fn solve_from_reaches_the_cold_start_fixed_point_with_fewer_iterations() {
        let spectrum = Arc::new(HypercubeSpectrum::new(7));
        let config_at = |rate: f64| {
            HypercubeConfig::builder()
                .dims(7)
                .virtual_channels(6)
                .message_length(32)
                .traffic_rate(rate)
                .build()
        };
        let near_knee =
            HypercubeModel::with_spectrum(config_at(0.020), Arc::clone(&spectrum)).solve();
        assert!(!near_knee.saturated);
        let model = HypercubeModel::with_spectrum(config_at(0.021), Arc::clone(&spectrum));
        let cold = model.solve();
        let warm = model.solve_from(&[near_knee.mean_network_latency]);
        assert!(!cold.saturated && !warm.saturated);
        let rel = (warm.mean_latency - cold.mean_latency).abs() / cold.mean_latency;
        assert!(rel < 1e-9, "warm and cold fixed points differ by {rel}");
        assert!(
            warm.iterations < cold.iterations,
            "warm start must save iterations ({} vs {})",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn solve_from_falls_back_to_cold_start_on_unusable_seeds() {
        let model = HypercubeModel::new(
            HypercubeConfig::builder().dims(7).virtual_channels(6).traffic_rate(0.01).build(),
        );
        let cold = model.solve();
        for seed in [&[][..], &[f64::INFINITY][..], &[f64::NAN][..], &[1.0][..]] {
            let r = model.solve_from(seed);
            assert_eq!(r.iterations, cold.iterations);
            assert!((r.mean_latency - cold.mean_latency).abs() < 1e-12);
        }
    }

    #[test]
    fn heavy_load_is_reported_as_saturated() {
        let r = solve(7, 6, 32, 0.2);
        assert!(r.saturated);
        assert!(r.mean_latency.is_infinite());
    }

    #[test]
    fn parallel_blocking_sums_reproduce_the_serial_solve_exactly() {
        let config = HypercubeConfig::builder()
            .dims(10)
            .virtual_channels(8)
            .message_length(32)
            .traffic_rate(0.008)
            .build();
        let serial = HypercubeModel::new(config).solve();
        // 0 = all pool workers, the workspace-wide width convention
        for threads in [0usize, 2, 4] {
            let parallel = HypercubeModel::new(config).with_parallelism(threads).solve();
            assert_eq!(serial, parallel, "threads = {threads} must be byte-identical");
        }
    }

    #[test]
    fn saturation_rate_is_consistent_with_solves() {
        let cfg = HypercubeConfig::builder().dims(7).virtual_channels(6).message_length(32).build();
        let sat = hypercube_saturation_rate(cfg, 0.02);
        assert!(sat > 0.0);
        let below = solve(7, 6, 32, sat * 0.9);
        let above = solve(7, 6, 32, sat * 1.2);
        assert!(!below.saturated);
        assert!(above.saturated);
        // dimension-order saturates no later than the adaptive scheme
        let ecube = HypercubeConfig { routing: HypercubeRouting::DimensionOrder, ..cfg };
        assert!(hypercube_saturation_rate(ecube, 0.02) <= sat * 1.05);
    }

    #[test]
    fn q10_and_q13_solve_in_the_model_only_regime() {
        // the sizes the star-vs-hypercube parity sweep needs (matched to S6
        // and S7); the simulator cannot reach these, the model must
        for (dims, v) in [(10usize, 8usize), (13, 8)] {
            let r = solve(dims, v, 32, 0.001);
            assert!(!r.saturated, "Q{dims} must solve at light load");
            assert!(r.mean_latency > 32.0 + r.mean_distance);
            assert!(r.iterations > 0);
        }
    }

    #[test]
    fn config_requirements_scale_with_dimension() {
        let q10 = HypercubeConfig::builder().dims(10).virtual_channels(8).build();
        assert_eq!(q10.required_levels(), 6);
        assert_eq!(q10.adaptive_channels(), 2);
        let q13 = HypercubeConfig::builder().dims(13).virtual_channels(8).build();
        assert_eq!(q13.required_levels(), 7);
        assert_eq!(q13.escape_levels(), 7);
    }

    #[test]
    fn too_few_virtual_channels_are_rejected_per_scheme() {
        assert_eq!(
            HypercubeConfig::builder().dims(10).virtual_channels(6).try_build(),
            Err(HypercubeConfigError::TooFewVirtualChannels {
                routing: HypercubeRouting::EnhancedNbc,
                dims: 10,
                required_levels: 6,
                got: 6,
            })
        );
        // the escape-only schemes accept V == required levels
        let ecube = HypercubeConfig::builder()
            .dims(10)
            .virtual_channels(6)
            .routing(HypercubeRouting::DimensionOrder)
            .try_build();
        assert!(ecube.is_ok());
        assert!(HypercubeConfig::builder()
            .dims(10)
            .virtual_channels(5)
            .routing(HypercubeRouting::NHop)
            .try_build()
            .is_err());
    }

    #[test]
    fn config_error_displays() {
        assert!(HypercubeConfigError::UnsupportedDims { dims: 30 }
            .to_string()
            .contains("Q_2 … Q_24, got Q_30"));
        assert_eq!(
            HypercubeConfig::builder().message_length(0).try_build(),
            Err(HypercubeConfigError::ZeroLengthMessage)
        );
        let rate_err = HypercubeConfig::builder().traffic_rate(f64::NAN).try_build().unwrap_err();
        assert!(matches!(rate_err, HypercubeConfigError::InvalidTrafficRate { .. }));
        let err: Box<dyn std::error::Error> = Box::new(HypercubeConfigError::ZeroLengthMessage);
        assert_eq!(err.to_string(), "messages need at least one flit");
    }
}
