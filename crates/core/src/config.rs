//! Analytical-model configuration for the star graph `S_n`.
//!
//! **Topology split:** star-specific by construction — the supported size
//! range (`S_3 … S_9`), the diameter `⌈3(n−1)/2⌉` and the escape-level
//! minimum all come from the star graph.  The hypercube counterpart is
//! [`crate::HypercubeConfig`], which mirrors the same builder/validation
//! shape with `Q_d`'s diameter `d` and level minimum `⌊d/2⌋ + 1`.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use star_graph::coloring;

/// Why a [`ModelConfig`] is invalid.
///
/// Returned by [`ModelConfig::try_validate`] and
/// [`ModelConfigBuilder::try_build`]; the panicking [`ModelConfig::validate`]
/// and [`ModelConfigBuilder::build`] wrappers panic with the [`fmt::Display`]
/// rendering of the same variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConfigError {
    /// `n` is outside the range the exact model supports.
    UnsupportedSize {
        /// The rejected number of symbols.
        symbols: usize,
    },
    /// Messages must be at least one flit long.
    ZeroLengthMessage,
    /// The traffic generation rate is negative, NaN or infinite.
    InvalidTrafficRate {
        /// The rejected rate.
        rate: f64,
    },
    /// The discipline needs more virtual channels than were configured.
    TooFewVirtualChannels {
        /// The discipline being modelled.
        discipline: RoutingDiscipline,
        /// The network size the requirement was computed for.
        symbols: usize,
        /// Minimum negative-hop levels the topology requires.
        required_levels: usize,
        /// The rejected virtual-channel count.
        got: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::UnsupportedSize { symbols } => {
                write!(f, "the exact model supports S_3 … S_9, got S_{symbols}")
            }
            ConfigError::ZeroLengthMessage => write!(f, "messages need at least one flit"),
            ConfigError::InvalidTrafficRate { rate } => {
                write!(f, "traffic rate must be finite and non-negative, got {rate}")
            }
            ConfigError::TooFewVirtualChannels {
                discipline: RoutingDiscipline::EnhancedNbc,
                symbols,
                required_levels,
                got,
            } => write!(
                f,
                "Enhanced-Nbc on S_{symbols} needs more than {required_levels} \
                 virtual channels, got {got}"
            ),
            ConfigError::TooFewVirtualChannels { discipline, symbols, required_levels, got } => {
                write!(
                    f,
                    "{discipline:?} on S_{symbols} needs at least {required_levels} \
                     virtual channels, got {got}"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// Which routing scheme the model evaluates.
///
/// The paper derives the model for Enhanced-Nbc and notes that "the modelling
/// approach used here can be equally applied for other routing schemes after
/// few changes"; the other two disciplines implement exactly those changes —
/// they only differ in how the virtual channels of a physical channel are
/// split and in how many of them a header may request on one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoutingDiscipline {
    /// The paper's algorithm: a minimal set of escape levels plus fully
    /// adaptive class-a channels, with bonus cards on the escape levels.
    #[default]
    EnhancedNbc,
    /// Negative-hop with bonus cards over all `V` virtual channels
    /// (no class-a channels).
    Nbc,
    /// Plain negative-hop: exactly one admissible virtual channel per
    /// admissible physical channel.
    NHop,
}

/// Configuration of one analytical-model evaluation: a star graph `S_n`, the
/// number of virtual channels per physical channel, the message length and
/// the per-node traffic generation rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of symbols `n` of the star graph (`S_n` has `n!` nodes).
    pub symbols: usize,
    /// Virtual channels `V` per physical channel.
    pub virtual_channels: usize,
    /// Message length `M` in flits.
    pub message_length: usize,
    /// Traffic generation rate `λ_g` in messages per node per cycle.
    pub traffic_rate: f64,
    /// Routing discipline being modelled (Enhanced-Nbc in the paper).
    pub discipline: RoutingDiscipline,
}

impl ModelConfig {
    /// Starts a builder with the paper's `S5`, `V = 6`, `M = 32`,
    /// Enhanced-Nbc configuration at a low load.
    #[must_use]
    pub fn builder() -> ModelConfigBuilder {
        ModelConfigBuilder {
            config: Self {
                symbols: 5,
                virtual_channels: 6,
                message_length: 32,
                traffic_rate: 0.001,
                discipline: RoutingDiscipline::EnhancedNbc,
            },
        }
    }

    /// Network diameter `⌈3(n−1)/2⌉`.
    #[must_use]
    pub fn diameter(&self) -> usize {
        3 * (self.symbols - 1) / 2
    }

    /// Minimum number of negative-hop levels the topology requires
    /// (`⌊H/2⌋ + 1` for the 2-colourable star graph).
    #[must_use]
    pub fn required_levels(&self) -> usize {
        coloring::max_negative_hops(self.diameter(), 2) + 1
    }

    /// Number of class-b (escape) virtual channels `V2` the modelled
    /// discipline uses: the minimum for Enhanced-Nbc, all `V` channels for
    /// Nbc and NHop.
    #[must_use]
    pub fn escape_levels(&self) -> usize {
        match self.discipline {
            RoutingDiscipline::EnhancedNbc => self.required_levels(),
            RoutingDiscipline::Nbc | RoutingDiscipline::NHop => self.virtual_channels,
        }
    }

    /// Number of class-a (fully adaptive) virtual channels (`V − V2` for
    /// Enhanced-Nbc, none for the escape-only disciplines).
    #[must_use]
    pub fn adaptive_channels(&self) -> usize {
        match self.discipline {
            RoutingDiscipline::EnhancedNbc => self.virtual_channels - self.required_levels(),
            RoutingDiscipline::Nbc | RoutingDiscipline::NHop => 0,
        }
    }

    /// Whether the modelled discipline lets headers climb above their
    /// mandatory escape level (bonus cards).
    #[must_use]
    pub fn bonus_cards(&self) -> bool {
        !matches!(self.discipline, RoutingDiscipline::NHop)
    }

    /// Router degree `n − 1`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.symbols - 1
    }

    /// Validates the configuration, returning the first violation found.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] describing the out-of-range parameter (too
    /// few virtual channels for the modelled discipline, zero-length
    /// messages, negative traffic, unsupported `n`).
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(3..=9).contains(&self.symbols) {
            return Err(ConfigError::UnsupportedSize { symbols: self.symbols });
        }
        if self.message_length < 1 {
            return Err(ConfigError::ZeroLengthMessage);
        }
        if !(self.traffic_rate >= 0.0 && self.traffic_rate.is_finite()) {
            return Err(ConfigError::InvalidTrafficRate { rate: self.traffic_rate });
        }
        let enough = match self.discipline {
            RoutingDiscipline::EnhancedNbc => self.virtual_channels > self.required_levels(),
            RoutingDiscipline::Nbc | RoutingDiscipline::NHop => {
                self.virtual_channels >= self.required_levels()
            }
        };
        if !enough {
            return Err(ConfigError::TooFewVirtualChannels {
                discipline: self.discipline,
                symbols: self.symbols,
                required_levels: self.required_levels(),
                got: self.virtual_channels,
            });
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics with the [`fmt::Display`] rendering of the [`ConfigError`] that
    /// [`Self::try_validate`] would return.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Builder for [`ModelConfig`].
#[derive(Debug, Clone)]
pub struct ModelConfigBuilder {
    config: ModelConfig,
}

impl ModelConfigBuilder {
    /// Sets the number of symbols `n`.
    #[must_use]
    pub fn symbols(mut self, n: usize) -> Self {
        self.config.symbols = n;
        self
    }

    /// Sets the number of virtual channels per physical channel.
    #[must_use]
    pub fn virtual_channels(mut self, v: usize) -> Self {
        self.config.virtual_channels = v;
        self
    }

    /// Sets the message length in flits.
    #[must_use]
    pub fn message_length(mut self, m: usize) -> Self {
        self.config.message_length = m;
        self
    }

    /// Sets the traffic generation rate (messages/node/cycle).
    #[must_use]
    pub fn traffic_rate(mut self, rate: f64) -> Self {
        self.config.traffic_rate = rate;
        self
    }

    /// Sets the routing discipline being modelled (defaults to Enhanced-Nbc,
    /// the paper's algorithm).
    #[must_use]
    pub fn discipline(mut self, discipline: RoutingDiscipline) -> Self {
        self.config.discipline = discipline;
        self
    }

    /// Finishes the builder without panicking.
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing why the configuration is
    /// invalid.
    pub fn try_build(self) -> Result<ModelConfig, ConfigError> {
        self.config.try_validate()?;
        Ok(self.config)
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (the panicking wrapper around
    /// [`Self::try_build`]).
    #[must_use]
    pub fn build(self) -> ModelConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_are_valid() {
        for &v in &[6usize, 9, 12] {
            for &m in &[32usize, 64] {
                let c = ModelConfig::builder()
                    .symbols(5)
                    .virtual_channels(v)
                    .message_length(m)
                    .traffic_rate(0.005)
                    .build();
                assert_eq!(c.diameter(), 6);
                assert_eq!(c.escape_levels(), 4);
                assert_eq!(c.adaptive_channels(), v - 4);
                assert_eq!(c.degree(), 4);
            }
        }
    }

    #[test]
    fn s6_and_s7_derived_values() {
        let c6 = ModelConfig::builder().symbols(6).virtual_channels(6).build();
        assert_eq!(c6.diameter(), 7);
        assert_eq!(c6.escape_levels(), 4);
        let c7 = ModelConfig::builder().symbols(7).virtual_channels(8).build();
        assert_eq!(c7.diameter(), 9);
        assert_eq!(c7.escape_levels(), 5);
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn too_few_virtual_channels_rejected() {
        let _ = ModelConfig::builder().symbols(5).virtual_channels(4).build();
    }

    #[test]
    #[should_panic(expected = "S_3 … S_9")]
    fn unsupported_size_rejected() {
        let _ = ModelConfig::builder().symbols(10).virtual_channels(8).build();
    }

    #[test]
    fn escape_only_disciplines_use_every_virtual_channel_as_a_level() {
        let nbc = ModelConfig::builder()
            .symbols(5)
            .virtual_channels(6)
            .discipline(RoutingDiscipline::Nbc)
            .build();
        assert_eq!(nbc.escape_levels(), 6);
        assert_eq!(nbc.adaptive_channels(), 0);
        assert!(nbc.bonus_cards());
        let nhop = ModelConfig::builder()
            .symbols(5)
            .virtual_channels(4)
            .discipline(RoutingDiscipline::NHop)
            .build();
        assert_eq!(nhop.escape_levels(), 4);
        assert_eq!(nhop.adaptive_channels(), 0);
        assert!(!nhop.bonus_cards());
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn escape_only_disciplines_still_need_the_minimum_levels() {
        let _ = ModelConfig::builder()
            .symbols(5)
            .virtual_channels(3)
            .discipline(RoutingDiscipline::Nbc)
            .build();
    }

    #[test]
    fn try_build_returns_ok_for_valid_configurations() {
        let c = ModelConfig::builder().symbols(5).virtual_channels(6).try_build().unwrap();
        assert_eq!(c.symbols, 5);
        assert!(c.try_validate().is_ok());
    }

    #[test]
    fn try_build_reports_each_violation_without_panicking() {
        assert_eq!(
            ModelConfig::builder().symbols(10).virtual_channels(8).try_build(),
            Err(ConfigError::UnsupportedSize { symbols: 10 })
        );
        assert_eq!(
            ModelConfig::builder().message_length(0).try_build(),
            Err(ConfigError::ZeroLengthMessage)
        );
        let rate_err = ModelConfig::builder().traffic_rate(f64::NAN).try_build().unwrap_err();
        assert!(matches!(rate_err, ConfigError::InvalidTrafficRate { .. }));
        assert_eq!(
            ModelConfig::builder().symbols(5).virtual_channels(4).try_build(),
            Err(ConfigError::TooFewVirtualChannels {
                discipline: RoutingDiscipline::EnhancedNbc,
                symbols: 5,
                required_levels: 4,
                got: 4,
            })
        );
    }

    #[test]
    fn config_error_displays_match_the_panic_messages() {
        let strict = ConfigError::TooFewVirtualChannels {
            discipline: RoutingDiscipline::EnhancedNbc,
            symbols: 5,
            required_levels: 4,
            got: 4,
        };
        assert_eq!(
            strict.to_string(),
            "Enhanced-Nbc on S_5 needs more than 4 virtual channels, got 4"
        );
        let loose = ConfigError::TooFewVirtualChannels {
            discipline: RoutingDiscipline::Nbc,
            symbols: 5,
            required_levels: 4,
            got: 3,
        };
        assert_eq!(loose.to_string(), "Nbc on S_5 needs at least 4 virtual channels, got 3");
        assert!(ConfigError::UnsupportedSize { symbols: 10 }
            .to_string()
            .contains("S_3 … S_9, got S_10"));
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroLengthMessage);
        assert_eq!(err.to_string(), "messages need at least one flit");
    }
}
