//! The full analytical latency model (Eq. 1) and its fixed-point solution.
//!
//! **Topology split:** this is the star instantiation of the latency stage —
//! it walks the star's [`DestinationSpectrum`] (cycle-type classes).  The
//! fixed-point structure itself (the circular dependency between `S̄` and
//! the waiting times, the damped solver, the warm-start contract of
//! [`AnalyticalModel::solve_from`]) is topology-agnostic and is shared
//! verbatim with [`crate::HypercubeModel`].

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_queueing::{FixedPointOutcome, FixedPointSolver};

use crate::adaptivity::DestinationSpectrum;
use crate::blocking::{batch_blocking_delays, total_blocking_delay, VcSplit};
use crate::config::ModelConfig;
use crate::occupancy::ChannelOccupancy;
use crate::waiting::{channel_waiting_time, source_waiting_time};

/// Result of evaluating the analytical model at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelResult {
    /// The configuration that was evaluated.
    pub config: ModelConfig,
    /// Whether the operating point is beyond saturation (the fixed point
    /// diverged or a queue became unstable).
    pub saturated: bool,
    /// Mean network latency `S̄` (time to cross the network), in cycles.
    pub mean_network_latency: f64,
    /// Mean waiting time at the source queue `W_s`, in cycles.
    pub source_waiting: f64,
    /// Average degree of virtual-channel multiplexing `V̄`.
    pub multiplexing: f64,
    /// Mean message latency `(S̄ + W_s)·V̄`, in cycles.
    pub mean_latency: f64,
    /// Mean minimal distance `d̄` (Eq. 2).
    pub mean_distance: f64,
    /// Traffic rate per channel `λ_c` (Eq. 3).
    pub channel_rate: f64,
    /// Channel utilisation `λ_c · S̄` at the solution.
    pub channel_utilization: f64,
    /// Mean waiting time `w̄` at a channel when blocking occurs (Eq. 15).
    pub channel_waiting: f64,
    /// Number of fixed-point iterations used.
    pub iterations: usize,
}

impl ModelResult {
    /// A saturated placeholder result (infinite latency).
    fn saturated(
        config: ModelConfig,
        mean_distance: f64,
        channel_rate: f64,
        iterations: usize,
    ) -> Self {
        Self {
            config,
            saturated: true,
            mean_network_latency: f64::INFINITY,
            source_waiting: f64::INFINITY,
            multiplexing: config.virtual_channels as f64,
            mean_latency: f64::INFINITY,
            mean_distance,
            channel_rate,
            channel_utilization: 1.0,
            channel_waiting: f64::INFINITY,
            iterations,
        }
    }
}

/// The damped fixed-point solver both latency models (star and hypercube)
/// iterate with.
///
/// Tolerance 1e-12 (not the solver default 1e-9): near the knee the
/// contraction factor approaches 1 and the per-iteration residual understates
/// the distance to the fixed point, and warm- and cold-started solves must
/// agree to 1e-9 relative latency.
pub(crate) fn latency_solver() -> FixedPointSolver {
    FixedPointSolver {
        damping: 0.5,
        tolerance: 1e-12,
        max_iterations: 20_000,
        divergence_ceiling: 1e7,
    }
}

/// The analytical model of mean message latency for Enhanced-Nbc routing on
/// `S_n` (the paper's contribution).
#[derive(Debug, Clone)]
pub struct AnalyticalModel {
    config: ModelConfig,
    spectrum: Arc<DestinationSpectrum>,
    parallelism: usize,
}

impl AnalyticalModel {
    /// Builds the model, precomputing the destination spectrum of `S_n`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: ModelConfig) -> Self {
        config.validate();
        let spectrum = Arc::new(DestinationSpectrum::new(config.symbols));
        Self { config, spectrum, parallelism: 1 }
    }

    /// Builds the model sharing an already computed destination spectrum
    /// (useful when sweeping traffic rates: the spectrum only depends on `n`,
    /// and the `Arc` lets a whole sweep — or several threads — reuse one
    /// allocation).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the spectrum was built for a
    /// different `n`.
    #[must_use]
    pub fn with_spectrum(config: ModelConfig, spectrum: Arc<DestinationSpectrum>) -> Self {
        config.validate();
        assert_eq!(spectrum.symbols(), config.symbols, "spectrum size mismatch");
        Self { config, spectrum, parallelism: 1 }
    }

    /// Shards the per-destination-class blocking sums of every fixed-point
    /// iteration across the shared [`star_exec::ExecPool`]: `1` = serial
    /// (the default), `0` = all pool workers, anything else caps the
    /// executors — the same width convention as every other parallel knob
    /// in the workspace.  The answer is byte-identical for any width — see
    /// [`crate::blocking::batch_blocking_delays`]; worth it for the largest
    /// spectra (`S7`+), which the `model_solve` bench quantifies against
    /// the retired spawn-per-step baseline.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// The configuration being evaluated.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The destination spectrum (shared across operating points of the same
    /// `S_n`).
    #[must_use]
    pub fn spectrum(&self) -> &DestinationSpectrum {
        &self.spectrum
    }

    /// Evaluates the mean network latency implied by a current estimate of
    /// `S̄`: one application of Eqs. 4-15.
    fn network_latency_step(&self, mean_service: f64, channel_rate: f64) -> f64 {
        let cfg = &self.config;
        let split = VcSplit {
            adaptive: cfg.adaptive_channels(),
            escape_levels: cfg.escape_levels(),
            bonus_cards: cfg.bonus_cards(),
        };
        let occupancy = ChannelOccupancy::new(channel_rate, mean_service, cfg.virtual_channels);
        let mean_wait = channel_waiting_time(channel_rate, mean_service, cfg.message_length);
        if !mean_wait.is_finite() {
            return f64::INFINITY;
        }
        let mut weighted = 0.0;
        if self.parallelism == 1 {
            // serial fast path: no per-iteration allocation in the solver's
            // innermost loop
            for class in self.spectrum.classes() {
                let blocking = total_blocking_delay(split, &occupancy, &class.profile, mean_wait);
                let latency = cfg.message_length as f64 + class.distance as f64 + blocking;
                weighted += latency * class.count as f64;
            }
        } else {
            let profiles: Vec<&star_graph::AdaptivityProfile> =
                self.spectrum.classes().iter().map(|c| &c.profile).collect();
            let delays =
                batch_blocking_delays(split, &occupancy, &profiles, mean_wait, self.parallelism);
            for (class, blocking) in self.spectrum.classes().iter().zip(delays) {
                let latency = cfg.message_length as f64 + class.distance as f64 + blocking;
                weighted += latency * class.count as f64;
            }
        }
        weighted / self.spectrum.destination_count() as f64
    }

    /// Solves the model at the configured operating point from the cold
    /// (zero-load) initial state.
    #[must_use]
    pub fn solve(&self) -> ModelResult {
        self.solve_from(&[])
    }

    /// Solves the model, warm-starting the damped fixed-point iteration from
    /// a previously converged state vector (today one component: the mean
    /// network latency `S̄`).
    ///
    /// Sweeps over increasing traffic rates converge to nearby fixed points,
    /// so seeding each rate with the previous rate's converged state cuts the
    /// iteration count substantially near the saturation knee while reaching
    /// the same fixed point (the solver tolerance bounds the answer, not the
    /// path to it).  An empty slice or a non-finite / below-zero-load seed
    /// (e.g. from a saturated previous point) falls back to the cold start,
    /// so callers can pass the previous state unconditionally.
    #[must_use]
    pub fn solve_from(&self, warm_state: &[f64]) -> ModelResult {
        let cfg = &self.config;
        let mean_distance = self.spectrum.mean_distance();
        let channel_rate = cfg.traffic_rate * mean_distance / cfg.degree() as f64;
        let zero_load = cfg.message_length as f64 + mean_distance;

        // Quick stability screen: a channel can never serve more than one
        // message of M flits at a time, so λ_c·M ≥ 1 is beyond saturation.
        if channel_rate * cfg.message_length as f64 >= 1.0 {
            return ModelResult::saturated(*cfg, mean_distance, channel_rate, 0);
        }

        let initial = match warm_state.first() {
            Some(&seed) if seed.is_finite() && seed >= zero_load => seed,
            _ => zero_load,
        };
        let solver = latency_solver();
        let outcome = solver
            .solve(vec![initial], |state| vec![self.network_latency_step(state[0], channel_rate)]);
        let (mean_network_latency, iterations) = match outcome {
            FixedPointOutcome::Converged { state, iterations } => (state[0], iterations),
            FixedPointOutcome::Diverged { iterations, .. } => {
                return ModelResult::saturated(*cfg, mean_distance, channel_rate, iterations);
            }
            FixedPointOutcome::MaxIterations { state, .. } => (state[0], solver.max_iterations),
        };

        let occupancy =
            ChannelOccupancy::new(channel_rate, mean_network_latency, cfg.virtual_channels);
        let multiplexing = occupancy.multiplexing_degree();
        let channel_waiting =
            channel_waiting_time(channel_rate, mean_network_latency, cfg.message_length);
        let source_waiting = source_waiting_time(
            cfg.traffic_rate,
            cfg.virtual_channels,
            mean_network_latency,
            cfg.message_length,
        );
        if !source_waiting.is_finite() || !channel_waiting.is_finite() {
            return ModelResult::saturated(*cfg, mean_distance, channel_rate, iterations);
        }
        let mean_latency = (mean_network_latency + source_waiting) * multiplexing;
        ModelResult {
            config: *cfg,
            saturated: false,
            mean_network_latency,
            source_waiting,
            multiplexing,
            mean_latency,
            mean_distance,
            channel_rate,
            channel_utilization: channel_rate * mean_network_latency,
            channel_waiting,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(symbols: usize, v: usize, m: usize, rate: f64) -> ModelResult {
        AnalyticalModel::new(
            ModelConfig::builder()
                .symbols(symbols)
                .virtual_channels(v)
                .message_length(m)
                .traffic_rate(rate)
                .build(),
        )
        .solve()
    }

    #[test]
    fn zero_load_latency_equals_message_length_plus_mean_distance() {
        let r = solve(5, 6, 32, 0.0);
        assert!(!r.saturated);
        assert!((r.mean_network_latency - (32.0 + r.mean_distance)).abs() < 1e-6);
        assert_eq!(r.source_waiting, 0.0);
        assert!((r.multiplexing - 1.0).abs() < 1e-9);
        assert!((r.mean_latency - r.mean_network_latency).abs() < 1e-6);
    }

    #[test]
    fn latency_is_monotone_in_load_until_saturation() {
        let mut last = 0.0;
        let mut saturated_seen = false;
        for i in 1..=30 {
            let rate = i as f64 * 0.001;
            let r = solve(5, 6, 32, rate);
            if r.saturated {
                saturated_seen = true;
                break;
            }
            assert!(
                r.mean_latency > last,
                "latency must grow with load (rate {rate}: {} vs {last})",
                r.mean_latency
            );
            last = r.mean_latency;
        }
        assert!(saturated_seen, "the sweep must eventually saturate");
    }

    #[test]
    fn more_virtual_channels_saturate_later_and_block_less() {
        // At the same moderate load, more virtual channels give lower latency;
        // this is the ordering Figure 1 (a)-(c) exhibits.
        let rate = 0.008;
        let r6 = solve(5, 6, 32, rate);
        let r9 = solve(5, 9, 32, rate);
        let r12 = solve(5, 12, 32, rate);
        assert!(!r12.saturated);
        if !r6.saturated && !r9.saturated {
            assert!(r9.mean_latency <= r6.mean_latency + 1e-9);
            assert!(r12.mean_latency <= r9.mean_latency + 1e-9);
        }
    }

    #[test]
    fn longer_messages_have_higher_latency_and_earlier_saturation() {
        let rate = 0.004;
        let m32 = solve(5, 6, 32, rate);
        let m64 = solve(5, 6, 64, rate);
        assert!(!m32.saturated);
        if !m64.saturated {
            assert!(m64.mean_latency > m32.mean_latency + 20.0);
        }
        // at a rate where M=64 is saturated, M=32 may still be fine
        let high = 0.009;
        let m32h = solve(5, 6, 32, high);
        let m64h = solve(5, 6, 64, high);
        assert!(m64h.saturated || m64h.mean_latency > m32h.mean_latency);
    }

    #[test]
    fn heavy_load_is_reported_as_saturated() {
        let r = solve(5, 6, 32, 0.05);
        assert!(r.saturated);
        assert!(r.mean_latency.is_infinite());
    }

    #[test]
    fn channel_rate_follows_equation_three() {
        let r = solve(5, 9, 32, 0.006);
        let expected = 0.006 * r.mean_distance / 4.0;
        assert!((r.channel_rate - expected).abs() < 1e-12);
    }

    #[test]
    fn multiplexing_between_one_and_v() {
        for &rate in &[0.001, 0.004, 0.008] {
            let r = solve(5, 9, 32, rate);
            if !r.saturated {
                assert!(r.multiplexing >= 1.0);
                assert!(r.multiplexing <= 9.0);
            }
        }
    }

    #[test]
    fn larger_networks_have_higher_zero_load_latency() {
        let s4 = solve(4, 6, 32, 0.0);
        let s5 = solve(5, 6, 32, 0.0);
        let s6 = solve(6, 6, 32, 0.0);
        assert!(s5.mean_network_latency > s4.mean_network_latency);
        assert!(s6.mean_network_latency > s5.mean_network_latency);
    }

    #[test]
    fn with_spectrum_reuses_precomputed_spectrum() {
        let spectrum = Arc::new(DestinationSpectrum::new(5));
        let config =
            ModelConfig::builder().symbols(5).virtual_channels(6).traffic_rate(0.002).build();
        let a = AnalyticalModel::with_spectrum(config, Arc::clone(&spectrum)).solve();
        let b = AnalyticalModel::new(config).solve();
        assert!((a.mean_latency - b.mean_latency).abs() < 1e-12);
        // the Arc is shared, not deep-cloned
        assert_eq!(Arc::strong_count(&spectrum), 1);
    }

    #[test]
    #[should_panic(expected = "spectrum size mismatch")]
    fn mismatched_spectrum_is_rejected() {
        let spectrum = Arc::new(DestinationSpectrum::new(4));
        let config = ModelConfig::builder().symbols(5).virtual_channels(6).build();
        let _ = AnalyticalModel::with_spectrum(config, spectrum);
    }

    #[test]
    fn parallel_blocking_sums_reproduce_the_serial_solve_exactly() {
        let config = ModelConfig::builder()
            .symbols(6)
            .virtual_channels(6)
            .message_length(32)
            .traffic_rate(0.004)
            .build();
        let serial = AnalyticalModel::new(config).solve();
        for threads in [2usize, 4] {
            let parallel = AnalyticalModel::new(config).with_parallelism(threads).solve();
            assert_eq!(serial, parallel, "threads = {threads} must be byte-identical");
        }
        // 0 = all pool workers, still byte-identical
        let zero = AnalyticalModel::new(config).with_parallelism(0).solve();
        assert_eq!(serial, zero);
    }

    #[test]
    fn solve_from_reaches_the_cold_start_fixed_point_with_fewer_iterations() {
        let near_knee = solve(5, 6, 32, 0.011);
        assert!(!near_knee.saturated);
        let model = AnalyticalModel::new(
            ModelConfig::builder()
                .symbols(5)
                .virtual_channels(6)
                .message_length(32)
                .traffic_rate(0.0115)
                .build(),
        );
        let cold = model.solve();
        let warm = model.solve_from(&[near_knee.mean_network_latency]);
        assert!(!cold.saturated && !warm.saturated);
        let rel = (warm.mean_latency - cold.mean_latency).abs() / cold.mean_latency;
        assert!(rel < 1e-9, "warm and cold fixed points differ by {rel}");
        assert!(
            warm.iterations < cold.iterations,
            "warm start must save iterations ({} vs {})",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn solve_from_falls_back_to_cold_start_on_unusable_seeds() {
        let model = AnalyticalModel::new(
            ModelConfig::builder().symbols(5).virtual_channels(6).traffic_rate(0.008).build(),
        );
        let cold = model.solve();
        for seed in [&[][..], &[f64::INFINITY][..], &[f64::NAN][..], &[1.0][..]] {
            let r = model.solve_from(seed);
            assert_eq!(r.iterations, cold.iterations);
            assert!((r.mean_latency - cold.mean_latency).abs() < 1e-12);
        }
    }

    #[test]
    fn plain_negative_hop_is_the_slowest_discipline() {
        // The model extension for the other routing schemes (the "few
        // changes" the paper mentions): with the same V and load, the plain
        // negative-hop scheme offers the least choice per hop and must show
        // the highest latency, matching the simulated ablation.
        use crate::config::RoutingDiscipline;
        let rate = 0.008;
        let solve_with = |discipline| {
            AnalyticalModel::new(
                ModelConfig::builder()
                    .symbols(5)
                    .virtual_channels(6)
                    .message_length(32)
                    .traffic_rate(rate)
                    .discipline(discipline)
                    .build(),
            )
            .solve()
        };
        let enhanced = solve_with(RoutingDiscipline::EnhancedNbc);
        let nbc = solve_with(RoutingDiscipline::Nbc);
        let nhop = solve_with(RoutingDiscipline::NHop);
        assert!(!enhanced.saturated && !nbc.saturated);
        if !nhop.saturated {
            assert!(nhop.mean_latency >= nbc.mean_latency - 1e-9);
            assert!(nhop.mean_latency >= enhanced.mean_latency - 1e-9);
        }
        // NHop never saturates later than the bonus-card schemes
        let sat = |d| {
            crate::sweep::saturation_rate(
                ModelConfig::builder()
                    .symbols(5)
                    .virtual_channels(6)
                    .message_length(32)
                    .discipline(d)
                    .build(),
                0.03,
            )
        };
        assert!(sat(RoutingDiscipline::NHop) <= sat(RoutingDiscipline::Nbc) * 1.05);
        assert!(sat(RoutingDiscipline::NHop) <= sat(RoutingDiscipline::EnhancedNbc) * 1.05);
    }
}
