//! Traffic sweeps and saturation-point estimation.
//!
//! Figure 1 of the paper plots mean message latency against the traffic
//! generation rate for a fixed network, message length and number of virtual
//! channels; [`sweep_traffic`] produces exactly that curve from the model, and
//! [`saturation_rate`] finds the largest generation rate the model still
//! solves (by bisection on the saturation flag), which is how the model
//! predicts the saturation point visible in the figure.
//!
//! These helpers drive the star model directly; topology-generic sweeps
//! (including hypercube scenarios) go through the `star-workloads` crate's
//! `ModelBackend`, which owns the same warm-start chaining for both
//! topologies.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::adaptivity::DestinationSpectrum;
use crate::config::ModelConfig;
use crate::model::{AnalyticalModel, ModelResult};

/// One point of a latency-vs-load curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Traffic generation rate `λ_g` (messages/node/cycle).
    pub traffic_rate: f64,
    /// Model result at this rate.
    pub result: ModelResult,
}

/// Evaluates the model at each of the given traffic rates, sharing one
/// destination spectrum across the whole sweep and warm-starting each rate's
/// fixed-point iteration from the previous rate's converged state (which cuts
/// the iteration count substantially near the saturation knee while matching
/// the cold-start fixed points to solver tolerance).
#[must_use]
pub fn sweep_traffic(base: ModelConfig, rates: &[f64]) -> Vec<SweepPoint> {
    sweep_with_start(base, rates, true)
}

/// [`sweep_traffic`] without warm-starting: every rate is solved from the
/// cold zero-load state.  Kept for iteration-count comparisons and the
/// `sweep_warmstart` benchmark; results match [`sweep_traffic`] to solver
/// tolerance.
#[must_use]
pub fn sweep_traffic_cold(base: ModelConfig, rates: &[f64]) -> Vec<SweepPoint> {
    sweep_with_start(base, rates, false)
}

fn sweep_with_start(base: ModelConfig, rates: &[f64], warm_start: bool) -> Vec<SweepPoint> {
    let spectrum = Arc::new(DestinationSpectrum::new(base.symbols));
    let mut warm_state: Vec<f64> = Vec::new();
    rates
        .iter()
        .map(|&rate| {
            let config = ModelConfig { traffic_rate: rate, ..base };
            let model = AnalyticalModel::with_spectrum(config, Arc::clone(&spectrum));
            let result = model.solve_from(&warm_state);
            if warm_start {
                // a saturated point yields no usable seed; solve_from falls
                // back to the cold start on the non-finite state
                warm_state = vec![result.mean_network_latency];
            }
            SweepPoint { traffic_rate: rate, result }
        })
        .collect()
}

/// Evenly spaced traffic rates from `from` to `to` inclusive.
#[must_use]
pub fn linspace(from: f64, to: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two points");
    (0..points).map(|i| from + (to - from) * i as f64 / (points - 1) as f64).collect()
}

/// Largest traffic generation rate at which the model still converges (the
/// predicted saturation rate), found by bisection to the given relative
/// tolerance.
#[must_use]
pub fn saturation_rate(base: ModelConfig, tolerance: f64) -> f64 {
    assert!(tolerance > 0.0 && tolerance < 1.0, "tolerance must be in (0, 1)");
    let spectrum = Arc::new(DestinationSpectrum::new(base.symbols));
    let solves = |rate: f64| {
        let config = ModelConfig { traffic_rate: rate, ..base };
        !AnalyticalModel::with_spectrum(config, Arc::clone(&spectrum)).solve().saturated
    };
    // establish an upper bound that saturates
    let mut low = 0.0;
    let mut high = 1.0 / base.message_length as f64; // λ_c·M ≥ 1 is certainly saturated
    debug_assert!(!solves(high));
    while (high - low) / high.max(1e-12) > tolerance {
        let mid = 0.5 * (low + high);
        if solves(mid) {
            low = mid;
        } else {
            high = mid;
        }
    }
    low
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s5_config(v: usize, m: usize) -> ModelConfig {
        ModelConfig::builder().symbols(5).virtual_channels(v).message_length(m).build()
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let pts = linspace(0.0, 0.01, 11);
        assert_eq!(pts.len(), 11);
        assert!((pts[0]).abs() < 1e-15);
        assert!((pts[10] - 0.01).abs() < 1e-15);
        assert!((pts[5] - 0.005).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_monotone_until_saturation() {
        let points = sweep_traffic(s5_config(6, 32), &linspace(0.0005, 0.03, 20));
        let mut last = 0.0;
        for p in &points {
            if p.result.saturated {
                continue;
            }
            assert!(p.result.mean_latency >= last);
            last = p.result.mean_latency;
        }
        assert!(points.iter().any(|p| !p.result.saturated), "some points must converge");
        assert!(points.iter().any(|p| p.result.saturated), "the sweep must reach saturation");
    }

    #[test]
    fn saturation_rate_orders_with_virtual_channels_and_message_length() {
        let tol = 0.02;
        let sat_v6 = saturation_rate(s5_config(6, 32), tol);
        let sat_v12 = saturation_rate(s5_config(12, 32), tol);
        let sat_m64 = saturation_rate(s5_config(6, 64), tol);
        assert!(sat_v6 > 0.0);
        // more virtual channels push saturation to higher load (Figure 1a→1c)
        assert!(sat_v12 >= sat_v6 * 0.95);
        // doubling the message length roughly halves the saturation rate
        assert!(sat_m64 < sat_v6);
        assert!(sat_m64 > sat_v6 * 0.3);
    }

    #[test]
    fn warm_started_sweep_matches_cold_sweep_and_saves_iterations() {
        let cfg = s5_config(6, 32);
        let rates = linspace(0.001, 0.012, 12);
        let warm = sweep_traffic(cfg, &rates);
        let cold = sweep_traffic_cold(cfg, &rates);
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.result.saturated, c.result.saturated);
            if !w.result.saturated {
                let rel =
                    (w.result.mean_latency - c.result.mean_latency).abs() / c.result.mean_latency;
                assert!(rel < 1e-9, "rate {}: warm/cold differ by {rel}", w.traffic_rate);
            }
        }
        let warm_iters: usize = warm.iter().map(|p| p.result.iterations).sum();
        let cold_iters: usize = cold.iter().map(|p| p.result.iterations).sum();
        assert!(
            warm_iters < cold_iters,
            "warm-started sweep must use fewer iterations ({warm_iters} vs {cold_iters})"
        );
    }

    #[test]
    fn saturation_rate_is_consistent_with_the_sweep() {
        let cfg = s5_config(9, 32);
        let sat = saturation_rate(cfg, 0.02);
        let below = sweep_traffic(cfg, &[sat * 0.9]);
        let above = sweep_traffic(cfg, &[sat * 1.2]);
        assert!(!below[0].result.saturated);
        assert!(above[0].result.saturated);
    }
}
