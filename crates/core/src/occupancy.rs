//! Virtual-channel occupancy and "all the channels I may use are busy"
//! probabilities.
//!
//! Eq. (18) gives the steady-state probability `P_v` that `v` of the `V`
//! virtual channels of a physical channel are busy.  Eqs. (9-11) then need the
//! probability that a *specific* set of `a` virtual channels (the ones the
//! message is allowed to use) is entirely busy.  Conditioning on `v` busy
//! channels chosen uniformly at random, that probability is
//! `C(v, a) / C(V, a)`, giving
//!
//! `P_all_busy(a) = Σ_{v=a}^{V} [C(v, a)/C(V, a)] · P_v`.
//!
//! **Topology split:** fully topology-agnostic — the occupancy chain is a
//! property of one physical channel (its arrival rate, service time and `V`),
//! not of the network around it.  Both the star and the hypercube model call
//! it unchanged.

use star_queueing::markov::vc_occupancy_distribution;

/// Binomial coefficient as `f64` (exact for the small arguments used here).
#[must_use]
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result *= (n - i) as f64;
        result /= (i + 1) as f64;
    }
    result
}

/// The virtual-channel occupancy state of a physical channel at a given
/// operating point.
#[derive(Debug, Clone)]
pub struct ChannelOccupancy {
    total_vcs: usize,
    probabilities: Vec<f64>,
}

impl ChannelOccupancy {
    /// Builds the occupancy distribution of Eq. (18) for a channel receiving
    /// messages at rate `channel_rate` with mean service time `mean_service`.
    ///
    /// # Panics
    /// Panics if `total_vcs` is zero.
    #[must_use]
    pub fn new(channel_rate: f64, mean_service: f64, total_vcs: usize) -> Self {
        let probabilities = vc_occupancy_distribution(channel_rate, mean_service, total_vcs);
        Self { total_vcs, probabilities }
    }

    /// Total number of virtual channels `V`.
    #[must_use]
    pub fn total_vcs(&self) -> usize {
        self.total_vcs
    }

    /// The distribution `P_0 … P_V`.
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Probability that a specific set of `selectable` virtual channels is
    /// entirely busy (Eqs. 9-11): the message is blocked on this physical
    /// channel exactly when all of the channels it is permitted to use are
    /// occupied.
    ///
    /// Returns 1.0 when `selectable == 0` (a message with no admissible
    /// channel is trivially blocked) — the Enhanced-Nbc window never shrinks
    /// to zero, but the guard keeps the function total.
    #[must_use]
    pub fn prob_all_busy(&self, selectable: usize) -> f64 {
        if selectable == 0 {
            return 1.0;
        }
        if selectable > self.total_vcs {
            return 0.0;
        }
        let denom = binomial(self.total_vcs, selectable);
        let mut p = 0.0;
        for v in selectable..=self.total_vcs {
            p += binomial(v, selectable) / denom * self.probabilities[v];
        }
        p.clamp(0.0, 1.0)
    }

    /// Dally's average multiplexing degree `V̄` (Eq. 19) at this operating
    /// point.
    #[must_use]
    pub fn multiplexing_degree(&self) -> f64 {
        star_queueing::multiplexing_degree(&self.probabilities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(6, 0), 1.0);
        assert_eq!(binomial(6, 6), 1.0);
        assert_eq!(binomial(6, 2), 15.0);
        assert_eq!(binomial(12, 5), 792.0);
        assert_eq!(binomial(4, 7), 0.0);
    }

    #[test]
    fn zero_load_never_blocks() {
        let occ = ChannelOccupancy::new(0.0, 40.0, 6);
        for a in 1..=6 {
            assert_eq!(occ.prob_all_busy(a), 0.0, "no channel is busy at zero load");
        }
        assert_eq!(occ.multiplexing_degree(), 1.0);
    }

    #[test]
    fn saturation_always_blocks() {
        // rate * service >= 1 concentrates all mass on "all V busy"
        let occ = ChannelOccupancy::new(0.05, 40.0, 6);
        for a in 1..=6 {
            assert!((occ.prob_all_busy(a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn blocking_decreases_with_more_selectable_channels() {
        let occ = ChannelOccupancy::new(0.004, 60.0, 9);
        let mut last = 1.1;
        for a in 1..=9 {
            let p = occ.prob_all_busy(a);
            assert!(p < last, "more admissible channels must not increase blocking");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn needing_every_channel_equals_full_occupancy_probability() {
        let occ = ChannelOccupancy::new(0.006, 50.0, 6);
        let p_full = occ.probabilities()[6];
        assert!((occ.prob_all_busy(6) - p_full).abs() < 1e-12);
    }

    #[test]
    fn single_channel_probability_is_expected_busy_fraction() {
        // With a = 1 the probability that "my one channel is busy" equals
        // E[v]/V by symmetry.
        let occ = ChannelOccupancy::new(0.005, 70.0, 8);
        let expected: f64 =
            occ.probabilities().iter().enumerate().map(|(v, &p)| v as f64 * p).sum::<f64>() / 8.0;
        assert!((occ.prob_all_busy(1) - expected).abs() < 1e-12);
    }

    #[test]
    fn guards_for_degenerate_arguments() {
        let occ = ChannelOccupancy::new(0.004, 40.0, 6);
        assert_eq!(occ.prob_all_busy(0), 1.0);
        assert_eq!(occ.prob_all_busy(7), 0.0);
    }

    mod prop {
        use super::*;

        #[test]
        fn all_busy_probability_is_monotone_in_load() {
            for v in 2usize..=12 {
                for a in 1usize..=6 {
                    let a = a.min(v);
                    for &s in &[10.0f64, 40.0, 111.0, 200.0] {
                        for i in 0..10 {
                            let rho1 = 0.05 + 0.45 * f64::from(i) / 10.0;
                            let rho2 = rho1 + 0.3;
                            let low = ChannelOccupancy::new(rho1 / s, s, v).prob_all_busy(a);
                            let high = ChannelOccupancy::new(rho2 / s, s, v).prob_all_busy(a);
                            assert!(
                                high >= low - 1e-12,
                                "v={v}, a={a}, s={s}: P({rho2})={high} < P({rho1})={low}"
                            );
                        }
                    }
                }
            }
        }
    }
}
