//! Waiting times at the network channels and at the source queue
//! (Eqs. 12-16).
//!
//! Both are M/G/1 queues whose service time is approximated by the mean
//! network latency `S̄`, with the service-time variance approximated as
//! `(S̄ − M)²` (the minimum possible service time of a channel is the message
//! length `M`).  The source queue sees the generation rate divided by the
//! number of virtual channels, `λ_g / V`, because a newly generated message
//! can be assigned to any of the `V` injection virtual channels.
//!
//! **Topology split:** fully topology-agnostic — the queues only see rates
//! and service times; which network produced them never enters Eqs. 12-16.
//! Both the star and the hypercube model call these functions unchanged.

use star_queueing::mg1::mg1_waiting_time_min_service;

/// Mean waiting time `w̄` a blocked message spends waiting to acquire a
/// virtual channel at a network channel (Eq. 15).
///
/// Returns `f64::INFINITY` when the channel is saturated (`λ_c · S̄ ≥ 1`).
#[must_use]
pub fn channel_waiting_time(channel_rate: f64, mean_service: f64, message_length: usize) -> f64 {
    // The approximation can momentarily produce S̄ < M during the fixed-point
    // iteration warm-up; clamp the minimum service time to keep the variance
    // approximation well defined.
    let min_service = (message_length as f64).min(mean_service);
    mg1_waiting_time_min_service(channel_rate, mean_service, min_service)
}

/// Mean waiting time `W_s` a message spends in the source queue before
/// entering the network (Eq. 16).
///
/// Returns `f64::INFINITY` when the injection queue is saturated.
#[must_use]
pub fn source_waiting_time(
    generation_rate: f64,
    virtual_channels: usize,
    mean_service: f64,
    message_length: usize,
) -> f64 {
    assert!(virtual_channels >= 1, "need at least one virtual channel");
    let arrival = generation_rate / virtual_channels as f64;
    let min_service = (message_length as f64).min(mean_service);
    mg1_waiting_time_min_service(arrival, mean_service, min_service)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_waits_are_zero() {
        assert_eq!(channel_waiting_time(0.0, 40.0, 32), 0.0);
        assert_eq!(source_waiting_time(0.0, 6, 40.0, 32), 0.0);
    }

    #[test]
    fn channel_wait_grows_with_rate_and_service() {
        let w1 = channel_waiting_time(0.002, 40.0, 32);
        let w2 = channel_waiting_time(0.004, 40.0, 32);
        let w3 = channel_waiting_time(0.004, 60.0, 32);
        assert!(w2 > w1);
        assert!(w3 > w2);
    }

    #[test]
    fn source_wait_shrinks_with_more_virtual_channels() {
        let w6 = source_waiting_time(0.01, 6, 50.0, 32);
        let w12 = source_waiting_time(0.01, 12, 50.0, 32);
        assert!(w12 < w6);
        assert!(w12 > 0.0);
    }

    #[test]
    fn saturation_returns_infinity() {
        assert!(channel_waiting_time(0.05, 40.0, 32).is_infinite());
        assert!(source_waiting_time(0.2, 4, 40.0, 32).is_infinite());
    }

    #[test]
    fn clamped_minimum_service_keeps_wait_finite_during_warm_up() {
        // During the first fixed-point iterations S̄ can be initialised below
        // M; the clamp prevents a panic and yields the M/D/1 form.
        let w = channel_waiting_time(0.004, 20.0, 32);
        assert!(w.is_finite());
        assert!(w >= 0.0);
    }

    #[test]
    fn source_wait_below_channel_wait_at_same_rate() {
        // The source queue sees λ_g / V, so for the same service time it waits
        // less than a network channel seeing the full λ_c ≈ λ_g·d̄/(n−1).
        let s = 70.0;
        let channel = channel_waiting_time(0.01 * 3.77 / 4.0, s, 32);
        let source = source_waiting_time(0.01, 6, s, 32);
        assert!(source < channel);
    }
}
