//! The destination spectrum: everything the model needs to know about the
//! possible destinations of a message, aggregated by permutation cycle type.
//!
//! Under uniform traffic, the paper fixes the source at the identity
//! permutation (node 0) and averages the network latency over the `n! − 1`
//! possible destinations (Eq. 5).  Two destinations whose *relative*
//! permutations have the same cycle type are indistinguishable to the model:
//! they are at the same distance, have the same number of minimal paths and
//! the same per-hop adaptivity distribution `f(i, j, k)`.  The model therefore
//! enumerates cycle types (a few dozen for `S5`-`S9`) instead of all `n! − 1`
//! destinations, which is what keeps it cheap enough to evaluate far beyond
//! the sizes a flit-level simulator can handle.
//!
//! **Topology split:** this module is the star-specific half of the spectrum
//! stage — permutation cycle types and minimal-path DAGs only make sense on
//! `S_n`.  The hypercube analogue is [`crate::HypercubeSpectrum`], whose
//! populations come from the binomial distribution of Hamming distances and
//! whose per-hop adaptivity is the closed form `h − k`; everything downstream
//! of the spectrum ([`crate::blocking`], [`crate::waiting`],
//! [`crate::occupancy`]) consumes either spectrum through the same
//! [`AdaptivityProfile`] interface.

use serde::{Deserialize, Serialize};
use star_graph::path::MinimalPathDag;
use star_graph::{AdaptivityProfile, CycleType};

/// One class of destinations (a cycle type) together with how many
/// destinations belong to it.
#[derive(Debug, Clone)]
pub struct DestinationClass {
    /// The cycle type of the destination relative to the source.
    pub cycle_type: CycleType,
    /// Number of destinations of this type.
    pub count: u64,
    /// Distance from the source.
    pub distance: usize,
    /// Per-hop adaptivity distribution over all minimal paths.
    pub profile: AdaptivityProfile,
}

/// The full spectrum of destination classes of `S_n`, excluding the source
/// itself.
#[derive(Debug, Clone)]
pub struct DestinationSpectrum {
    symbols: usize,
    classes: Vec<DestinationClass>,
}

/// Summary statistics of a spectrum that are cheap to serialise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumSummary {
    /// Number of symbols `n`.
    pub symbols: usize,
    /// Number of destination classes.
    pub classes: usize,
    /// Total number of destinations covered.
    pub destinations: u64,
    /// Mean distance over all destinations.
    pub mean_distance: f64,
}

impl DestinationSpectrum {
    /// Builds the spectrum for `S_n`.
    ///
    /// # Panics
    /// Panics if `n` is outside the supported range of the underlying
    /// permutation machinery.
    #[must_use]
    pub fn new(symbols: usize) -> Self {
        Self::with_threads(symbols, 1)
    }

    /// Builds the spectrum for `S_n`, sharding the per-cycle-type path-DAG
    /// construction — the expensive part of a large-`n` spectrum, and
    /// embarrassingly parallel — across the shared [`star_exec::ExecPool`]
    /// (`1` = serial, `0` = all pool workers, anything else caps the
    /// executors).  Each class is built identically wherever it runs and
    /// the classes are sorted afterwards, so the result is identical for
    /// any width.
    ///
    /// # Panics
    /// As [`Self::new`].
    #[must_use]
    pub fn with_threads(symbols: usize, threads: usize) -> Self {
        let types: Vec<(CycleType, u64)> = star_graph::distance::enumerate_types(symbols)
            .into_iter()
            .filter(|(cycle_type, _)| !cycle_type.cycle_lengths.is_empty()) // skip the source
            .collect();
        let mut classes =
            star_exec::ExecPool::global_ordered(threads, &types, |_, (cycle_type, count)| {
                let representative = cycle_type.representative(symbols);
                let dag = MinimalPathDag::build(&representative);
                let profile = dag.adaptivity_profile();
                debug_assert_eq!(profile.distance, cycle_type.distance());
                DestinationClass {
                    distance: profile.distance,
                    cycle_type: cycle_type.clone(),
                    count: *count,
                    profile,
                }
            });
        classes.sort_by_key(|c| (c.distance, c.cycle_type.cycle_lengths.clone()));
        Self { symbols, classes }
    }

    /// Number of symbols `n`.
    #[must_use]
    pub fn symbols(&self) -> usize {
        self.symbols
    }

    /// The destination classes, sorted by distance.
    #[must_use]
    pub fn classes(&self) -> &[DestinationClass] {
        &self.classes
    }

    /// Total number of destinations (must be `n! − 1`).
    #[must_use]
    pub fn destination_count(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Mean distance over all destinations (the `d̄` of Eq. 2).
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        let weighted: f64 = self.classes.iter().map(|c| c.distance as f64 * c.count as f64).sum();
        weighted / self.destination_count() as f64
    }

    /// Mean adaptivity offered to a header over all destinations and hops
    /// (a coarse measure of how much choice fully adaptive routing has).
    #[must_use]
    pub fn mean_adaptivity(&self) -> f64 {
        let mut weighted = 0.0;
        let mut hops = 0.0;
        for class in &self.classes {
            for k in 0..class.distance {
                weighted += class.profile.mean_adaptivity(k) * class.count as f64;
                hops += class.count as f64;
            }
        }
        weighted / hops
    }

    /// Cheap summary of the spectrum.
    #[must_use]
    pub fn summary(&self) -> SpectrumSummary {
        SpectrumSummary {
            symbols: self.symbols,
            classes: self.classes.len(),
            destinations: self.destination_count(),
            mean_distance: self.mean_distance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{factorial, StarGraph, Topology};

    #[test]
    fn covers_all_destinations() {
        for n in 3..=6 {
            let spectrum = DestinationSpectrum::new(n);
            assert_eq!(spectrum.destination_count(), factorial(n) - 1);
            assert_eq!(spectrum.symbols(), n);
        }
    }

    #[test]
    fn mean_distance_matches_topology() {
        for n in 3..=6 {
            let spectrum = DestinationSpectrum::new(n);
            let topo = StarGraph::new(n);
            assert!(
                (spectrum.mean_distance() - topo.mean_distance()).abs() < 1e-12,
                "spectrum mean distance must equal the topology's"
            );
        }
    }

    #[test]
    fn class_distances_and_profiles_are_consistent() {
        let spectrum = DestinationSpectrum::new(5);
        for class in spectrum.classes() {
            assert_eq!(class.profile.distance, class.distance);
            assert_eq!(class.profile.hop_adaptivity.len(), class.distance);
            assert!(class.count > 0);
            // first hop adaptivity can never exceed the degree
            assert!(class.profile.mean_adaptivity(0) <= 4.0);
            // last hop of any minimal path is forced
            let last = &class.profile.hop_adaptivity[class.distance - 1];
            assert_eq!(last, &vec![(1, 1.0)]);
        }
    }

    #[test]
    fn s5_has_expected_class_count_and_diameter_classes() {
        let spectrum = DestinationSpectrum::new(5);
        // S5 distance distribution: [1, 4, 12, 30, 44, 26, 3]
        let max_distance = spectrum.classes().iter().map(|c| c.distance).max().unwrap();
        assert_eq!(max_distance, 6);
        let at_diameter: u64 =
            spectrum.classes().iter().filter(|c| c.distance == 6).map(|c| c.count).sum();
        assert_eq!(at_diameter, 3);
        let at_one: u64 =
            spectrum.classes().iter().filter(|c| c.distance == 1).map(|c| c.count).sum();
        assert_eq!(at_one, 4);
    }

    #[test]
    fn mean_adaptivity_is_between_one_and_degree() {
        for n in 4..=6 {
            let spectrum = DestinationSpectrum::new(n);
            let mean = spectrum.mean_adaptivity();
            assert!(mean >= 1.0);
            assert!(mean <= (n - 1) as f64);
        }
    }

    #[test]
    fn threaded_spectrum_construction_matches_serial() {
        for threads in [0usize, 2, 3, 8] {
            let serial = DestinationSpectrum::new(6);
            let threaded = DestinationSpectrum::with_threads(6, threads);
            assert_eq!(serial.classes().len(), threaded.classes().len());
            for (a, b) in serial.classes().iter().zip(threaded.classes()) {
                assert_eq!(a.cycle_type, b.cycle_type, "threads = {threads}");
                assert_eq!(a.count, b.count);
                assert_eq!(a.distance, b.distance);
                assert_eq!(a.profile.hop_adaptivity, b.profile.hop_adaptivity);
            }
        }
    }

    #[test]
    fn summary_reports_the_same_numbers() {
        let spectrum = DestinationSpectrum::new(5);
        let s = spectrum.summary();
        assert_eq!(s.symbols, 5);
        assert_eq!(s.destinations, 119);
        assert_eq!(s.classes, spectrum.classes().len());
        assert!((s.mean_distance - spectrum.mean_distance()).abs() < 1e-15);
    }
}
