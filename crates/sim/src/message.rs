//! Messages and their lifecycle bookkeeping.

use serde::{Deserialize, Serialize};
use star_graph::NodeId;
use star_routing::MessageRoutingState;

/// Dense message identifier.
pub type MessageId = u64;

/// A message in flight (or waiting in a source queue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message {
    /// Identifier, unique within a simulation run.
    pub id: MessageId,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Length in flits.
    pub length: usize,
    /// Cycle at which the message was generated (entered the source queue).
    pub generated_at: u64,
    /// Cycle at which the header left the source queue and started competing
    /// for its first network channel (`None` while still queued).
    pub injected_at: Option<u64>,
    /// Cycle at which the last flit was consumed at the destination.
    pub delivered_at: Option<u64>,
    /// Routing state (hops taken, negative hops, escape-level floor).
    pub routing: MessageRoutingState,
    /// Whether this message was generated inside the measurement window.
    pub measured: bool,
    /// Flits already consumed at the destination.
    pub flits_consumed: usize,
}

impl Message {
    /// Creates a freshly generated message.
    #[must_use]
    pub fn new(
        id: MessageId,
        source: NodeId,
        dest: NodeId,
        length: usize,
        generated_at: u64,
        measured: bool,
    ) -> Self {
        Self {
            id,
            source,
            dest,
            length,
            generated_at,
            injected_at: None,
            delivered_at: None,
            routing: MessageRoutingState::at_source(),
            measured,
            flits_consumed: 0,
        }
    }

    /// Total latency in cycles (generation → last flit consumed), if delivered.
    #[must_use]
    pub fn total_latency(&self) -> Option<u64> {
        self.delivered_at.map(|d| d - self.generated_at)
    }

    /// Network latency in cycles (injection → last flit consumed), if delivered.
    #[must_use]
    pub fn network_latency(&self) -> Option<u64> {
        match (self.injected_at, self.delivered_at) {
            (Some(i), Some(d)) => Some(d - i),
            _ => None,
        }
    }

    /// Time spent waiting in the source queue, if the message was injected.
    #[must_use]
    pub fn source_queueing(&self) -> Option<u64> {
        self.injected_at.map(|i| i - self.generated_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accessors() {
        let mut m = Message::new(1, 0, 5, 32, 100, true);
        assert_eq!(m.total_latency(), None);
        assert_eq!(m.network_latency(), None);
        assert_eq!(m.source_queueing(), None);
        m.injected_at = Some(110);
        m.delivered_at = Some(180);
        assert_eq!(m.total_latency(), Some(80));
        assert_eq!(m.network_latency(), Some(70));
        assert_eq!(m.source_queueing(), Some(10));
    }
}
