//! Messages and their lifecycle bookkeeping.

use serde::{Deserialize, Serialize};
use star_graph::NodeId;
use star_routing::MessageRoutingState;

/// Dense message identifier.
pub type MessageId = u64;

/// A message in flight (or waiting in a source queue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message {
    /// Identifier, unique within a simulation run.
    pub id: MessageId,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Length in flits.
    pub length: usize,
    /// Cycle at which the message was generated (entered the source queue).
    pub generated_at: u64,
    /// Cycle at which the header left the source queue and started competing
    /// for its first network channel (`None` while still queued).
    pub injected_at: Option<u64>,
    /// Cycle at which the last flit was consumed at the destination.
    pub delivered_at: Option<u64>,
    /// Routing state (hops taken, negative hops, escape-level floor).
    pub routing: MessageRoutingState,
    /// Whether this message was generated inside the measurement window.
    pub measured: bool,
    /// Flits already consumed at the destination.
    pub flits_consumed: usize,
}

impl Message {
    /// Creates a freshly generated message.
    #[must_use]
    pub fn new(
        id: MessageId,
        source: NodeId,
        dest: NodeId,
        length: usize,
        generated_at: u64,
        measured: bool,
    ) -> Self {
        Self {
            id,
            source,
            dest,
            length,
            generated_at,
            injected_at: None,
            delivered_at: None,
            routing: MessageRoutingState::at_source(),
            measured,
            flits_consumed: 0,
        }
    }

    /// Total latency in cycles (generation → last flit consumed), if delivered.
    #[must_use]
    pub fn total_latency(&self) -> Option<u64> {
        self.delivered_at.map(|d| d - self.generated_at)
    }

    /// Network latency in cycles (injection → last flit consumed), if delivered.
    #[must_use]
    pub fn network_latency(&self) -> Option<u64> {
        match (self.injected_at, self.delivered_at) {
            (Some(i), Some(d)) => Some(d - i),
            _ => None,
        }
    }

    /// Time spent waiting in the source queue, if the message was injected.
    #[must_use]
    pub fn source_queueing(&self) -> Option<u64> {
        self.injected_at.map(|i| i - self.generated_at)
    }
}

/// A dense, slot-indexed store of in-flight messages: the event-driven
/// engine's replacement for the ticking engine's `HashMap<MessageId,
/// Message>`.
///
/// Channel state references messages by `u32` slot, so every lookup on the
/// hot path is one bounds-checked vector index instead of a hash probe.
/// Slots of delivered messages are recycled LIFO; recycling never affects
/// simulation results because nothing iterates the store — all traversal
/// order comes from the channel tables.
#[derive(Debug, Clone, Default)]
pub struct MessageStore {
    slots: Vec<Option<Message>>,
    free: Vec<u32>,
    live: usize,
}

impl MessageStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no message is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a message, returning its slot.
    pub fn insert(&mut self, message: Message) -> u32 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            debug_assert!(self.slots[slot as usize].is_none());
            self.slots[slot as usize] = Some(message);
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX live messages");
            self.slots.push(Some(message));
            slot
        }
    }

    /// The message in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is vacant (a freed slot is never a valid handle).
    #[must_use]
    pub fn get(&self, slot: u32) -> &Message {
        self.slots[slot as usize].as_ref().expect("live message slot")
    }

    /// Mutable access to the message in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is vacant.
    pub fn get_mut(&mut self, slot: u32) -> &mut Message {
        self.slots[slot as usize].as_mut().expect("live message slot")
    }

    /// Removes and returns the message in `slot`, recycling the slot.
    ///
    /// # Panics
    /// Panics if the slot is vacant.
    pub fn remove(&mut self, slot: u32) -> Message {
        let message = self.slots[slot as usize].take().expect("live message slot");
        self.free.push(slot);
        self.live -= 1;
        message
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accessors() {
        let mut m = Message::new(1, 0, 5, 32, 100, true);
        assert_eq!(m.total_latency(), None);
        assert_eq!(m.network_latency(), None);
        assert_eq!(m.source_queueing(), None);
        m.injected_at = Some(110);
        m.delivered_at = Some(180);
        assert_eq!(m.total_latency(), Some(80));
        assert_eq!(m.network_latency(), Some(70));
        assert_eq!(m.source_queueing(), Some(10));
    }

    #[test]
    fn store_recycles_slots_and_tracks_len() {
        let mut store = MessageStore::new();
        assert!(store.is_empty());
        let a = store.insert(Message::new(0, 0, 1, 8, 0, false));
        let b = store.insert(Message::new(1, 2, 3, 8, 0, false));
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(b).id, 1);
        store.get_mut(a).flits_consumed = 3;
        assert_eq!(store.get(a).flits_consumed, 3);
        let removed = store.remove(a);
        assert_eq!(removed.id, 0);
        assert_eq!(store.len(), 1);
        // freed slots are reused before the vector grows
        let c = store.insert(Message::new(2, 4, 5, 8, 0, true));
        assert_eq!(c, a);
        assert_eq!(store.get(c).id, 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    #[should_panic(expected = "live message slot")]
    fn store_rejects_vacant_slots() {
        let mut store = MessageStore::new();
        let slot = store.insert(Message::new(0, 0, 1, 8, 0, false));
        let _ = store.remove(slot);
        let _ = store.get(slot);
    }
}
