//! Multi-seed replicate execution: the same operating point simulated R
//! times with independently derived seeds.
//!
//! A single simulation run anchors every measurement to one arbitrary RNG
//! stream; the paper-style validation ("model within x% of simulation")
//! becomes statistically meaningful only when the simulated side is a mean
//! over independent replications with a confidence interval.  A
//! [`ReplicateRun`] owns that fan-out:
//!
//! * replicate `i` runs with the seed
//!   [`star_queueing::replicate_seed`]`(seed_base, i)` — a deterministic,
//!   platform-independent derivation, so replicate `i` is the same
//!   simulation in every process that ever evaluates it;
//! * every replicate performs its own warm-up truncation (the configured
//!   `warmup_cycles` apply per replicate, not once for the batch), so each
//!   contributes one steady-state observation;
//! * the results fold into a [`ReplicateReport`]
//!   (via [`ReplicateReport::from_runs`]) carrying the across-replicate mean
//!   and Student-t 95% confidence interval of each headline quantity.
//!
//! Replicates are mutually independent, so callers that want parallelism
//! (the sweep-running layer) can execute [`ReplicateRun::run_replicate`] for
//! each index on any worker and reassemble by index; [`ReplicateRun::run`]
//! is the sequential convenience form and [`ReplicateRun::run_parallel`]
//! fans the indices across the shared [`star_exec::ExecPool`] with a
//! byte-identical index-order fold for any width.

use std::sync::Arc;

use star_exec::ExecPool;
use star_graph::Topology;
use star_queueing::replicate_seed;
use star_routing::RoutingAlgorithm;

use crate::config::SimConfig;
use crate::metrics::{ReplicateReport, SimReport};
use crate::sim::Simulation;
use crate::traffic::TrafficPattern;

/// R independently seeded replications of one simulation experiment.
///
/// The `seed` field of the base [`SimConfig`] acts as the **seed base**: no
/// replicate runs with it directly, every replicate derives its own seed
/// from it.  One replicate (`replicates == 1`) is still a derived seed —
/// there is no special single-seed path.
#[derive(Clone)]
pub struct ReplicateRun {
    topology: Arc<dyn Topology>,
    routing: Arc<dyn RoutingAlgorithm>,
    base: SimConfig,
    pattern: TrafficPattern,
    replicates: usize,
}

impl ReplicateRun {
    /// Builds the replicate fan-out for a topology, routing algorithm, base
    /// configuration (whose `seed` is the seed base) and traffic pattern.
    ///
    /// # Panics
    /// Panics if `replicates` is zero.
    #[must_use]
    pub fn new(
        topology: Arc<dyn Topology>,
        routing: Arc<dyn RoutingAlgorithm>,
        base: SimConfig,
        pattern: TrafficPattern,
        replicates: usize,
    ) -> Self {
        assert!(replicates >= 1, "need at least one replicate");
        Self { topology, routing, base, pattern, replicates }
    }

    /// Number of replicates this run fans out to.
    #[must_use]
    pub fn replicates(&self) -> usize {
        self.replicates
    }

    /// The seed base replicate seeds are derived from.
    #[must_use]
    pub fn seed_base(&self) -> u64 {
        self.base.seed
    }

    /// Runs one replicate (any index, not just `0..replicates`): the base
    /// configuration with the seed derived for that index, including the
    /// replicate's own warm-up phase.
    #[must_use]
    pub fn run_replicate(&self, replicate: u64) -> SimReport {
        let config =
            SimConfig { seed: replicate_seed(self.base.seed, replicate), ..self.base.clone() };
        Simulation::new(Arc::clone(&self.topology), Arc::clone(&self.routing), config, self.pattern)
            .run()
    }

    /// Runs all replicates sequentially, in index order, and folds them into
    /// the across-replicate report.
    #[must_use]
    pub fn run(&self) -> ReplicateReport {
        let runs = (0..self.replicates as u64).map(|i| self.run_replicate(i)).collect();
        ReplicateReport::from_runs(runs)
    }

    /// Runs all replicates fanned across the shared [`ExecPool`] with up to
    /// `width` executors (`0` means all pool workers) and folds them in
    /// index order.
    ///
    /// Byte-identical to [`Self::run`] for any width: replicates are seeded
    /// independently, executed without shared mutable state, reassembled by
    /// index, and folded in the same order as the sequential form — the
    /// [`ExecPool`] determinism contract does the rest.  `width == 1`
    /// executes inline on the calling thread without waking the pool.
    #[must_use]
    pub fn run_parallel(&self, width: usize) -> ReplicateReport {
        let indices: Vec<u64> = (0..self.replicates as u64).collect();
        let runs = ExecPool::global_ordered(width, &indices, |_worker, &i| self.run_replicate(i));
        ReplicateReport::from_runs(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::StarGraph;
    use star_routing::EnhancedNbc;

    fn s4_run(rate: f64, seed_base: u64, replicates: usize) -> ReplicateRun {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let config = SimConfig::builder()
            .message_length(8)
            .traffic_rate(rate)
            .warmup_cycles(1_000)
            .measured_messages(1_500)
            .max_cycles(300_000)
            .seed(seed_base)
            .build();
        ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, replicates)
    }

    #[test]
    fn replicates_are_independent_and_deterministic() {
        let run = s4_run(0.004, 9, 3);
        let a = run.run();
        let b = run.run();
        assert_eq!(a, b, "the same seed base must reproduce the same replicate set");
        assert_eq!(a.replicates(), 3);
        assert!(!a.saturated && !a.deadlock_detected);
        // different seeds produce genuinely different streams
        assert_ne!(a.runs[0].mean_message_latency, a.runs[1].mean_message_latency);
        assert_ne!(a.runs[1].mean_message_latency, a.runs[2].mean_message_latency);
        // each replicate measured its own steady-state window
        assert!(a.runs.iter().all(|r| r.measured_messages >= 1_500));
    }

    #[test]
    fn aggregate_matches_manual_fold_of_the_replicate_means() {
        let run = s4_run(0.006, 21, 4);
        let report = run.run();
        let means: Vec<f64> = report.runs.iter().map(|r| r.mean_message_latency).collect();
        let expected = star_queueing::ReplicateStats::from_samples(&means);
        assert_eq!(report.latency, expected);
        assert!(report.latency.ci95 > 0.0, "4 distinct replicates must yield a real interval");
        assert!(report.latency.relative_ci95() < 0.25, "replicate means should agree loosely");
        assert!((report.mean_message_latency() - report.latency.mean).abs() < 1e-12);
    }

    #[test]
    fn replicate_indices_reassemble_to_the_sequential_fold() {
        // the property the parallel sweep layer relies on: running replicate
        // indices independently (any scheduling) and folding by index equals
        // the sequential run
        let run = s4_run(0.004, 77, 3);
        let scattered: Vec<SimReport> = [2u64, 0, 1]
            .iter()
            .map(|&i| (i, run.run_replicate(i)))
            .collect::<Vec<_>>()
            .into_iter()
            .fold(vec![None, None, None], |mut acc, (i, r)| {
                acc[i as usize] = Some(r);
                acc
            })
            .into_iter()
            .map(Option::unwrap)
            .collect();
        assert_eq!(ReplicateReport::from_runs(scattered), run.run());
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential_for_any_width() {
        let run = s4_run(0.006, 55, 3);
        let sequential = run.run();
        for width in [0, 1, 2, 8] {
            assert_eq!(
                run.run_parallel(width),
                sequential,
                "width {width} must reproduce the sequential fold byte for byte"
            );
        }
    }

    #[test]
    fn saturated_replicates_flag_the_aggregate() {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let config = SimConfig::builder()
            .message_length(16)
            .traffic_rate(0.2)
            .warmup_cycles(1_000)
            .measured_messages(50_000)
            .max_cycles(60_000)
            .saturation_queue_limit(100)
            .seed(3)
            .build();
        let run = ReplicateRun::new(topology, routing, config, TrafficPattern::Uniform, 2);
        let report = run.run();
        assert!(report.saturated);
        assert!(!report.deadlock_detected);
        // no finite steady-state observation survives
        assert_eq!(report.latency.replicates, 0);
        assert_eq!(report.latency.ci95, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = s4_run(0.004, 1, 0);
    }
}
