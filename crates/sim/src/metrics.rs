//! Simulation output: the measured quantities the paper's Section 5 defines,
//! for one run ([`SimReport`]) and across independently seeded replications
//! of the same run ([`ReplicateReport`]).
//!
//! The split of responsibilities with [`crate::sim`]: the driver owns the
//! cycle loop (warm-up, saturation and deadlock detection), this module owns
//! turning accumulated measurements into reports —
//! [`MeasurementAccumulator::into_report`] finalises one run, and
//! [`ReplicateReport::from_runs`] folds R runs into across-replicate means
//! with Student-t 95% confidence intervals.

use serde::{Deserialize, Serialize};
use star_queueing::{ReplicateStats, RunningStats};

use crate::config::SimConfig;
use crate::network::{NetworkCounters, StageSkips};

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Topology name (e.g. `"S5"`).
    pub topology: String,
    /// Routing algorithm name.
    pub routing: String,
    /// Offered traffic rate `λ_g` (messages/node/cycle).
    pub offered_rate: f64,
    /// Message length in flits.
    pub message_length: usize,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Whether the run was declared saturated (queues grew beyond the limit or
    /// the cycle budget was exhausted before enough messages were measured).
    pub saturated: bool,
    /// Whether the deadlock watchdog fired (must never happen for the
    /// deadlock-free algorithms in this workspace).
    pub deadlock_detected: bool,
    /// Cycles simulated.
    pub cycles: u64,
    /// Measured messages delivered.
    pub measured_messages: u64,
    /// Mean message latency (generation → last flit consumed), in cycles.
    pub mean_message_latency: f64,
    /// 95% confidence half-width of the mean message latency.
    pub latency_ci95: f64,
    /// Mean network latency (injection → last flit consumed), in cycles.
    pub mean_network_latency: f64,
    /// Mean time spent waiting in the source queue, in cycles.
    pub mean_source_queueing: f64,
    /// Mean hops taken by measured messages.
    pub mean_hops: f64,
    /// Accepted traffic (measured messages delivered per node per cycle).
    pub accepted_rate: f64,
    /// Mean utilisation of the network channels (flit transfers per channel
    /// per cycle over the whole run).
    pub channel_utilization: f64,
    /// Total flit transfers on network channels over the whole run — the raw
    /// count behind [`Self::channel_utilization`], kept as its own field so
    /// throughput benchmarks can report flits/sec and the equivalence suite
    /// can pin engines flit for flit.
    pub flit_transfers: u64,
    /// Observed average degree of virtual-channel multiplexing
    /// (`Σ v² / Σ v` over sampled busy-VC counts).
    pub observed_multiplexing: f64,
    /// Fraction of header allocation attempts that found every admissible
    /// virtual channel busy.
    pub blocking_probability: f64,
    /// Cycles in which at least one pipeline stage had work.  Fully idle
    /// cycles (which the event engine fast-forwards over) are excluded, so
    /// the field is engine-independent like everything else in the report.
    pub active_cycles: u64,
    /// Per-stage skip counts over the active cycles: how often each pipeline
    /// stage started with an empty work set.  `active_cycles − skips[stage]`
    /// is the number of cycles the stage actually ran — the per-stage cost
    /// breakdown `sim-bench` reports.
    pub stage_skips: StageSkips,
}

impl SimReport {
    /// A CSV header matching [`Self::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> String {
        "topology,routing,offered_rate,message_length,virtual_channels,saturated,cycles,\
         measured_messages,mean_message_latency,latency_ci95,mean_network_latency,\
         mean_source_queueing,mean_hops,accepted_rate,channel_utilization,\
         observed_multiplexing,blocking_probability"
            .to_string()
    }

    /// The report as one CSV row.
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.6},{:.4},{:.4},{:.6}",
            self.topology,
            self.routing,
            self.offered_rate,
            self.message_length,
            self.virtual_channels,
            self.saturated,
            self.cycles,
            self.measured_messages,
            self.mean_message_latency,
            self.latency_ci95,
            self.mean_network_latency,
            self.mean_source_queueing,
            self.mean_hops,
            self.accepted_rate,
            self.channel_utilization,
            self.observed_multiplexing,
            self.blocking_probability,
        )
    }
}

/// The identity of the experiment a report describes: what was simulated,
/// independent of how the run went.
#[derive(Debug, Clone)]
pub struct RunIdentity {
    /// Topology name (e.g. `"S5"`).
    pub topology: String,
    /// Routing algorithm name.
    pub routing: String,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Number of nodes.
    pub node_count: usize,
    /// Number of network channels.
    pub channel_count: usize,
}

/// What the simulation driver observed over one run beyond the per-message
/// measurements: termination flags and cycle counts.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Whether the run was declared saturated.
    pub saturated: bool,
    /// Whether the deadlock watchdog fired.
    pub deadlock_detected: bool,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles inside the measurement window.
    pub measurement_cycles: u64,
    /// Observed average degree of virtual-channel multiplexing.
    pub observed_multiplexing: f64,
}

/// The results of R independently seeded replications of one operating
/// point: the per-replicate reports plus across-replicate means and
/// Student-t 95% confidence intervals of the headline quantities.
///
/// A point is `saturated` as soon as **any** replicate saturates — the
/// conservative rule that keeps the flag deterministic regardless of how the
/// replicates were scheduled — and the statistics then summarise only the
/// replicates that produced a finite measurement (possibly none).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicateReport {
    /// The per-replicate reports, in replicate-index order.
    pub runs: Vec<SimReport>,
    /// Whether any replicate was declared saturated.
    pub saturated: bool,
    /// Whether any replicate tripped the deadlock watchdog.
    pub deadlock_detected: bool,
    /// Across-replicate statistics of the mean message latency.
    pub latency: ReplicateStats,
    /// Across-replicate statistics of the mean network latency.
    pub network_latency: ReplicateStats,
    /// Across-replicate statistics of the accepted traffic rate.
    pub accepted_rate: ReplicateStats,
}

impl ReplicateReport {
    /// Folds per-replicate reports (in replicate-index order) into the
    /// across-replicate summary.  The fold is a pure function of the input
    /// order, so any scheduler that reassembles replicates by index gets
    /// byte-identical output.
    ///
    /// # Panics
    /// Panics when `runs` is empty: a point was evaluated, so at least one
    /// replicate must exist.
    #[must_use]
    pub fn from_runs(runs: Vec<SimReport>) -> Self {
        assert!(!runs.is_empty(), "a replicate report needs at least one run");
        let saturated = runs.iter().any(|r| r.saturated);
        let deadlock_detected = runs.iter().any(|r| r.deadlock_detected);
        // deadlocked runs also only have a truncated measurement window, so
        // their latencies are as unrepresentative as a saturated run's
        let finite = |f: fn(&SimReport) -> f64| -> Vec<f64> {
            runs.iter()
                .filter(|r| !r.saturated && !r.deadlock_detected)
                .map(f)
                .filter(|v| v.is_finite())
                .collect()
        };
        let latency = ReplicateStats::from_samples(&finite(|r| r.mean_message_latency));
        let network_latency = ReplicateStats::from_samples(&finite(|r| r.mean_network_latency));
        let accepted_rate = ReplicateStats::from_samples(&finite(|r| r.accepted_rate));
        Self { runs, saturated, deadlock_detected, latency, network_latency, accepted_rate }
    }

    /// Number of replicates the report aggregates.
    #[must_use]
    pub fn replicates(&self) -> usize {
        self.runs.len()
    }

    /// The first replicate's report (the canonical representative for
    /// quantities that do not vary across replicates, e.g. the topology
    /// name or the offered rate).
    #[must_use]
    pub fn first(&self) -> &SimReport {
        &self.runs[0]
    }

    /// Across-replicate mean message latency (0 when every replicate
    /// saturated; check [`Self::saturated`] first).
    #[must_use]
    pub fn mean_message_latency(&self) -> f64 {
        self.latency.mean
    }
}

/// Accumulates per-message observations during the measurement window.
#[derive(Debug, Clone, Default)]
pub struct MeasurementAccumulator {
    /// Total latency statistics.
    pub total_latency: RunningStats,
    /// Network latency statistics.
    pub network_latency: RunningStats,
    /// Source queueing statistics.
    pub source_queueing: RunningStats,
    /// Hop count statistics.
    pub hops: RunningStats,
}

impl MeasurementAccumulator {
    /// Records a delivered, measured message.
    pub fn record(&mut self, message: &crate::message::Message) {
        if let Some(l) = message.total_latency() {
            self.total_latency.push(l as f64);
        }
        if let Some(l) = message.network_latency() {
            self.network_latency.push(l as f64);
        }
        if let Some(q) = message.source_queueing() {
            self.source_queueing.push(q as f64);
        }
        self.hops.push(message.routing.hops_taken as f64);
    }

    /// Number of messages recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total_latency.count()
    }

    /// Finalises one run: derives the rate/utilisation quantities from the
    /// raw counters and packages everything as a [`SimReport`].  This is the
    /// metrics half of the per-point loop; the cycle-by-cycle half lives in
    /// [`crate::sim::Simulation::run`].
    #[must_use]
    pub fn into_report(
        self,
        identity: &RunIdentity,
        config: &SimConfig,
        counters: &NetworkCounters,
        outcome: RunOutcome,
    ) -> SimReport {
        let blocking_probability = if counters.header_allocation_attempts == 0 {
            0.0
        } else {
            counters.blocked_header_cycles as f64 / counters.header_allocation_attempts as f64
        };
        let channel_utilization = if outcome.cycles == 0 {
            0.0
        } else {
            counters.flit_transfers as f64 / (outcome.cycles as f64 * identity.channel_count as f64)
        };
        let accepted_rate = if outcome.measurement_cycles == 0 {
            0.0
        } else {
            self.count() as f64 / (outcome.measurement_cycles as f64 * identity.node_count as f64)
        };
        SimReport {
            topology: identity.topology.clone(),
            routing: identity.routing.clone(),
            offered_rate: config.traffic_rate,
            message_length: config.message_length,
            virtual_channels: identity.virtual_channels,
            saturated: outcome.saturated,
            deadlock_detected: outcome.deadlock_detected,
            cycles: outcome.cycles,
            measured_messages: self.count(),
            mean_message_latency: self.total_latency.mean(),
            latency_ci95: self.total_latency.confidence_95(),
            mean_network_latency: self.network_latency.mean(),
            mean_source_queueing: self.source_queueing.mean(),
            mean_hops: self.hops.mean(),
            accepted_rate,
            channel_utilization,
            flit_transfers: counters.flit_transfers,
            observed_multiplexing: outcome.observed_multiplexing,
            blocking_probability,
            active_cycles: counters.active_cycles,
            stage_skips: counters.stage_skips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn accumulator_records_all_quantities() {
        let mut acc = MeasurementAccumulator::default();
        let mut m = Message::new(0, 0, 3, 16, 100, true);
        m.injected_at = Some(105);
        m.delivered_at = Some(140);
        m.routing.hops_taken = 3;
        acc.record(&m);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.total_latency.mean(), 40.0);
        assert_eq!(acc.network_latency.mean(), 35.0);
        assert_eq!(acc.source_queueing.mean(), 5.0);
        assert_eq!(acc.hops.mean(), 3.0);
    }

    #[test]
    fn csv_row_has_same_field_count_as_header() {
        let report = SimReport {
            topology: "S5".into(),
            routing: "Enhanced-Nbc".into(),
            offered_rate: 0.004,
            message_length: 32,
            virtual_channels: 6,
            saturated: false,
            deadlock_detected: false,
            cycles: 100_000,
            measured_messages: 20_000,
            mean_message_latency: 75.0,
            latency_ci95: 1.5,
            mean_network_latency: 70.0,
            mean_source_queueing: 5.0,
            mean_hops: 3.7,
            accepted_rate: 0.004,
            channel_utilization: 0.3,
            flit_transfers: 1_000_000,
            observed_multiplexing: 1.8,
            blocking_probability: 0.05,
            active_cycles: 90_000,
            stage_skips: StageSkips::default(),
        };
        let header_fields = SimReport::csv_header().split(',').count();
        let row_fields = report.to_csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }
}
