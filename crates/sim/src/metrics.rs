//! Simulation output: the measured quantities the paper's Section 5 defines.

use serde::{Deserialize, Serialize};
use star_queueing::RunningStats;

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Topology name (e.g. `"S5"`).
    pub topology: String,
    /// Routing algorithm name.
    pub routing: String,
    /// Offered traffic rate `λ_g` (messages/node/cycle).
    pub offered_rate: f64,
    /// Message length in flits.
    pub message_length: usize,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Whether the run was declared saturated (queues grew beyond the limit or
    /// the cycle budget was exhausted before enough messages were measured).
    pub saturated: bool,
    /// Whether the deadlock watchdog fired (must never happen for the
    /// deadlock-free algorithms in this workspace).
    pub deadlock_detected: bool,
    /// Cycles simulated.
    pub cycles: u64,
    /// Measured messages delivered.
    pub measured_messages: u64,
    /// Mean message latency (generation → last flit consumed), in cycles.
    pub mean_message_latency: f64,
    /// 95% confidence half-width of the mean message latency.
    pub latency_ci95: f64,
    /// Mean network latency (injection → last flit consumed), in cycles.
    pub mean_network_latency: f64,
    /// Mean time spent waiting in the source queue, in cycles.
    pub mean_source_queueing: f64,
    /// Mean hops taken by measured messages.
    pub mean_hops: f64,
    /// Accepted traffic (measured messages delivered per node per cycle).
    pub accepted_rate: f64,
    /// Mean utilisation of the network channels (flit transfers per channel
    /// per cycle over the whole run).
    pub channel_utilization: f64,
    /// Observed average degree of virtual-channel multiplexing
    /// (`Σ v² / Σ v` over sampled busy-VC counts).
    pub observed_multiplexing: f64,
    /// Fraction of header allocation attempts that found every admissible
    /// virtual channel busy.
    pub blocking_probability: f64,
}

impl SimReport {
    /// A CSV header matching [`Self::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> String {
        "topology,routing,offered_rate,message_length,virtual_channels,saturated,cycles,\
         measured_messages,mean_message_latency,latency_ci95,mean_network_latency,\
         mean_source_queueing,mean_hops,accepted_rate,channel_utilization,\
         observed_multiplexing,blocking_probability"
            .to_string()
    }

    /// The report as one CSV row.
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.6},{:.4},{:.4},{:.6}",
            self.topology,
            self.routing,
            self.offered_rate,
            self.message_length,
            self.virtual_channels,
            self.saturated,
            self.cycles,
            self.measured_messages,
            self.mean_message_latency,
            self.latency_ci95,
            self.mean_network_latency,
            self.mean_source_queueing,
            self.mean_hops,
            self.accepted_rate,
            self.channel_utilization,
            self.observed_multiplexing,
            self.blocking_probability,
        )
    }
}

/// Accumulates per-message observations during the measurement window.
#[derive(Debug, Clone, Default)]
pub struct MeasurementAccumulator {
    /// Total latency statistics.
    pub total_latency: RunningStats,
    /// Network latency statistics.
    pub network_latency: RunningStats,
    /// Source queueing statistics.
    pub source_queueing: RunningStats,
    /// Hop count statistics.
    pub hops: RunningStats,
}

impl MeasurementAccumulator {
    /// Records a delivered, measured message.
    pub fn record(&mut self, message: &crate::message::Message) {
        if let Some(l) = message.total_latency() {
            self.total_latency.push(l as f64);
        }
        if let Some(l) = message.network_latency() {
            self.network_latency.push(l as f64);
        }
        if let Some(q) = message.source_queueing() {
            self.source_queueing.push(q as f64);
        }
        self.hops.push(message.routing.hops_taken as f64);
    }

    /// Number of messages recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total_latency.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn accumulator_records_all_quantities() {
        let mut acc = MeasurementAccumulator::default();
        let mut m = Message::new(0, 0, 3, 16, 100, true);
        m.injected_at = Some(105);
        m.delivered_at = Some(140);
        m.routing.hops_taken = 3;
        acc.record(&m);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.total_latency.mean(), 40.0);
        assert_eq!(acc.network_latency.mean(), 35.0);
        assert_eq!(acc.source_queueing.mean(), 5.0);
        assert_eq!(acc.hops.mean(), 3.0);
    }

    #[test]
    fn csv_row_has_same_field_count_as_header() {
        let report = SimReport {
            topology: "S5".into(),
            routing: "Enhanced-Nbc".into(),
            offered_rate: 0.004,
            message_length: 32,
            virtual_channels: 6,
            saturated: false,
            deadlock_detected: false,
            cycles: 100_000,
            measured_messages: 20_000,
            mean_message_latency: 75.0,
            latency_ci95: 1.5,
            mean_network_latency: 70.0,
            mean_source_queueing: 5.0,
            mean_hops: 3.7,
            accepted_rate: 0.004,
            channel_utilization: 0.3,
            observed_multiplexing: 1.8,
            blocking_probability: 0.05,
        };
        let header_fields = SimReport::csv_header().split(',').count();
        let row_fields = report.to_csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }
}
