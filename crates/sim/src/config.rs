//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// Policy used to pick one admissible free virtual channel when a header has
/// several to choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectionPolicy {
    /// Prefer fully adaptive (class-a) channels, breaking ties uniformly at
    /// random; fall back to the lowest admissible escape level.  This is the
    /// behaviour assumed by the Enhanced-Nbc description.
    #[default]
    AdaptiveFirst,
    /// Uniformly random among all free admissible candidates.
    Random,
    /// Deterministically the first free candidate in the order returned by
    /// the routing algorithm (useful for debugging).
    FirstFree,
}

/// Which simulator engine executes the run.
///
/// Both engines implement the identical per-cycle router semantics and are
/// pinned byte-identical on every report field by `tests/sim_equivalence.rs`;
/// they differ only in how they find the work of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SimCore {
    /// The legacy reference engine: every channel of every node is scanned
    /// every cycle, so cost scales with network size.
    Ticking,
    /// The event-calendar engine: arrivals are scheduled on a calendar and
    /// per-cycle stages iterate active-entity sets only, so cost scales with
    /// traffic; idle stretches are skipped entirely.
    #[default]
    EventDriven,
}

impl SimCore {
    /// Both engines, reference first.
    pub const ALL: [SimCore; 2] = [SimCore::Ticking, SimCore::EventDriven];

    /// The kebab-case name used by `--core` CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimCore::Ticking => "ticking",
            SimCore::EventDriven => "event",
        }
    }

    /// Parses the kebab-case CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Message length `M` in flits.
    pub message_length: usize,
    /// Traffic generation rate `λ_g` in messages per node per cycle.
    pub traffic_rate: f64,
    /// Flit buffer depth of every virtual channel.
    pub buffer_depth: usize,
    /// Number of injection slots per node (how many messages of one source
    /// may be in flight concurrently); defaults to the number of virtual
    /// channels when 0.
    pub injection_slots: usize,
    /// Cycles before measurement starts (messages generated earlier are
    /// warm-up messages and are not measured).
    pub warmup_cycles: u64,
    /// Number of measured messages to deliver before stopping.
    pub measured_messages: u64,
    /// Hard cycle limit; reaching it before delivering the measured messages
    /// marks the run as saturated.
    pub max_cycles: u64,
    /// A source queue longer than this marks the run as saturated.
    pub saturation_queue_limit: usize,
    /// RNG seed.
    pub seed: u64,
    /// Virtual-channel selection policy.
    pub selection: SelectionPolicy,
    /// Which simulator engine executes the run (results are engine-invariant;
    /// only wall-clock differs).
    pub core: SimCore,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            message_length: 32,
            traffic_rate: 0.001,
            // depth 2 (one incoming + one outgoing slot, as in the paper's
            // channel description) sustains one flit per cycle per channel
            // with single-cycle credit return
            buffer_depth: 2,
            injection_slots: 0,
            warmup_cycles: 10_000,
            measured_messages: 20_000,
            max_cycles: 2_000_000,
            saturation_queue_limit: 500,
            seed: 1,
            selection: SelectionPolicy::AdaptiveFirst,
            core: SimCore::default(),
        }
    }
}

impl SimConfig {
    /// Starts a builder with default values.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder { config: Self::default() }
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// nonsensical values.
    pub fn validate(&self) {
        assert!(self.message_length >= 1, "messages need at least one flit");
        assert!(
            self.traffic_rate >= 0.0 && self.traffic_rate.is_finite(),
            "traffic rate must be finite and non-negative"
        );
        assert!(self.buffer_depth >= 1, "virtual channels need at least one buffer slot");
        assert!(self.max_cycles > self.warmup_cycles, "max_cycles must exceed warmup_cycles");
        assert!(self.saturation_queue_limit >= 1, "saturation queue limit must be positive");
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the message length in flits.
    #[must_use]
    pub fn message_length(mut self, flits: usize) -> Self {
        self.config.message_length = flits;
        self
    }

    /// Sets the traffic generation rate (messages/node/cycle).
    #[must_use]
    pub fn traffic_rate(mut self, rate: f64) -> Self {
        self.config.traffic_rate = rate;
        self
    }

    /// Sets the per-virtual-channel buffer depth in flits.
    #[must_use]
    pub fn buffer_depth(mut self, depth: usize) -> Self {
        self.config.buffer_depth = depth;
        self
    }

    /// Sets the number of injection slots per node.
    #[must_use]
    pub fn injection_slots(mut self, slots: usize) -> Self {
        self.config.injection_slots = slots;
        self
    }

    /// Sets the warm-up period in cycles.
    #[must_use]
    pub fn warmup_cycles(mut self, cycles: u64) -> Self {
        self.config.warmup_cycles = cycles;
        self
    }

    /// Sets the number of measured messages to deliver before stopping.
    #[must_use]
    pub fn measured_messages(mut self, count: u64) -> Self {
        self.config.measured_messages = count;
        self
    }

    /// Sets the hard cycle limit.
    #[must_use]
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Sets the source-queue length that declares saturation.
    #[must_use]
    pub fn saturation_queue_limit(mut self, limit: usize) -> Self {
        self.config.saturation_queue_limit = limit;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the virtual-channel selection policy.
    #[must_use]
    pub fn selection(mut self, policy: SelectionPolicy) -> Self {
        self.config.selection = policy;
        self
    }

    /// Sets the simulator engine.
    #[must_use]
    pub fn core(mut self, core: SimCore) -> Self {
        self.config.core = core;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics if the resulting configuration is invalid.
    #[must_use]
    pub fn build(self) -> SimConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let c = SimConfig::builder()
            .message_length(64)
            .traffic_rate(0.004)
            .buffer_depth(2)
            .injection_slots(3)
            .warmup_cycles(5_000)
            .measured_messages(10_000)
            .max_cycles(1_000_000)
            .saturation_queue_limit(200)
            .seed(99)
            .selection(SelectionPolicy::Random)
            .core(SimCore::Ticking)
            .build();
        assert_eq!(c.message_length, 64);
        assert_eq!(c.traffic_rate, 0.004);
        assert_eq!(c.buffer_depth, 2);
        assert_eq!(c.injection_slots, 3);
        assert_eq!(c.warmup_cycles, 5_000);
        assert_eq!(c.measured_messages, 10_000);
        assert_eq!(c.max_cycles, 1_000_000);
        assert_eq!(c.saturation_queue_limit, 200);
        assert_eq!(c.seed, 99);
        assert_eq!(c.selection, SelectionPolicy::Random);
        assert_eq!(c.core, SimCore::Ticking);
    }

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    fn event_core_is_the_default_and_names_round_trip() {
        assert_eq!(SimConfig::default().core, SimCore::EventDriven);
        for core in SimCore::ALL {
            assert_eq!(SimCore::parse(core.name()), Some(core));
        }
        assert_eq!(SimCore::parse("hybrid"), None);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_messages_rejected() {
        let _ = SimConfig::builder().message_length(0).build();
    }

    #[test]
    #[should_panic(expected = "must exceed warmup")]
    fn max_cycles_must_exceed_warmup() {
        let _ = SimConfig::builder().warmup_cycles(100).max_cycles(50).build();
    }
}
