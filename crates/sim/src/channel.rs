//! Per-virtual-channel state of the router model.
//!
//! Every unidirectional physical channel carries `V` virtual channels.  The
//! sending side of a channel is an [`OutputVc`] (ownership + credits), the
//! receiving side is an [`InputVc`] (flit buffer + routing decision).  Flits
//! are tracked as counters rather than individual objects: in wormhole
//! switching a virtual channel is owned by exactly one message at a time, so
//! a count of buffered flits plus the per-message totals fully determines the
//! channel state.

use crate::message::MessageId;
use serde::{Deserialize, Serialize};

/// Receiving side of a virtual channel: the flit buffer at the downstream
/// router input (or an injection slot when the "upstream" is the local PE).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InputVc {
    /// Message currently occupying the channel.
    pub owner: Option<MessageId>,
    /// Flits currently waiting in the buffer (for injection slots: flits the
    /// PE has not yet pushed into the network).
    pub buffered: usize,
    /// Flits of the current message received so far (for injection slots this
    /// starts at the full message length).
    pub received: usize,
    /// Output `(port, virtual channel)` assigned by the routing stage; `None`
    /// until the header has been routed.
    pub route: Option<(usize, usize)>,
}

impl InputVc {
    /// Whether the virtual channel is free.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }

    /// Resets the channel to the free state.
    pub fn release(&mut self) {
        self.owner = None;
        self.buffered = 0;
        self.received = 0;
        self.route = None;
    }

    /// Claims the channel for a message that will supply `supply` flits
    /// locally (used for injection slots).
    pub fn claim_for_injection(&mut self, message: MessageId, length: usize) {
        debug_assert!(self.is_free());
        self.owner = Some(message);
        self.buffered = length;
        self.received = length;
        self.route = None;
    }
}

/// Sending side of a virtual channel: ownership and credit state at the
/// upstream router output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputVc {
    /// Message currently owning the channel.
    pub owner: Option<MessageId>,
    /// Free buffer slots at the downstream input virtual channel.
    pub credits: usize,
    /// Flits of the current message already sent downstream.
    pub flits_sent: usize,
    /// Length in flits of the owning message (0 when free).
    pub length: usize,
    /// Input `(port, virtual channel)` at this router feeding the channel
    /// (`port == degree` denotes an injection slot).
    pub source: Option<(usize, usize)>,
}

impl OutputVc {
    /// A fresh output virtual channel with the given downstream buffer depth.
    #[must_use]
    pub fn new(buffer_depth: usize) -> Self {
        Self { owner: None, credits: buffer_depth, flits_sent: 0, length: 0, source: None }
    }

    /// Whether the channel is free for allocation.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }

    /// Allocates the channel to a message of `length` flits fed from the given
    /// input.
    pub fn allocate(&mut self, message: MessageId, source: (usize, usize), length: usize) {
        debug_assert!(self.is_free());
        self.owner = Some(message);
        self.flits_sent = 0;
        self.length = length;
        self.source = Some(source);
    }

    /// Whether the tail flit has been sent downstream.
    #[must_use]
    pub fn tail_sent(&self) -> bool {
        self.owner.is_some() && self.flits_sent >= self.length
    }

    /// Releases the channel.  Called once the tail flit has been sent *and*
    /// the downstream buffer has fully drained (all credits returned), which
    /// is when a wormhole virtual channel returns to the idle state.
    pub fn release(&mut self) {
        self.owner = None;
        self.flits_sent = 0;
        self.length = 0;
        self.source = None;
    }
}

/// Sentinel for "no owning message slot" in the struct-of-arrays tables.
const FREE: u32 = u32::MAX;
/// Sentinel for "header not yet routed" in [`InputVcTable`].
const NO_ROUTE: u16 = u16::MAX;

/// Struct-of-arrays input virtual-channel state, used by the event-driven
/// engine: the same per-VC fields as [`InputVc`], but each field is one dense
/// vector indexed by the global input-VC index, so the hot loop touches
/// contiguous memory instead of pointer-sized `Option`s scattered across an
/// array of structs.
///
/// Owners are message *slots* in a
/// [`MessageStore`](crate::message::MessageStore), not message ids.
#[derive(Debug, Clone)]
pub struct InputVcTable {
    owner: Vec<u32>,
    buffered: Vec<u32>,
    received: Vec<u32>,
    route_port: Vec<u16>,
    route_vc: Vec<u16>,
}

impl InputVcTable {
    /// A table of `count` free input virtual channels.
    #[must_use]
    pub fn new(count: usize) -> Self {
        Self {
            owner: vec![FREE; count],
            buffered: vec![0; count],
            received: vec![0; count],
            route_port: vec![NO_ROUTE; count],
            route_vc: vec![NO_ROUTE; count],
        }
    }

    /// Whether the virtual channel is free.
    #[must_use]
    #[inline]
    pub fn is_free(&self, idx: usize) -> bool {
        self.owner[idx] == FREE
    }

    /// The owning message slot, if any.
    #[must_use]
    #[inline]
    pub fn owner(&self, idx: usize) -> Option<u32> {
        (self.owner[idx] != FREE).then_some(self.owner[idx])
    }

    /// Flits currently buffered.
    #[must_use]
    #[inline]
    pub fn buffered(&self, idx: usize) -> u32 {
        self.buffered[idx]
    }

    /// Flits of the current message received so far.
    #[must_use]
    #[inline]
    pub fn received(&self, idx: usize) -> u32 {
        self.received[idx]
    }

    /// The output `(port, vc)` assigned by the routing stage, `None` until
    /// the header has been routed.
    #[must_use]
    #[inline]
    pub fn route(&self, idx: usize) -> Option<(usize, usize)> {
        (self.route_port[idx] != NO_ROUTE)
            .then(|| (self.route_port[idx] as usize, self.route_vc[idx] as usize))
    }

    /// Claims the channel for a locally injected message whose `length` flits
    /// are all supplied by the source queue (mirrors
    /// [`InputVc::claim_for_injection`]).
    #[inline]
    pub fn claim_for_injection(&mut self, idx: usize, slot: u32, length: u32) {
        debug_assert!(self.is_free(idx));
        debug_assert_ne!(slot, FREE);
        self.owner[idx] = slot;
        self.buffered[idx] = length;
        self.received[idx] = length;
        self.route_port[idx] = NO_ROUTE;
        self.route_vc[idx] = NO_ROUTE;
    }

    /// Claims the channel for a message whose header flit is arriving from
    /// the network (buffered/received start at zero and count up via
    /// [`Self::push_flit`]).
    #[inline]
    pub fn claim_for_arrival(&mut self, idx: usize, slot: u32) {
        debug_assert!(self.is_free(idx));
        debug_assert_ne!(slot, FREE);
        self.owner[idx] = slot;
        self.buffered[idx] = 0;
        self.received[idx] = 0;
        self.route_port[idx] = NO_ROUTE;
        self.route_vc[idx] = NO_ROUTE;
    }

    /// Records one flit arriving into the buffer.
    #[inline]
    pub fn push_flit(&mut self, idx: usize) {
        self.buffered[idx] += 1;
        self.received[idx] += 1;
    }

    /// Records one flit leaving the buffer.
    #[inline]
    pub fn pop_flit(&mut self, idx: usize) {
        debug_assert!(self.buffered[idx] > 0);
        self.buffered[idx] -= 1;
    }

    /// Sets the routing decision for the buffered header.
    #[inline]
    pub fn set_route(&mut self, idx: usize, port: usize, vc: usize) {
        self.route_port[idx] = port as u16;
        self.route_vc[idx] = vc as u16;
    }

    /// Resets the channel to the free state.
    #[inline]
    pub fn release(&mut self, idx: usize) {
        self.owner[idx] = FREE;
        self.buffered[idx] = 0;
        self.received[idx] = 0;
        self.route_port[idx] = NO_ROUTE;
        self.route_vc[idx] = NO_ROUTE;
    }
}

/// Struct-of-arrays output virtual-channel state, the event-driven engine's
/// counterpart of [`OutputVc`] (ownership + credits as dense vectors).
///
/// Owners are message slots, sources are the feeding input `(port, vc)` with
/// `port == degree` denoting an injection slot.
#[derive(Debug, Clone)]
pub struct OutputVcTable {
    owner: Vec<u32>,
    credits: Vec<u32>,
    flits_sent: Vec<u32>,
    length: Vec<u32>,
    source_port: Vec<u16>,
    source_vc: Vec<u16>,
}

impl OutputVcTable {
    /// A table of `count` free output virtual channels, each starting with
    /// `buffer_depth` credits.
    #[must_use]
    pub fn new(count: usize, buffer_depth: u32) -> Self {
        Self {
            owner: vec![FREE; count],
            credits: vec![buffer_depth; count],
            flits_sent: vec![0; count],
            length: vec![0; count],
            source_port: vec![NO_ROUTE; count],
            source_vc: vec![NO_ROUTE; count],
        }
    }

    /// Whether the channel is free for allocation.
    #[must_use]
    #[inline]
    pub fn is_free(&self, idx: usize) -> bool {
        self.owner[idx] == FREE
    }

    /// The owning message slot, if any.
    #[must_use]
    #[inline]
    pub fn owner(&self, idx: usize) -> Option<u32> {
        (self.owner[idx] != FREE).then_some(self.owner[idx])
    }

    /// Free buffer slots at the downstream input virtual channel.
    #[must_use]
    #[inline]
    pub fn credits(&self, idx: usize) -> u32 {
        self.credits[idx]
    }

    /// The input `(port, vc)` feeding this channel, if allocated.
    #[must_use]
    #[inline]
    pub fn source(&self, idx: usize) -> Option<(usize, usize)> {
        (self.source_port[idx] != NO_ROUTE)
            .then(|| (self.source_port[idx] as usize, self.source_vc[idx] as usize))
    }

    /// Whether the channel may forward a flit this cycle: allocated, credit
    /// available and not all flits sent (mirrors the ticking engine's switch
    /// guard).
    #[must_use]
    #[inline]
    pub fn ready_to_send(&self, idx: usize) -> bool {
        self.owner[idx] != FREE && self.credits[idx] > 0 && self.flits_sent[idx] < self.length[idx]
    }

    /// Allocates the channel to a message of `length` flits fed from the
    /// given input (mirrors [`OutputVc::allocate`]).
    #[inline]
    pub fn allocate(&mut self, idx: usize, slot: u32, source: (usize, usize), length: u32) {
        debug_assert!(self.is_free(idx));
        debug_assert_ne!(slot, FREE);
        self.owner[idx] = slot;
        self.flits_sent[idx] = 0;
        self.length[idx] = length;
        self.source_port[idx] = source.0 as u16;
        self.source_vc[idx] = source.1 as u16;
    }

    /// Records one flit sent downstream (consumes a credit).
    #[inline]
    pub fn send_flit(&mut self, idx: usize) {
        debug_assert!(self.credits[idx] > 0);
        self.credits[idx] -= 1;
        self.flits_sent[idx] += 1;
    }

    /// Returns one credit from downstream.
    #[inline]
    pub fn return_credit(&mut self, idx: usize) {
        self.credits[idx] += 1;
    }

    /// Whether the tail flit has been sent downstream.
    #[must_use]
    #[inline]
    pub fn tail_sent(&self, idx: usize) -> bool {
        self.owner[idx] != FREE && self.flits_sent[idx] >= self.length[idx]
    }

    /// Releases the channel (tail sent and downstream drained).  Credits are
    /// preserved: they track downstream buffer space, not ownership.
    #[inline]
    pub fn release(&mut self, idx: usize) {
        self.owner[idx] = FREE;
        self.flits_sent[idx] = 0;
        self.length[idx] = 0;
        self.source_port[idx] = NO_ROUTE;
        self.source_vc[idx] = NO_ROUTE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_vc_lifecycle() {
        let mut vc = InputVc::default();
        assert!(vc.is_free());
        vc.claim_for_injection(7, 32);
        assert!(!vc.is_free());
        assert_eq!(vc.buffered, 32);
        assert_eq!(vc.received, 32);
        vc.release();
        assert!(vc.is_free());
        assert_eq!(vc.buffered, 0);
        assert_eq!(vc.route, None);
    }

    #[test]
    fn output_vc_lifecycle_preserves_credits() {
        let mut vc = OutputVc::new(2);
        assert!(vc.is_free());
        assert_eq!(vc.credits, 2);
        vc.allocate(3, (1, 0), 4);
        assert!(!vc.tail_sent());
        vc.credits -= 1;
        vc.flits_sent += 1;
        assert!(!vc.tail_sent());
        vc.flits_sent = 4;
        assert!(vc.tail_sent());
        vc.release();
        assert!(vc.is_free());
        assert!(!vc.tail_sent());
        // credits track downstream buffer space, not ownership
        assert_eq!(vc.credits, 1);
        assert_eq!(vc.flits_sent, 0);
        assert_eq!(vc.source, None);
    }

    #[test]
    fn input_table_mirrors_input_vc_lifecycle() {
        let mut table = InputVcTable::new(4);
        assert!(table.is_free(2));
        table.claim_for_injection(2, 9, 32);
        assert_eq!(table.owner(2), Some(9));
        assert_eq!(table.buffered(2), 32);
        assert_eq!(table.received(2), 32);
        assert_eq!(table.route(2), None);
        table.set_route(2, 3, 1);
        assert_eq!(table.route(2), Some((3, 1)));
        table.pop_flit(2);
        assert_eq!(table.buffered(2), 31);
        table.release(2);
        assert!(table.is_free(2));
        assert_eq!(table.route(2), None);
        // network-arrival claims count flits up from zero
        table.claim_for_arrival(0, 5);
        assert_eq!(table.buffered(0), 0);
        table.push_flit(0);
        table.push_flit(0);
        assert_eq!((table.buffered(0), table.received(0)), (2, 2));
        assert!(!table.is_free(0) && table.is_free(1));
    }

    #[test]
    fn output_table_mirrors_output_vc_lifecycle() {
        let mut table = OutputVcTable::new(3, 2);
        assert!(table.is_free(1));
        assert_eq!(table.credits(1), 2);
        assert!(!table.ready_to_send(1), "a free channel never sends");
        table.allocate(1, 3, (4, 0), 4);
        assert_eq!(table.owner(1), Some(3));
        assert_eq!(table.source(1), Some((4, 0)));
        assert!(table.ready_to_send(1));
        assert!(!table.tail_sent(1));
        table.send_flit(1);
        assert_eq!(table.credits(1), 1);
        table.send_flit(1);
        assert_eq!(table.credits(1), 0);
        assert!(!table.ready_to_send(1), "no credits, no send");
        table.return_credit(1);
        table.send_flit(1);
        table.return_credit(1);
        table.send_flit(1);
        assert!(table.tail_sent(1));
        assert!(!table.ready_to_send(1), "all flits sent");
        table.return_credit(1);
        table.return_credit(1);
        table.release(1);
        assert!(table.is_free(1));
        assert!(!table.tail_sent(1));
        // credits survive release, exactly like OutputVc
        assert_eq!(table.credits(1), 2);
        assert_eq!(table.source(1), None);
    }
}
