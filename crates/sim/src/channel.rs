//! Per-virtual-channel state of the router model.
//!
//! Every unidirectional physical channel carries `V` virtual channels.  The
//! sending side of a channel is an [`OutputVc`] (ownership + credits), the
//! receiving side is an [`InputVc`] (flit buffer + routing decision).  Flits
//! are tracked as counters rather than individual objects: in wormhole
//! switching a virtual channel is owned by exactly one message at a time, so
//! a count of buffered flits plus the per-message totals fully determines the
//! channel state.

use crate::message::MessageId;
use serde::{Deserialize, Serialize};

/// Receiving side of a virtual channel: the flit buffer at the downstream
/// router input (or an injection slot when the "upstream" is the local PE).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InputVc {
    /// Message currently occupying the channel.
    pub owner: Option<MessageId>,
    /// Flits currently waiting in the buffer (for injection slots: flits the
    /// PE has not yet pushed into the network).
    pub buffered: usize,
    /// Flits of the current message received so far (for injection slots this
    /// starts at the full message length).
    pub received: usize,
    /// Output `(port, virtual channel)` assigned by the routing stage; `None`
    /// until the header has been routed.
    pub route: Option<(usize, usize)>,
}

impl InputVc {
    /// Whether the virtual channel is free.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }

    /// Resets the channel to the free state.
    pub fn release(&mut self) {
        self.owner = None;
        self.buffered = 0;
        self.received = 0;
        self.route = None;
    }

    /// Claims the channel for a message that will supply `supply` flits
    /// locally (used for injection slots).
    pub fn claim_for_injection(&mut self, message: MessageId, length: usize) {
        debug_assert!(self.is_free());
        self.owner = Some(message);
        self.buffered = length;
        self.received = length;
        self.route = None;
    }
}

/// Sending side of a virtual channel: ownership and credit state at the
/// upstream router output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputVc {
    /// Message currently owning the channel.
    pub owner: Option<MessageId>,
    /// Free buffer slots at the downstream input virtual channel.
    pub credits: usize,
    /// Flits of the current message already sent downstream.
    pub flits_sent: usize,
    /// Length in flits of the owning message (0 when free).
    pub length: usize,
    /// Input `(port, virtual channel)` at this router feeding the channel
    /// (`port == degree` denotes an injection slot).
    pub source: Option<(usize, usize)>,
}

impl OutputVc {
    /// A fresh output virtual channel with the given downstream buffer depth.
    #[must_use]
    pub fn new(buffer_depth: usize) -> Self {
        Self { owner: None, credits: buffer_depth, flits_sent: 0, length: 0, source: None }
    }

    /// Whether the channel is free for allocation.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }

    /// Allocates the channel to a message of `length` flits fed from the given
    /// input.
    pub fn allocate(&mut self, message: MessageId, source: (usize, usize), length: usize) {
        debug_assert!(self.is_free());
        self.owner = Some(message);
        self.flits_sent = 0;
        self.length = length;
        self.source = Some(source);
    }

    /// Whether the tail flit has been sent downstream.
    #[must_use]
    pub fn tail_sent(&self) -> bool {
        self.owner.is_some() && self.flits_sent >= self.length
    }

    /// Releases the channel.  Called once the tail flit has been sent *and*
    /// the downstream buffer has fully drained (all credits returned), which
    /// is when a wormhole virtual channel returns to the idle state.
    pub fn release(&mut self) {
        self.owner = None;
        self.flits_sent = 0;
        self.length = 0;
        self.source = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_vc_lifecycle() {
        let mut vc = InputVc::default();
        assert!(vc.is_free());
        vc.claim_for_injection(7, 32);
        assert!(!vc.is_free());
        assert_eq!(vc.buffered, 32);
        assert_eq!(vc.received, 32);
        vc.release();
        assert!(vc.is_free());
        assert_eq!(vc.buffered, 0);
        assert_eq!(vc.route, None);
    }

    #[test]
    fn output_vc_lifecycle_preserves_credits() {
        let mut vc = OutputVc::new(2);
        assert!(vc.is_free());
        assert_eq!(vc.credits, 2);
        vc.allocate(3, (1, 0), 4);
        assert!(!vc.tail_sent());
        vc.credits -= 1;
        vc.flits_sent += 1;
        assert!(!vc.tail_sent());
        vc.flits_sent = 4;
        assert!(vc.tail_sent());
        vc.release();
        assert!(vc.is_free());
        assert!(!vc.tail_sent());
        // credits track downstream buffer space, not ownership
        assert_eq!(vc.credits, 1);
        assert_eq!(vc.flits_sent, 0);
        assert_eq!(vc.source, None);
    }
}
