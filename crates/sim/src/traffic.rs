//! Destination selection patterns for generated traffic.
//!
//! The paper evaluates uniform traffic only; hot-spot and locality patterns
//! are provided for the extension studies in the benchmark harness.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use star_graph::{NodeId, Topology};

/// Destination selection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TrafficPattern {
    /// Destinations uniformly distributed over all other nodes (the paper's
    /// assumption (a)).
    #[default]
    Uniform,
    /// A fraction of the traffic targets a single hot-spot node; the rest is
    /// uniform.
    HotSpot {
        /// The hot node.
        node: NodeId,
        /// Fraction of messages (0..1) sent to the hot node.
        fraction: f64,
    },
    /// Destinations drawn uniformly among nodes within the given distance of
    /// the source (models communication locality).
    Local {
        /// Maximum distance of a destination from its source.
        max_distance: usize,
    },
}

impl TrafficPattern {
    /// Draws a destination for a message generated at `source`.
    ///
    /// # Panics
    /// Panics if the pattern parameters are invalid for the topology (e.g. a
    /// hot-spot node out of range).
    pub fn pick_destination(
        &self,
        topology: &dyn Topology,
        source: NodeId,
        rng: &mut StdRng,
    ) -> NodeId {
        let n = topology.node_count() as NodeId;
        match *self {
            TrafficPattern::Uniform => {
                // uniform over all nodes except the source
                let mut dest = rng.random_range(0..n - 1);
                if dest >= source {
                    dest += 1;
                }
                dest
            }
            TrafficPattern::HotSpot { node, fraction } => {
                assert!(node < n, "hot-spot node out of range");
                assert!((0.0..=1.0).contains(&fraction), "hot-spot fraction out of range");
                if node != source && rng.random::<f64>() < fraction {
                    node
                } else {
                    TrafficPattern::Uniform.pick_destination(topology, source, rng)
                }
            }
            TrafficPattern::Local { max_distance } => {
                assert!(max_distance >= 1, "locality radius must be at least 1");
                // rejection sampling; the neighbourhood is never empty because
                // every node has neighbours at distance 1
                loop {
                    let dest = TrafficPattern::Uniform.pick_destination(topology, source, rng);
                    if topology.distance(source, dest) <= max_distance {
                        return dest;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::StarGraph;
    use star_queueing::sampling::seeded_rng;

    #[test]
    fn uniform_never_picks_the_source_and_covers_all_nodes() {
        let s4 = StarGraph::new(4);
        let mut rng = seeded_rng(3, 0);
        let mut seen = vec![false; s4.node_count()];
        for _ in 0..5_000 {
            let d = TrafficPattern::Uniform.pick_destination(&s4, 7, &mut rng);
            assert_ne!(d, 7);
            seen[d as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, s4.node_count() - 1);
    }

    #[test]
    fn uniform_is_actually_uniform() {
        let s4 = StarGraph::new(4);
        let mut rng = seeded_rng(11, 1);
        let trials = 48_000;
        let mut counts = vec![0usize; s4.node_count()];
        for _ in 0..trials {
            counts[TrafficPattern::Uniform.pick_destination(&s4, 0, &mut rng) as usize] += 1;
        }
        let expected = trials as f64 / (s4.node_count() - 1) as f64;
        for (node, &c) in counts.iter().enumerate() {
            if node == 0 {
                assert_eq!(c, 0);
            } else {
                let rel = (c as f64 - expected).abs() / expected;
                assert!(rel < 0.15, "node {node} count {c} deviates too much");
            }
        }
    }

    #[test]
    fn hotspot_receives_requested_fraction() {
        let s4 = StarGraph::new(4);
        let mut rng = seeded_rng(5, 2);
        let pattern = TrafficPattern::HotSpot { node: 3, fraction: 0.3 };
        let trials = 20_000;
        let hits = (0..trials).filter(|_| pattern.pick_destination(&s4, 0, &mut rng) == 3).count();
        let observed = hits as f64 / trials as f64;
        // 30% targeted plus the uniform share of the remaining 70%
        let expected = 0.3 + 0.7 / 23.0;
        assert!((observed - expected).abs() < 0.02, "observed {observed}, expected {expected}");
    }

    #[test]
    fn local_pattern_respects_radius() {
        let s5 = StarGraph::new(5);
        let mut rng = seeded_rng(9, 3);
        let pattern = TrafficPattern::Local { max_distance: 2 };
        for _ in 0..2_000 {
            let d = pattern.pick_destination(&s5, 10, &mut rng);
            assert!(s5.distance(10, d) <= 2);
            assert_ne!(d, 10);
        }
    }
}
