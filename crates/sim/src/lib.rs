//! # star-sim
//!
//! A cycle-accurate, flit-level wormhole network simulator with virtual
//! channels, used to validate the analytical model of `star-core` exactly as
//! the paper validates its model (Section 5):
//!
//! * the network cycle is the transmission time of one flit between adjacent
//!   routers;
//! * each node generates messages according to a Poisson process with rate
//!   `λ_g` messages/cycle, destinations drawn uniformly at random;
//! * messages have a fixed length of `M` flits;
//! * every physical channel carries `V` virtual channels, each with its own
//!   flit buffer, allocated according to a pluggable
//!   [`RoutingAlgorithm`](star_routing::RoutingAlgorithm) (Enhanced-Nbc by
//!   default);
//! * messages are consumed by the local processor on arrival (no ejection
//!   contention), and the mean message latency is measured from generation to
//!   the arrival of the last data flit.
//!
//! Two engines execute these semantics, selected by
//! [`SimCore`]: the legacy *ticking* engine scans every
//! channel of every node each cycle, while the *event-driven* engine (the
//! default) schedules source arrivals on an [`EventCalendar`] and walks
//! active-entity sets only, fast-forwarding over idle stretches.  Both
//! produce byte-identical reports for identical configurations — the
//! equivalence suite (`tests/sim_equivalence.rs`) pins this replicate for
//! replicate — so engine choice is purely a wall-clock decision.
//!
//! The simulator is deterministic for a fixed seed, detects saturation
//! (unbounded source queues), and reports message latency, network latency,
//! source-queueing time, channel utilisation and the observed degree of
//! virtual-channel multiplexing.  A [`ReplicateRun`] executes R
//! independently seeded replications of one experiment (seeds derived from a
//! base seed with [`star_queueing::replicate_seed`]) and folds them into a
//! [`ReplicateReport`] with across-replicate means and Student-t 95%
//! confidence intervals.
//!
//! ```
//! use star_graph::StarGraph;
//! use star_routing::EnhancedNbc;
//! use star_sim::{SimConfig, Simulation, TrafficPattern};
//! use std::sync::Arc;
//!
//! let topology = Arc::new(StarGraph::new(4));
//! let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
//! let config = SimConfig::builder()
//!     .message_length(16)
//!     .traffic_rate(0.001)
//!     .warmup_cycles(1_000)
//!     .measured_messages(2_000)
//!     .max_cycles(200_000)
//!     .seed(7)
//!     .build();
//! let report = Simulation::new(topology, routing, config, TrafficPattern::Uniform).run();
//! assert!(!report.saturated);
//! assert!(report.mean_message_latency > 16.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activeset;
pub mod calendar;
pub mod channel;
pub mod config;
pub mod event;
pub mod message;
pub mod metrics;
pub mod network;
pub mod replicate;
pub mod sim;
pub mod traffic;

pub use activeset::ActiveSet;
pub use calendar::EventCalendar;
pub use config::{SelectionPolicy, SimConfig, SimConfigBuilder, SimCore};
pub use event::EventNetwork;
pub use message::{Message, MessageId};
pub use metrics::{ReplicateReport, SimReport};
pub use network::StageSkips;
pub use replicate::ReplicateRun;
pub use sim::Simulation;
pub use traffic::TrafficPattern;
