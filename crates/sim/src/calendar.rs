//! A keyed event calendar: the scheduling core of the event-driven simulator
//! engine.
//!
//! The calendar is a binary min-heap of `(time, seq, key)` entries with two
//! invariants the engine's determinism contract rests on:
//!
//! * **FIFO under ties** — every schedule operation stamps a monotonically
//!   increasing sequence number, and entries order by `(time, seq)`.  Two
//!   events scheduled for the same cycle therefore pop in the order they
//!   were scheduled, independent of heap internals.
//! * **At most one live event per key** — each key (a node, a channel)
//!   carries a generation counter; scheduling or cancelling bumps the
//!   generation, which lazily invalidates any entry still sitting in the
//!   heap from an earlier schedule.  Stale entries are skipped (and
//!   discarded) when encountered, so cancel/reschedule is `O(log n)`
//!   amortized without a decrease-key primitive.
//!
//! The engine keys its arrival calendar by node id; [`EventCalendar`] itself
//! is agnostic about what a key means.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One heap entry.  Orders by `(time, seq)`; `key`/`generation` only identify
/// the event and never influence ordering because `seq` is unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    time: u64,
    seq: u64,
    key: u32,
    generation: u64,
}

/// Per-key bookkeeping: the generation of the most recent schedule and the
/// time it is scheduled for (`None` when the key has no live event).
#[derive(Debug, Clone, Copy, Default)]
struct KeyState {
    generation: u64,
    scheduled: Option<u64>,
}

/// A keyed binary-heap event calendar with FIFO tie-breaking and
/// generation-based cancel/reschedule (see the module docs for the
/// invariants).
#[derive(Debug, Clone, Default)]
pub struct EventCalendar {
    heap: BinaryHeap<Reverse<Entry>>,
    keys: Vec<KeyState>,
    seq: u64,
    live: usize,
}

impl EventCalendar {
    /// A calendar for keys `0..keys`.
    #[must_use]
    pub fn new(keys: usize) -> Self {
        Self { heap: BinaryHeap::new(), keys: vec![KeyState::default(); keys], seq: 0, live: 0 }
    }

    /// Number of keys with a live (scheduled, not yet popped) event.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no event is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The time the given key's live event is scheduled for, if any.
    #[must_use]
    pub fn pending(&self, key: u32) -> Option<u64> {
        self.keys[key as usize].scheduled
    }

    /// Schedules (or reschedules) the key's event for `time`.  Any earlier
    /// schedule for the same key is cancelled: its heap entry becomes stale
    /// and is skipped when encountered.
    pub fn schedule(&mut self, key: u32, time: u64) {
        let state = &mut self.keys[key as usize];
        if state.scheduled.take().is_some() {
            self.live -= 1;
        }
        state.generation += 1;
        state.scheduled = Some(time);
        self.live += 1;
        let entry = Entry { time, seq: self.seq, key, generation: state.generation };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Cancels the key's live event, returning the time it was scheduled for.
    pub fn cancel(&mut self, key: u32) -> Option<u64> {
        let state = &mut self.keys[key as usize];
        let time = state.scheduled.take()?;
        state.generation += 1;
        self.live -= 1;
        Some(time)
    }

    /// The time of the earliest live event, discarding stale entries
    /// encountered on the way.
    pub fn next_time(&mut self) -> Option<u64> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            let state = &self.keys[entry.key as usize];
            if state.generation == entry.generation {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Whether any live event is due at or before `now` — the one-branch
    /// guard the event engine's generation stage tests before doing any
    /// work.  Discards stale entries encountered on the way, like
    /// [`Self::next_time`].
    #[must_use]
    pub fn has_due(&mut self, now: u64) -> bool {
        self.next_time().is_some_and(|t| t <= now)
    }

    /// Pops every live event with `time <= now` into `out`, in `(time, seq)`
    /// order (earliest first, FIFO within one time).  Popped keys become
    /// unscheduled.
    pub fn pop_due_into(&mut self, now: u64, out: &mut Vec<u32>) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            let state = &mut self.keys[entry.key as usize];
            if state.generation != entry.generation {
                self.heap.pop();
                continue;
            }
            if entry.time > now {
                break;
            }
            state.scheduled = None;
            self.live -= 1;
            out.push(entry.key);
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ties_pop_in_schedule_order() {
        // FIFO per timestamp: keys scheduled for the same cycle pop in the
        // order schedule() was called, not in key or heap order.
        let mut cal = EventCalendar::new(8);
        for &key in &[5u32, 1, 7, 3] {
            cal.schedule(key, 10);
        }
        cal.schedule(6, 4); // earlier time pops first regardless of seq
        let mut due = Vec::new();
        cal.pop_due_into(10, &mut due);
        assert_eq!(due, vec![6, 5, 1, 7, 3]);
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_and_reschedule_invalidate_stale_entries() {
        let mut cal = EventCalendar::new(4);
        cal.schedule(2, 100);
        assert_eq!(cal.pending(2), Some(100));
        // reschedule earlier: the time-100 entry must never fire
        cal.schedule(2, 40);
        assert_eq!(cal.pending(2), Some(40));
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.next_time(), Some(40));
        let mut due = Vec::new();
        cal.pop_due_into(99, &mut due);
        assert_eq!(due, vec![2]);
        due.clear();
        // the stale time-100 entry is skipped, not replayed
        cal.pop_due_into(1_000, &mut due);
        assert!(due.is_empty());
        assert!(cal.is_empty());
        // cancel drops the live event entirely
        cal.schedule(1, 7);
        assert_eq!(cal.cancel(1), Some(7));
        assert_eq!(cal.cancel(1), None);
        assert_eq!(cal.next_time(), None);
        cal.pop_due_into(1_000, &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn pop_respects_now_and_keeps_future_events() {
        let mut cal = EventCalendar::new(4);
        cal.schedule(0, 5);
        cal.schedule(1, 6);
        cal.schedule(2, 20);
        let mut due = Vec::new();
        cal.pop_due_into(6, &mut due);
        assert_eq!(due, vec![0, 1]);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.next_time(), Some(20));
        assert_eq!(cal.pending(2), Some(20));
    }

    #[test]
    fn repeated_reschedule_stays_consistent() {
        // a key rescheduled many times leaves many stale entries behind;
        // len()/next_time() must stay exact throughout
        let mut cal = EventCalendar::new(2);
        for t in (1..50u64).rev() {
            cal.schedule(0, t);
            assert_eq!(cal.len(), 1);
        }
        assert_eq!(cal.next_time(), Some(1));
        let mut due = Vec::new();
        cal.pop_due_into(u64::MAX, &mut due);
        assert_eq!(due, vec![0]);
        assert!(cal.is_empty());
        assert_eq!(cal.next_time(), None);
    }
}
