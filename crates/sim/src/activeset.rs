//! A dense-index active set: the hot-loop membership structure of the
//! event-driven engine.
//!
//! [`ActiveSet`] replaces the `BTreeSet<u32>`s the engine used to walk for
//! its queued-node / pending-header / active-channel sets.  The engine's
//! determinism contract needs exactly three things from the structure:
//!
//! * **Ascending iteration** over dense indices, so the walk order equals
//!   the ticking engine's scan order (node-major, network ports before
//!   injection slots, then VC) and the shared RNG streams are drawn in the
//!   same order;
//! * **Idempotent insert/remove**, because a node can receive several
//!   messages in one cycle and a channel gains/loses owned VCs repeatedly;
//! * **Cheap membership flips**, because the per-flit path flips them.
//!
//! A sorted bitset delivers all three without per-element allocation or tree
//! rebalancing: membership is one bit in a `Vec<u64>`, insert/remove are
//! O(1) word ops, and ascending iteration is a word scan with
//! `trailing_zeros` — branch-light, cache-dense, and ordered by
//! construction.  The universe is fixed at build time (the engine's index
//! spaces are dense and known), so the scan cost is `universe / 64` words, a
//! few cache lines for every network the simulator runs.

/// A fixed-universe set of `u32` indices with ascending iteration order,
/// backed by a bitset (one bit per possible index).
#[derive(Debug, Clone)]
pub struct ActiveSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl ActiveSet {
    /// An empty set over the universe `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        Self { words: vec![0; universe.div_ceil(64)], universe, len: 0 }
    }

    /// The exclusive upper bound of the indices the set can hold.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of indices currently in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `index` is in the set.
    #[must_use]
    #[inline]
    pub fn contains(&self, index: u32) -> bool {
        debug_assert!((index as usize) < self.universe);
        self.words[index as usize / 64] & (1 << (index % 64)) != 0
    }

    /// Inserts `index`; returns whether it was newly inserted.  Inserting a
    /// present index is a no-op (idempotent).
    ///
    /// # Panics
    /// Panics if `index` is outside the universe.
    #[inline]
    pub fn insert(&mut self, index: u32) -> bool {
        assert!((index as usize) < self.universe, "index {index} outside universe");
        let word = &mut self.words[index as usize / 64];
        let mask = 1u64 << (index % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `index`; returns whether it was present.  Removing an absent
    /// index is a no-op (idempotent).
    ///
    /// # Panics
    /// Panics if `index` is outside the universe.
    #[inline]
    pub fn remove(&mut self, index: u32) -> bool {
        assert!((index as usize) < self.universe, "index {index} outside universe");
        let word = &mut self.words[index as usize / 64];
        let mask = 1u64 << (index % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Iterates the members in ascending order.
    #[must_use]
    pub fn iter(&self) -> Iter<'_> {
        Iter { words: &self.words, word: 0, bits: self.words.first().copied().unwrap_or(0) }
    }

    /// Clears `out` and fills it with the members in ascending order — the
    /// snapshot form the engine's stages iterate (they mutate the set while
    /// walking the snapshot).
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let low = bits.trailing_zeros();
                out.push(w as u32 * 64 + low);
                bits &= bits - 1;
            }
        }
    }
}

/// Ascending iterator over an [`ActiveSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word];
        }
        let low = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(self.word as u32 * 64 + low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// SplitMix64 — a tiny deterministic generator so the randomized
    /// interleavings need no RNG dependency.
    struct SplitMix(u64);

    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let mut set = ActiveSet::new(100);
        assert!(set.insert(42));
        assert!(!set.insert(42), "second insert of a present index is a no-op");
        assert_eq!(set.len(), 1);
        assert!(set.contains(42));
        assert!(set.remove(42));
        assert!(!set.remove(42), "second remove of an absent index is a no-op");
        assert_eq!(set.len(), 0);
        assert!(!set.contains(42));
        assert!(set.is_empty());
    }

    #[test]
    fn iteration_is_ascending_and_matches_the_retired_btreeset() {
        // The exact property the engine swap rests on: under any interleaving
        // of inserts and removes, ascending iteration equals what the retired
        // BTreeSet would have produced.
        for seed in 0..8u64 {
            let universe = 1 + (seed as usize * 37) % 500;
            let mut rng = SplitMix(0xA11_CE5 + seed);
            let mut set = ActiveSet::new(universe);
            let mut reference: BTreeSet<u32> = BTreeSet::new();
            for _ in 0..2_000 {
                let index = (rng.next() % universe as u64) as u32;
                if rng.next() % 3 == 0 {
                    assert_eq!(set.remove(index), reference.remove(&index));
                } else {
                    assert_eq!(set.insert(index), reference.insert(index));
                }
                assert_eq!(set.len(), reference.len());
                assert_eq!(set.is_empty(), reference.is_empty());
            }
            let via_iter: Vec<u32> = set.iter().collect();
            let expected: Vec<u32> = reference.iter().copied().collect();
            assert_eq!(via_iter, expected, "seed {seed}: iteration order diverged");
            let mut via_collect = Vec::new();
            set.collect_into(&mut via_collect);
            assert_eq!(via_collect, expected, "seed {seed}: collect_into diverged");
            for index in 0..universe as u32 {
                assert_eq!(set.contains(index), reference.contains(&index));
            }
        }
    }

    #[test]
    fn word_boundaries_are_handled() {
        // indices straddling the 64-bit word edges are the classic bitset bug
        let mut set = ActiveSet::new(130);
        for &index in &[0u32, 63, 64, 65, 127, 128, 129] {
            assert!(set.insert(index));
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 127, 128, 129]);
        assert!(set.remove(64));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 63, 65, 127, 128, 129]);
    }

    #[test]
    fn empty_universe_is_fine() {
        let set = ActiveSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
        let mut out = vec![1, 2, 3];
        set.collect_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_insert_is_rejected() {
        ActiveSet::new(10).insert(10);
    }

    #[test]
    fn collect_into_reuses_the_buffer() {
        let mut set = ActiveSet::new(64);
        set.insert(3);
        set.insert(17);
        let mut out = vec![99; 32];
        set.collect_into(&mut out);
        assert_eq!(out, vec![3, 17]);
    }
}
