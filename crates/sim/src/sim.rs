//! The simulation driver: warm-up, steady-state measurement, saturation and
//! deadlock detection.
//!
//! The driver is engine-agnostic: it runs the same loop over either the
//! ticking [`Network`] or the event-driven [`EventNetwork`], selected by
//! [`SimCore`] in the configuration.  The only engine-specific piece is the
//! idle fast-forward at the top of the loop — when the event engine reports
//! an idle network, the driver jumps straight to the next scheduled arrival
//! instead of stepping empty cycles one at a time, which changes nothing
//! observable (idle cycles touch no counter the report reads) but skips the
//! work.
//!
//! Within a stepped cycle both engines additionally skip empty pipeline
//! stages and account for the skips identically (see
//! [`NetworkCounters::record_stage_activity`]): fully idle cycles — whether
//! stepped by the ticking engine or fast-forwarded over here — contribute to
//! neither `active_cycles` nor any [`StageSkips`](crate::StageSkips)
//! counter, which is what keeps the skip statistics byte-identical across
//! engines.

use std::sync::Arc;

use star_graph::Topology;
use star_routing::RoutingAlgorithm;

use crate::config::{SimConfig, SimCore};
use crate::event::EventNetwork;
use crate::message::Message;
use crate::metrics::{MeasurementAccumulator, RunIdentity, RunOutcome, SimReport};
use crate::network::{Network, NetworkCounters};
use crate::traffic::TrafficPattern;

/// Number of cycles with in-flight messages but no flit movement after which
/// the deadlock watchdog fires.  The routing algorithms in this workspace are
/// deadlock-free, so this should never trigger; it guards against simulator
/// bugs rather than protocol bugs.
const DEADLOCK_WATCHDOG_CYCLES: u64 = 50_000;

/// The engine executing the run (both implement identical semantics; see
/// [`SimCore`]).
enum Engine {
    Ticking(Box<Network>),
    Event(Box<EventNetwork>),
}

impl Engine {
    fn step(&mut self, cycle: u64) {
        match self {
            Engine::Ticking(n) => n.step(cycle),
            Engine::Event(n) => n.step(cycle),
        }
    }

    fn take_delivered(&mut self) -> Vec<Message> {
        match self {
            Engine::Ticking(n) => n.take_delivered(),
            Engine::Event(n) => n.take_delivered(),
        }
    }

    fn queue_saturated(&self, limit: usize) -> bool {
        match self {
            Engine::Ticking(n) => n.max_source_queue() > limit,
            Engine::Event(n) => n.queue_saturated(limit),
        }
    }

    fn counters(&self) -> &NetworkCounters {
        match self {
            Engine::Ticking(n) => n.counters(),
            Engine::Event(n) => n.counters(),
        }
    }

    fn outstanding_messages(&self) -> usize {
        match self {
            Engine::Ticking(n) => n.outstanding_messages(),
            Engine::Event(n) => n.outstanding_messages(),
        }
    }

    fn observed_multiplexing(&self) -> f64 {
        match self {
            Engine::Ticking(n) => n.observed_multiplexing(),
            Engine::Event(n) => n.observed_multiplexing(),
        }
    }

    /// `Some(next arrival)` when the engine knows the network is idle and can
    /// prove every cycle before the next scheduled arrival is a no-op;
    /// `Some(None)` when idle with no arrival ever coming; `None` when the
    /// engine cannot fast-forward (busy, or the ticking engine).
    fn idle_until(&mut self) -> Option<Option<u64>> {
        match self {
            Engine::Ticking(_) => None,
            Engine::Event(n) => n.is_idle().then(|| n.next_scheduled_arrival()),
        }
    }
}

/// A complete simulation experiment.
pub struct Simulation {
    engine: Engine,
    config: SimConfig,
    identity: RunIdentity,
}

impl Simulation {
    /// Builds a simulation for a topology, routing algorithm, configuration
    /// and traffic pattern.
    #[must_use]
    pub fn new(
        topology: Arc<dyn Topology>,
        routing: Arc<dyn RoutingAlgorithm>,
        config: SimConfig,
        pattern: TrafficPattern,
    ) -> Self {
        let identity = RunIdentity {
            topology: topology.name(),
            routing: routing.name(),
            virtual_channels: routing.virtual_channels(),
            node_count: topology.node_count(),
            channel_count: topology.channel_count(),
        };
        let engine = match config.core {
            SimCore::Ticking => {
                Engine::Ticking(Box::new(Network::new(topology, routing, config.clone(), pattern)))
            }
            SimCore::EventDriven => Engine::Event(Box::new(EventNetwork::new(
                topology,
                routing,
                config.clone(),
                pattern,
            ))),
        };
        Self { engine, config, identity }
    }

    /// Runs the experiment to completion and returns the report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let mut acc = MeasurementAccumulator::default();
        let mut cycle: u64 = 0;
        let mut saturated = false;
        let mut deadlock = false;
        let mut measurement_start_cycle = self.config.warmup_cycles;
        let mut measurement_cycles: u64 = 0;

        while cycle < self.config.max_cycles {
            // Idle fast-forward (event engine only).  While the network is
            // empty no break condition below can change state — queues are
            // empty, no message is outstanding, the accumulator is frozen —
            // so jumping to the next arrival is exactly equivalent to
            // stepping the intervening cycles, except for the zero-traffic
            // exit, whose cycle accounting we mirror explicitly.
            if let Some(next_arrival) = self.engine.idle_until() {
                match next_arrival {
                    // Zero traffic (or a source horizon exhausted): nothing
                    // will ever happen.  The ticking loop exits this case at
                    // warmup + 1; land on the same cycle count.
                    None => {
                        cycle =
                            cycle.max(self.config.warmup_cycles + 1).min(self.config.max_cycles);
                        break;
                    }
                    Some(next) if next >= self.config.max_cycles => {
                        cycle = self.config.max_cycles;
                        break;
                    }
                    Some(next) => cycle = cycle.max(next),
                }
            }
            self.engine.step(cycle);
            for message in self.engine.take_delivered() {
                if message.measured {
                    acc.record(&message);
                }
            }
            // saturation: the source queues grow without bound
            if self.engine.queue_saturated(self.config.saturation_queue_limit) {
                saturated = true;
                cycle += 1;
                break;
            }
            // deadlock watchdog
            let counters = self.engine.counters();
            if self.engine.outstanding_messages() > 0
                && counters.generated > 0
                && cycle > counters.last_transfer_cycle + DEADLOCK_WATCHDOG_CYCLES
            {
                deadlock = true;
                cycle += 1;
                break;
            }
            cycle += 1;
            if cycle == self.config.warmup_cycles {
                measurement_start_cycle = cycle;
            }
            if acc.count() >= self.config.measured_messages && self.config.measured_messages > 0 {
                break;
            }
            // nothing will ever happen with zero traffic
            if self.config.traffic_rate == 0.0 && cycle > self.config.warmup_cycles {
                break;
            }
        }
        if cycle > measurement_start_cycle {
            measurement_cycles = cycle - measurement_start_cycle;
        }
        // If we ran out of cycles before collecting the requested number of
        // measured messages the operating point is beyond saturation.
        if !saturated
            && self.config.measured_messages > 0
            && self.config.traffic_rate > 0.0
            && acc.count() < self.config.measured_messages
            && cycle >= self.config.max_cycles
        {
            saturated = true;
        }

        let outcome = RunOutcome {
            saturated,
            deadlock_detected: deadlock,
            cycles: cycle,
            measurement_cycles,
            observed_multiplexing: self.engine.observed_multiplexing(),
        };
        acc.into_report(&self.identity, &self.config, self.engine.counters(), outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::{Hypercube, StarGraph};
    use star_routing::{DeterministicMinimal, EnhancedNbc, Nbc};

    fn s4_config(rate: f64) -> SimConfig {
        SimConfig::builder()
            .message_length(8)
            .traffic_rate(rate)
            .warmup_cycles(2_000)
            .measured_messages(3_000)
            .max_cycles(400_000)
            .seed(42)
            .build()
    }

    #[test]
    fn low_load_latency_close_to_zero_load_bound() {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let report =
            Simulation::new(topology.clone(), routing, s4_config(0.002), TrafficPattern::Uniform)
                .run();
        assert!(!report.saturated);
        assert!(!report.deadlock_detected);
        assert!(report.measured_messages >= 3_000);
        let zero_load = 8.0 + topology.mean_distance();
        assert!(report.mean_message_latency >= zero_load - 1.5);
        assert!(
            report.mean_message_latency < zero_load * 2.0,
            "latency {} should stay near the zero-load bound {zero_load} at light load",
            report.mean_message_latency
        );
        assert!((report.mean_hops - topology.mean_distance()).abs() < 0.2);
        // accepted traffic tracks offered traffic below saturation
        assert!((report.accepted_rate - 0.002).abs() / 0.002 < 0.15);
    }

    #[test]
    fn latency_increases_with_load() {
        let topology = Arc::new(StarGraph::new(4));
        let mut last = 0.0;
        for &rate in &[0.002, 0.01, 0.02] {
            let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
            let report = Simulation::new(
                topology.clone(),
                routing,
                s4_config(rate),
                TrafficPattern::Uniform,
            )
            .run();
            assert!(!report.deadlock_detected);
            if !report.saturated {
                assert!(
                    report.mean_message_latency > last,
                    "latency must grow with load (rate {rate})"
                );
                last = report.mean_message_latency;
            }
        }
        assert!(last > 0.0);
    }

    #[test]
    fn heavy_overload_is_reported_as_saturated() {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let config = SimConfig::builder()
            .message_length(16)
            .traffic_rate(0.2)
            .warmup_cycles(1_000)
            .measured_messages(50_000)
            .max_cycles(60_000)
            .saturation_queue_limit(100)
            .seed(3)
            .build();
        let report = Simulation::new(topology, routing, config, TrafficPattern::Uniform).run();
        assert!(report.saturated);
        assert!(!report.deadlock_detected);
    }

    #[test]
    fn adaptive_beats_deterministic_at_moderate_load() {
        let topology = Arc::new(StarGraph::new(4));
        let adaptive = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
        let deterministic = Arc::new(DeterministicMinimal::for_topology(topology.as_ref(), 6));
        let config = SimConfig::builder()
            .message_length(16)
            .traffic_rate(0.035)
            .warmup_cycles(3_000)
            .measured_messages(4_000)
            .max_cycles(500_000)
            .seed(42)
            .build();
        let a =
            Simulation::new(topology.clone(), adaptive, config.clone(), TrafficPattern::Uniform)
                .run();
        let d =
            Simulation::new(topology.clone(), deterministic, config, TrafficPattern::Uniform).run();
        assert!(!a.deadlock_detected && !d.deadlock_detected);
        // the deterministic router either saturates or is slower
        assert!(
            d.saturated || d.mean_message_latency > a.mean_message_latency,
            "adaptive ({}) should beat deterministic ({})",
            a.mean_message_latency,
            d.mean_message_latency
        );
    }

    #[test]
    fn runs_on_the_hypercube_with_nbc() {
        let topology = Arc::new(Hypercube::new(4));
        let routing = Arc::new(Nbc::for_topology(topology.as_ref(), 4));
        let report =
            Simulation::new(topology, routing, s4_config(0.005), TrafficPattern::Uniform).run();
        assert!(!report.saturated);
        assert!(!report.deadlock_detected);
        assert!(report.measured_messages >= 3_000);
        assert!(report.mean_message_latency > 8.0);
    }

    #[test]
    fn zero_traffic_terminates_quickly_and_reports_nothing() {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let config = SimConfig::builder()
            .traffic_rate(0.0)
            .warmup_cycles(10)
            .measured_messages(10)
            .max_cycles(1_000_000)
            .build();
        let report = Simulation::new(topology, routing, config, TrafficPattern::Uniform).run();
        assert_eq!(report.measured_messages, 0);
        assert!(report.cycles < 1_000);
        assert!(!report.deadlock_detected);
    }

    #[test]
    fn hotspot_traffic_is_slower_than_uniform() {
        let topology = Arc::new(StarGraph::new(4));
        let rate = 0.01;
        let uniform = Simulation::new(
            topology.clone(),
            Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6)),
            s4_config(rate),
            TrafficPattern::Uniform,
        )
        .run();
        let hotspot = Simulation::new(
            topology.clone(),
            Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6)),
            s4_config(rate),
            TrafficPattern::HotSpot { node: 0, fraction: 0.4 },
        )
        .run();
        assert!(hotspot.saturated || hotspot.mean_message_latency > uniform.mean_message_latency);
    }
}
