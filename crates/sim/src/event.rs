//! The event-driven simulator engine.
//!
//! [`EventNetwork`] implements the *identical* per-cycle router semantics as
//! the ticking [`Network`](crate::network::Network) — same five stages, same
//! RNG draw order, same counters — but finds the work of a cycle through
//! active-entity sets instead of scanning every channel of every node:
//!
//! * **Generation** is event-scheduled: each node's next Poisson arrival
//!   cycle sits on an [`EventCalendar`] (computed with
//!   [`PoissonProcess::next_arrival_cycle`], which evaluates the same float
//!   predicate as the per-cycle poll), so idle sources cost nothing.
//! * **Injection** iterates only nodes with a non-empty source queue.
//! * **Routing** iterates only input VCs holding an unrouted header.  Blocked
//!   headers stay in the set and retry every cycle — exactly like the
//!   ticking scan, which is what keeps the blocking counters and the shared
//!   selection-RNG draw order identical.
//! * **Switch allocation** iterates only physical channels with at least one
//!   owned output VC.
//! * When nothing at all is in flight, the driver can fast-forward straight
//!   to the next scheduled arrival ([`EventNetwork::is_idle`] /
//!   [`EventNetwork::next_scheduled_arrival`]) — cycles a ticking loop must
//!   burn one by one.
//!
//! Stages with an empty work set are **skipped outright** inside
//! [`EventNetwork::step`]: no pending headers means `route_and_allocate`
//! costs one branch, no active channels skips `switch_and_transfer`, no
//! staged work skips `apply_staged`.  Each skip is counted per stage
//! ([`StageSkips`](crate::network::StageSkips)) with definitions the ticking
//! engine evaluates identically, so the counters ride inside the
//! byte-identity contract rather than around it.
//!
//! # Determinism / equivalence invariants
//!
//! The engine is pinned **byte-identical** to the ticking engine (see
//! `tests/sim_equivalence.rs`).  That rests on four ordering facts:
//!
//! 1. The active sets are dense-index [`ActiveSet`] bitsets whose ascending
//!    iteration order equals the ticking engine's scan order (node-major,
//!    then network ports before injection slots, then VC), so the shared
//!    `dest_rng`/`select_rng` streams are consumed in the same order.
//! 2. Staged arrivals and credits are pushed in that same scan order, so
//!    end-of-cycle application — and with it the float summation order of
//!    the measurement statistics — is unchanged.
//! 3. Busy-VC occupancy is maintained incrementally (`Σb` and `Σb²` updated
//!    on allocate/release) and sampled on the same cycles; skipped idle
//!    cycles contribute zero to both sums, exactly as an all-free scan
//!    would.
//! 4. A message releases every virtual channel it owned in the very cycle
//!    its tail is consumed (credits return through the same-cycle staged
//!    drain), so "no messages outstanding" really means "no channel state
//!    anywhere" and fast-forwarding cannot skip latent work.
//!
//! Channel state lives in struct-of-arrays tables ([`InputVcTable`],
//! [`OutputVcTable`]) and messages in a dense [`MessageStore`] slab, so the
//! per-flit hot path is vector indexing only.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use star_graph::{NodeId, Topology};
use star_queueing::sampling::{seeded_rng, PoissonProcess};
use star_routing::{CandidateVc, RoutingAlgorithm};

use crate::activeset::ActiveSet;
use crate::calendar::EventCalendar;
use crate::channel::{InputVcTable, OutputVcTable};
use crate::config::{SelectionPolicy, SimConfig};
use crate::message::{Message, MessageId, MessageStore};
use crate::network::NetworkCounters;
use crate::traffic::TrafficPattern;

/// A staged flit arrival, applied at the end of the cycle.  `port` is the
/// *input* port at the arriving node.
#[derive(Debug, Clone, Copy)]
struct StagedArrival {
    node: NodeId,
    port: usize,
    vc: usize,
    slot: u32,
}

/// The event-driven network state (see the module docs for the invariants).
pub struct EventNetwork {
    topology: Arc<dyn Topology>,
    routing: Arc<dyn RoutingAlgorithm>,
    config: SimConfig,
    pattern: TrafficPattern,
    nodes: usize,
    degree: usize,
    vcs: usize,
    inj_slots: usize,
    input_stride: usize,
    inputs: InputVcTable,
    outputs: OutputVcTable,
    rr_pointers: Vec<usize>,
    source_queues: Vec<VecDeque<u32>>,
    messages: MessageStore,
    next_message_id: MessageId,
    sources: Vec<PoissonProcess>,
    /// Next generation cycle per node, keyed by node id.
    arrivals: EventCalendar,
    dest_rng: StdRng,
    select_rng: StdRng,
    staged_arrivals: Vec<StagedArrival>,
    staged_credits: Vec<usize>,
    delivered: Vec<Message>,
    counters: NetworkCounters,
    /// Nodes with a non-empty source queue, ascending.
    queued_nodes: ActiveSet,
    /// Input VCs holding an unrouted header, by global input index ascending
    /// (== the ticking engine's routing scan order).
    pending_headers: ActiveSet,
    /// Physical channels (`node * degree + port`) with ≥ 1 owned output VC,
    /// ascending (== the ticking engine's switch scan order).
    active_channels: ActiveSet,
    /// Owned-VC count per physical channel (the busy count the occupancy
    /// sampler observes).
    owned_vcs: Vec<u32>,
    /// Current `Σ busy` over all physical channels.
    busy_sum: u64,
    /// Current `Σ busy²` over all physical channels.
    busy_sq_sum: u64,
    /// Cycles actually processed by [`Self::step`] (excludes fast-forwarded
    /// idle cycles).
    processed_cycles: u64,
    scratch: Vec<u32>,
    /// Reused buffer for the free admissible candidates of one header —
    /// avoids a heap allocation per routed header on the hot path.
    free_scratch: Vec<CandidateVc>,
    /// Reused buffer for the selection policy's filtered candidate subset.
    select_scratch: Vec<CandidateVc>,
}

impl EventNetwork {
    /// Builds the event-driven network state for a topology, routing
    /// algorithm and configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the topology's
    /// [`reverse_port`](Topology::reverse_port) mapping does not invert its
    /// links (the same contract the ticking engine asserts).
    #[must_use]
    pub fn new(
        topology: Arc<dyn Topology>,
        routing: Arc<dyn RoutingAlgorithm>,
        config: SimConfig,
        pattern: TrafficPattern,
    ) -> Self {
        config.validate();
        let nodes = topology.node_count();
        let degree = topology.degree();
        let vcs = routing.virtual_channels();
        let inj_slots = if config.injection_slots == 0 { vcs } else { config.injection_slots };
        for node in 0..nodes as NodeId {
            for port in 0..degree {
                let nb = topology.neighbor(node, port);
                assert_eq!(
                    topology.neighbor(nb, topology.reverse_port(node, port)),
                    node,
                    "reverse_port must lead back across the link"
                );
            }
        }
        let input_stride = degree * vcs + inj_slots;
        let sources: Vec<PoissonProcess> = (0..nodes)
            .map(|node| PoissonProcess::new(config.traffic_rate, config.seed, node as u64))
            .collect();
        let mut arrivals = EventCalendar::new(nodes);
        for (node, source) in sources.iter().enumerate() {
            if let Some(cycle) = source.next_arrival_cycle() {
                arrivals.schedule(node as u32, cycle);
            }
        }
        let dest_rng = seeded_rng(config.seed, 0xDE57_1A71);
        let select_rng = seeded_rng(config.seed, 0x5E1E_C700);
        let buffer_depth = u32::try_from(config.buffer_depth).expect("buffer depth fits u32");
        Self {
            inputs: InputVcTable::new(nodes * input_stride),
            outputs: OutputVcTable::new(nodes * degree * vcs, buffer_depth),
            rr_pointers: vec![0; nodes * degree],
            source_queues: vec![VecDeque::new(); nodes],
            messages: MessageStore::new(),
            next_message_id: 0,
            sources,
            arrivals,
            dest_rng,
            select_rng,
            staged_arrivals: Vec::new(),
            staged_credits: Vec::new(),
            delivered: Vec::new(),
            counters: NetworkCounters::default(),
            queued_nodes: ActiveSet::new(nodes),
            pending_headers: ActiveSet::new(nodes * input_stride),
            active_channels: ActiveSet::new(nodes * degree),
            owned_vcs: vec![0; nodes * degree],
            busy_sum: 0,
            busy_sq_sum: 0,
            processed_cycles: 0,
            scratch: Vec::new(),
            free_scratch: Vec::new(),
            select_scratch: Vec::new(),
            topology,
            routing,
            config,
            pattern,
            nodes,
            degree,
            vcs,
            inj_slots,
            input_stride,
        }
    }

    #[inline]
    fn in_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        debug_assert!(port < self.degree && vc < self.vcs);
        node as usize * self.input_stride + port * self.vcs + vc
    }

    #[inline]
    fn inj_idx(&self, node: NodeId, slot: usize) -> usize {
        debug_assert!(slot < self.inj_slots);
        node as usize * self.input_stride + self.degree * self.vcs + slot
    }

    #[inline]
    fn out_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        debug_assert!(port < self.degree && vc < self.vcs);
        (node as usize * self.degree + port) * self.vcs + vc
    }

    /// Index of the input VC that `(node, in_port, in_vc)` denotes, where
    /// `in_port == degree` means an injection slot.
    #[inline]
    fn source_input_idx(&self, node: NodeId, in_port: usize, in_vc: usize) -> usize {
        if in_port == self.degree {
            self.inj_idx(node, in_vc)
        } else {
            self.in_idx(node, in_port, in_vc)
        }
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// Aggregate counters.  `busy_vc_samples` counts every (channel, sample)
    /// pair of *processed* cycles; on skipped idle cycles all channels are
    /// free, so `busy_vc_sum`/`busy_vc_sq_sum` (the quantities the reports
    /// derive from) match the ticking engine exactly.
    #[must_use]
    pub fn counters(&self) -> &NetworkCounters {
        &self.counters
    }

    /// Number of messages currently in flight or queued.
    #[must_use]
    pub fn outstanding_messages(&self) -> usize {
        self.messages.len()
    }

    /// Whether any source queue exceeds `limit` flits.  Only queued nodes
    /// are scanned — a node outside the queued-node set has an empty
    /// queue — so the check costs activity, not network size.
    #[must_use]
    pub fn queue_saturated(&self, limit: usize) -> bool {
        self.queued_nodes.iter().any(|node| self.source_queues[node as usize].len() > limit)
    }

    /// Cycles actually processed by [`Self::step`]; the gap to the driver's
    /// cycle count is the idle time fast-forwarded over.
    #[must_use]
    pub fn processed_cycles(&self) -> u64 {
        self.processed_cycles
    }

    /// Whether nothing at all is in flight: no queued, injected or routed
    /// message and no channel still draining.  While idle, every future
    /// cycle up to the next scheduled arrival is a provable no-op.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        let idle = self.messages.is_empty();
        debug_assert!(
            !idle
                || (self.queued_nodes.is_empty()
                    && self.pending_headers.is_empty()
                    && self.active_channels.is_empty()
                    && self.busy_sum == 0),
            "channel state must drain in the delivery cycle of the last message"
        );
        idle
    }

    /// The next cycle with a scheduled source arrival, `None` when no
    /// arrival is pending (zero traffic rate).
    pub fn next_scheduled_arrival(&mut self) -> Option<u64> {
        self.arrivals.next_time()
    }

    /// Drains the messages delivered during the last call to [`Self::step`].
    pub fn take_delivered(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.delivered)
    }

    /// Advances the network by one cycle (same stage order as the ticking
    /// engine), skipping every stage whose work set is empty.
    ///
    /// Each skip costs one branch on the corresponding active set; the flags
    /// also feed [`NetworkCounters::record_stage_activity`], sampled at the
    /// same stage-entry points the ticking engine samples, so the skip
    /// counters are byte-identical across engines.
    pub fn step(&mut self, cycle: u64) {
        self.processed_cycles += 1;
        let generation_due = self.arrivals.has_due(cycle);
        if generation_due {
            self.generate_messages(cycle);
        }
        let had_queued = !self.queued_nodes.is_empty();
        if had_queued {
            self.fill_injection_slots();
        }
        let had_pending = !self.pending_headers.is_empty();
        if had_pending {
            self.route_and_allocate(cycle);
        }
        let had_owned = !self.active_channels.is_empty();
        if had_owned {
            self.switch_and_transfer(cycle);
        }
        let had_staged = !self.staged_arrivals.is_empty() || !self.staged_credits.is_empty();
        if had_staged {
            self.apply_staged(cycle);
        }
        self.counters.record_stage_activity(
            generation_due,
            had_queued,
            had_pending,
            had_owned,
            had_staged,
        );
        if cycle % 8 == 0 {
            self.counters.busy_vc_sum += self.busy_sum;
            self.counters.busy_vc_sq_sum += self.busy_sq_sum;
            self.counters.busy_vc_samples += (self.nodes * self.degree) as u64;
        }
    }

    fn generate_messages(&mut self, cycle: u64) {
        let mut due = std::mem::take(&mut self.scratch);
        due.clear();
        self.arrivals.pop_due_into(cycle, &mut due);
        // ascending node order == the ticking engine's generation scan order,
        // which fixes the draw order on the shared destination RNG
        due.sort_unstable();
        for &node in &due {
            let count = self.sources[node as usize].arrivals_at(cycle);
            debug_assert!(count > 0, "scheduled arrival events always fire");
            for _ in 0..count {
                let dest =
                    self.pattern.pick_destination(self.topology.as_ref(), node, &mut self.dest_rng);
                let id = self.next_message_id;
                self.next_message_id += 1;
                let measured = cycle >= self.config.warmup_cycles;
                let slot = self.messages.insert(Message::new(
                    id,
                    node,
                    dest,
                    self.config.message_length,
                    cycle,
                    measured,
                ));
                self.source_queues[node as usize].push_back(slot);
                self.counters.generated += 1;
            }
            self.queued_nodes.insert(node);
            if let Some(next) = self.sources[node as usize].next_arrival_cycle() {
                self.arrivals.schedule(node, next);
            }
        }
        self.scratch = due;
    }

    fn fill_injection_slots(&mut self) {
        let mut nodes = std::mem::take(&mut self.scratch);
        self.queued_nodes.collect_into(&mut nodes);
        for &node in &nodes {
            for slot in 0..self.inj_slots {
                let idx = self.inj_idx(node, slot);
                if !self.inputs.is_free(idx) {
                    continue;
                }
                let Some(msg_slot) = self.source_queues[node as usize].pop_front() else { break };
                let length = self.config.message_length as u32;
                self.inputs.claim_for_injection(idx, msg_slot, length);
                self.pending_headers.insert(idx as u32);
            }
            if self.source_queues[node as usize].is_empty() {
                self.queued_nodes.remove(node);
            }
        }
        self.scratch = nodes;
    }

    fn route_and_allocate(&mut self, cycle: u64) {
        let layout = self.routing.layout();
        let mut pending = std::mem::take(&mut self.scratch);
        // ascending input-VC index == node-major, network ports before
        // injection slots — the ticking engine's routing scan order
        self.pending_headers.collect_into(&mut pending);
        let mut free = std::mem::take(&mut self.free_scratch);
        let mut subset = std::mem::take(&mut self.select_scratch);
        for &idx32 in &pending {
            let idx = idx32 as usize;
            let node = (idx / self.input_stride) as NodeId;
            let rem = idx % self.input_stride;
            let (in_port, in_vc) = if rem < self.degree * self.vcs {
                (rem / self.vcs, rem % self.vcs)
            } else {
                (self.degree, rem - self.degree * self.vcs)
            };
            debug_assert!(self.inputs.buffered(idx) > 0, "pending headers are buffered");
            let slot = self.inputs.owner(idx).expect("pending input VC has an owner");
            let (dest, state, length) = {
                let msg = self.messages.get(slot);
                (msg.dest, msg.routing, msg.length)
            };
            debug_assert_ne!(node, dest, "flits at the destination are consumed, not routed");
            self.counters.header_allocation_attempts += 1;
            let candidates = self.routing.candidates(self.topology.as_ref(), node, dest, &state);
            free.clear();
            free.extend(
                candidates
                    .iter()
                    .copied()
                    .filter(|c| self.outputs.is_free(self.out_idx(node, c.port, c.vc))),
            );
            if free.is_empty() {
                self.counters.blocked_header_cycles += 1;
                continue;
            }
            // the filtered subsets feeding `choose` have the same contents
            // (and so the same lengths) as the per-header Vecs they replace,
            // which keeps the select_rng draw sequence unchanged
            let choice = match self.config.selection {
                SelectionPolicy::FirstFree => free[0],
                SelectionPolicy::Random => *free.choose(&mut self.select_rng).expect("non-empty"),
                SelectionPolicy::AdaptiveFirst => {
                    subset.clear();
                    subset.extend(free.iter().copied().filter(|c| layout.is_adaptive(c.vc)));
                    if subset.is_empty() {
                        let min_vc = free.iter().map(|c| c.vc).min().expect("non-empty");
                        subset.extend(free.iter().copied().filter(|c| c.vc == min_vc));
                    }
                    *subset.choose(&mut self.select_rng).expect("non-empty")
                }
            };
            let out = self.out_idx(node, choice.port, choice.vc);
            self.outputs.allocate(out, slot, (in_port, in_vc), length as u32);
            self.inputs.set_route(idx, choice.port, choice.vc);
            self.pending_headers.remove(idx32);
            // the channel gained an owned VC: update the active set and the
            // incremental occupancy sums (b → b + 1 adds 2b + 1 to Σb²)
            let chan = node as usize * self.degree + choice.port;
            let busy = self.owned_vcs[chan];
            if busy == 0 {
                self.active_channels.insert(chan as u32);
            }
            self.owned_vcs[chan] = busy + 1;
            self.busy_sum += 1;
            self.busy_sq_sum += 2 * u64::from(busy) + 1;
            let next = self.topology.neighbor(node, choice.port);
            let escape_level = if layout.is_adaptive(choice.vc) {
                None
            } else {
                Some(choice.vc - layout.adaptive)
            };
            let msg = self.messages.get_mut(slot);
            msg.routing = msg.routing.after_hop(self.topology.as_ref(), node, next, escape_level);
            if msg.injected_at.is_none() {
                msg.injected_at = Some(cycle);
            }
        }
        self.scratch = pending;
        self.free_scratch = free;
        self.select_scratch = subset;
    }

    fn switch_and_transfer(&mut self, cycle: u64) {
        let mut channels = std::mem::take(&mut self.scratch);
        // ascending physical-channel index == node-major, port-major — the
        // ticking engine's switch scan order, which fixes the order staged
        // arrivals (and so delivered messages) are produced in
        self.active_channels.collect_into(&mut channels);
        for &chan in &channels {
            let node = (chan as usize / self.degree) as NodeId;
            let port = chan as usize % self.degree;
            let rr_idx = chan as usize;
            let start = self.rr_pointers[rr_idx];
            for offset in 0..self.vcs {
                let vc = (start + offset) % self.vcs;
                let out = self.out_idx(node, port, vc);
                // a VC whose tail has been sent keeps its allocation until
                // the downstream buffer drains, but never pulls more flits
                if !self.outputs.ready_to_send(out) {
                    continue;
                }
                let source = self.outputs.source(out).expect("allocated output VC has a source");
                let src_idx = self.source_input_idx(node, source.0, source.1);
                if self.inputs.buffered(src_idx) == 0 {
                    continue;
                }
                // --- transfer one flit ---
                self.inputs.pop_flit(src_idx);
                if source.0 < self.degree {
                    // return a credit to the upstream output VC feeding this
                    // input
                    let upstream_node = self.topology.neighbor(node, source.0);
                    let upstream_port = self.topology.reverse_port(node, source.0);
                    let upstream = self.out_idx(upstream_node, upstream_port, source.1);
                    self.staged_credits.push(upstream);
                }
                let slot = self.outputs.owner(out).expect("ready output VC has an owner");
                let length = self.messages.get(slot).length as u32;
                self.outputs.send_flit(out);
                // release the input VC once its tail has moved on
                if self.inputs.received(src_idx) == length && self.inputs.buffered(src_idx) == 0 {
                    self.inputs.release(src_idx);
                }
                let downstream = self.topology.neighbor(node, port);
                self.staged_arrivals.push(StagedArrival {
                    node: downstream,
                    port: self.topology.reverse_port(node, port),
                    vc,
                    slot,
                });
                self.counters.flit_transfers += 1;
                self.counters.last_transfer_cycle = cycle;
                self.rr_pointers[rr_idx] = (vc + 1) % self.vcs;
                break;
            }
        }
        self.scratch = channels;
    }

    fn apply_staged(&mut self, cycle: u64) {
        let arrivals = std::mem::take(&mut self.staged_arrivals);
        for arrival in arrivals {
            let dest = self.messages.get(arrival.slot).dest;
            if arrival.node == dest {
                // consumed by the local processor immediately; the buffer
                // slot is never occupied, so the credit flows straight back
                let upstream_node = self.topology.neighbor(arrival.node, arrival.port);
                let upstream_port = self.topology.reverse_port(arrival.node, arrival.port);
                let upstream = self.out_idx(upstream_node, upstream_port, arrival.vc);
                self.staged_credits.push(upstream);
                let finished = {
                    let msg = self.messages.get_mut(arrival.slot);
                    msg.flits_consumed += 1;
                    msg.flits_consumed == msg.length
                };
                if finished {
                    let mut msg = self.messages.remove(arrival.slot);
                    msg.delivered_at = Some(cycle + 1);
                    self.delivered.push(msg);
                }
            } else {
                let idx = self.in_idx(arrival.node, arrival.port, arrival.vc);
                if self.inputs.is_free(idx) {
                    self.inputs.claim_for_arrival(idx, arrival.slot);
                    // an unrouted header is now buffered here; it competes
                    // in the routing stage from the next cycle on
                    self.pending_headers.insert(idx as u32);
                }
                debug_assert_eq!(
                    self.inputs.owner(idx),
                    Some(arrival.slot),
                    "one message per virtual channel"
                );
                self.inputs.push_flit(idx);
            }
        }
        let credits = std::mem::take(&mut self.staged_credits);
        let buffer_depth = self.config.buffer_depth as u32;
        for out in credits {
            self.outputs.return_credit(out);
            debug_assert!(self.outputs.credits(out) <= buffer_depth);
            // a VC returns to the idle pool once its tail has been sent and
            // the downstream buffer has fully drained
            if self.outputs.tail_sent(out) && self.outputs.credits(out) == buffer_depth {
                self.outputs.release(out);
                let chan = out / self.vcs;
                let busy = self.owned_vcs[chan];
                debug_assert!(busy > 0);
                self.owned_vcs[chan] = busy - 1;
                self.busy_sum -= 1;
                self.busy_sq_sum -= 2 * u64::from(busy) - 1;
                if busy == 1 {
                    self.active_channels.remove(chan as u32);
                }
            }
        }
    }

    /// Observed average degree of virtual-channel multiplexing (same
    /// definition as the ticking engine's).
    #[must_use]
    pub fn observed_multiplexing(&self) -> f64 {
        if self.counters.busy_vc_sum == 0 {
            1.0
        } else {
            self.counters.busy_vc_sq_sum as f64 / self.counters.busy_vc_sum as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use star_graph::StarGraph;
    use star_routing::EnhancedNbc;

    fn config(rate: f64, seed: u64) -> SimConfig {
        SimConfig::builder()
            .message_length(8)
            .traffic_rate(rate)
            .warmup_cycles(0)
            .measured_messages(100)
            .max_cycles(100_000)
            .seed(seed)
            .build()
    }

    fn pair(rate: f64, seed: u64) -> (Network, EventNetwork) {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let ticking = Network::new(
            topology.clone(),
            routing.clone(),
            config(rate, seed),
            TrafficPattern::Uniform,
        );
        let event =
            EventNetwork::new(topology, routing, config(rate, seed), TrafficPattern::Uniform);
        (ticking, event)
    }

    #[test]
    fn stepping_both_engines_every_cycle_is_byte_identical() {
        // The strongest form of the equivalence contract at the network
        // level: same deliveries in the same order with the same
        // timestamps, same counters, same occupancy statistics.
        for &(rate, seed) in &[(0.01, 7u64), (0.03, 11), (0.06, 3)] {
            let (mut ticking, mut event) = pair(rate, seed);
            let mut delivered_t = Vec::new();
            let mut delivered_e = Vec::new();
            for cycle in 0..12_000 {
                ticking.step(cycle);
                event.step(cycle);
                delivered_t.extend(
                    ticking.take_delivered().into_iter().map(|m| (m.id, m.total_latency())),
                );
                delivered_e
                    .extend(event.take_delivered().into_iter().map(|m| (m.id, m.total_latency())));
            }
            assert_eq!(delivered_t, delivered_e, "rate {rate} seed {seed}");
            assert!(!delivered_t.is_empty());
            let (ct, ce) = (ticking.counters(), event.counters());
            assert_eq!(ct.generated, ce.generated);
            assert_eq!(ct.flit_transfers, ce.flit_transfers);
            assert_eq!(ct.blocked_header_cycles, ce.blocked_header_cycles);
            assert_eq!(ct.header_allocation_attempts, ce.header_allocation_attempts);
            assert_eq!(ct.busy_vc_sum, ce.busy_vc_sum);
            assert_eq!(ct.busy_vc_sq_sum, ce.busy_vc_sq_sum);
            assert_eq!(ct.last_transfer_cycle, ce.last_transfer_cycle);
            assert_eq!(ticking.observed_multiplexing(), event.observed_multiplexing());
            assert_eq!(ticking.outstanding_messages(), event.outstanding_messages());
        }
    }

    #[test]
    fn fast_forward_skips_idle_cycles_without_changing_results() {
        // Sparse traffic leaves long idle gaps between messages.  The ticking
        // engine must burn every one of those cycles; the event engine jumps
        // straight to the next scheduled arrival — and still produces the
        // same deliveries and counters.
        let horizon = 200_000u64;
        let (mut ticking, mut event) = pair(0.0001, 21);
        let mut delivered_t = Vec::new();
        for cycle in 0..horizon {
            ticking.step(cycle);
            delivered_t
                .extend(ticking.take_delivered().into_iter().map(|m| (m.id, m.total_latency())));
        }
        let mut delivered_e = Vec::new();
        let mut cycle = 0u64;
        while cycle < horizon {
            if event.is_idle() {
                match event.next_scheduled_arrival() {
                    Some(next) if next < horizon => cycle = cycle.max(next),
                    _ => break,
                }
            }
            event.step(cycle);
            delivered_e
                .extend(event.take_delivered().into_iter().map(|m| (m.id, m.total_latency())));
            cycle += 1;
        }
        assert_eq!(delivered_t, delivered_e);
        assert!(!delivered_t.is_empty());
        assert_eq!(ticking.counters().generated, event.counters().generated);
        assert_eq!(ticking.counters().flit_transfers, event.counters().flit_transfers);
        assert_eq!(ticking.counters().busy_vc_sum, event.counters().busy_vc_sum);
        assert_eq!(ticking.counters().busy_vc_sq_sum, event.counters().busy_vc_sq_sum);
        assert!(
            event.processed_cycles() * 3 < horizon,
            "at this rate most cycles are idle and must be skipped ({} of {horizon} processed)",
            event.processed_cycles()
        );
    }

    #[test]
    fn idle_network_is_reported_idle_and_reawakens_on_schedule() {
        let (_, mut event) = pair(0.0005, 5);
        assert!(event.is_idle(), "no arrivals yet at cycle 0");
        let first = event.next_scheduled_arrival().expect("positive rate schedules arrivals");
        // stepping exactly at the scheduled cycle generates work
        event.step(first);
        assert!(!event.is_idle());
        assert_eq!(event.counters().generated, 1);
    }

    #[test]
    fn zero_rate_schedules_nothing() {
        let (_, mut event) = pair(0.0, 9);
        assert!(event.is_idle());
        assert_eq!(event.next_scheduled_arrival(), None);
        event.step(0);
        assert_eq!(event.counters().generated, 0);
        assert_eq!(event.counters().flit_transfers, 0);
    }
}
