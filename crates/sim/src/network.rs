//! The cycle-accurate network state and its per-cycle update.
//!
//! The router model follows the classic wormhole pipeline, evaluated once per
//! cycle for every node:
//!
//! 1. **Generation** — each node's Poisson source may append messages to the
//!    local source queue.
//! 2. **Injection** — queued messages claim free injection slots (up to `V`
//!    per node by default), from which their flits are supplied.
//! 3. **Routing & virtual-channel allocation** — every occupied input virtual
//!    channel whose header has not yet been routed asks the routing algorithm
//!    for its admissible `(port, vc)` candidates and tries to allocate a free
//!    output virtual channel.
//! 4. **Switch allocation & flit transfer** — every output physical channel
//!    forwards at most one flit per cycle, chosen round-robin among its
//!    virtual channels that have a flit ready and a downstream credit.
//! 5. **End of cycle** — staged flit arrivals, credit returns and message
//!    deliveries are applied, so a flit moves at most one hop per cycle.
//!
//! Flits arriving at their destination are consumed immediately (the paper's
//! ejection-channel assumption), and messages whose tail has been consumed are
//! reported to the driving [`Simulation`](crate::sim::Simulation).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use serde::{Deserialize, Serialize};
use star_graph::{NodeId, Topology};
use star_queueing::sampling::{seeded_rng, PoissonProcess};
use star_routing::RoutingAlgorithm;

use crate::channel::{InputVc, OutputVc};
use crate::config::{SelectionPolicy, SimConfig};
use crate::message::{Message, MessageId};
use crate::traffic::TrafficPattern;

/// A staged flit arrival, applied at the end of the cycle.  `port` is the
/// *input* port at the arriving node (`reverse_port` of the sender's output
/// port).
#[derive(Debug, Clone, Copy)]
struct StagedArrival {
    node: NodeId,
    port: usize,
    vc: usize,
    message: MessageId,
}

/// Per-stage skip counters: how many *active* cycles found a given pipeline
/// stage with an empty work set.
///
/// Both engines account these identically from the same per-cycle facts —
/// "did this stage have any work when it started?" — so the counters are
/// part of the byte-identity contract even though only the event-driven
/// engine turns an empty stage into an actual skipped branch.  Cycles where
/// *every* stage is empty (a fully idle network) count nothing: the event
/// engine fast-forwards over them while the ticking engine burns them, and
/// the contract must not see the difference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSkips {
    /// Active cycles with no source arrival due (`generate_messages` empty).
    pub generation: u64,
    /// Active cycles with every source queue empty (`fill_injection_slots`
    /// empty).
    pub injection: u64,
    /// Active cycles with no unrouted header pending (`route_and_allocate`
    /// empty).
    pub routing: u64,
    /// Active cycles with no owned output VC anywhere (`switch_and_transfer`
    /// empty).
    pub switching: u64,
    /// Active cycles with no staged arrival or credit (`apply_staged` empty).
    pub staged: u64,
}

impl StageSkips {
    /// Total stage skips across all five stages.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.generation + self.injection + self.routing + self.switching + self.staged
    }
}

/// Aggregate counters maintained by the network while it runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkCounters {
    /// Messages generated so far.
    pub generated: u64,
    /// Flit transfers on network channels so far.
    pub flit_transfers: u64,
    /// Header allocation attempts that found no free admissible channel.
    pub blocked_header_cycles: u64,
    /// Header allocation attempts in total.
    pub header_allocation_attempts: u64,
    /// Sum of busy-VC counts over sampled physical channels.
    pub busy_vc_sum: u64,
    /// Sum of squared busy-VC counts over sampled physical channels.
    pub busy_vc_sq_sum: u64,
    /// Number of (channel, sample) observations taken.
    pub busy_vc_samples: u64,
    /// Cycle at which the last flit transfer happened (deadlock watchdog).
    pub last_transfer_cycle: u64,
    /// Cycles in which at least one pipeline stage had work.
    pub active_cycles: u64,
    /// Per-stage skip counts over the active cycles.
    pub stage_skips: StageSkips,
}

impl NetworkCounters {
    /// Folds one cycle's stage-activity facts into `active_cycles` and
    /// `stage_skips`.  Each flag says whether the stage had any work when it
    /// started; a cycle with no work anywhere is idle and counts nothing.
    /// Both engines call this with identically defined flags, which is what
    /// keeps the counters inside the byte-identity contract.
    pub fn record_stage_activity(
        &mut self,
        generation: bool,
        injection: bool,
        routing: bool,
        switching: bool,
        staged: bool,
    ) {
        if !(generation || injection || routing || switching || staged) {
            return;
        }
        self.active_cycles += 1;
        self.stage_skips.generation += u64::from(!generation);
        self.stage_skips.injection += u64::from(!injection);
        self.stage_skips.routing += u64::from(!routing);
        self.stage_skips.switching += u64::from(!switching);
        self.stage_skips.staged += u64::from(!staged);
    }
}

/// The full mutable state of the simulated network.
pub struct Network {
    topology: Arc<dyn Topology>,
    routing: Arc<dyn RoutingAlgorithm>,
    config: SimConfig,
    pattern: TrafficPattern,
    nodes: usize,
    degree: usize,
    vcs: usize,
    inj_slots: usize,
    input_stride: usize,
    input_vcs: Vec<InputVc>,
    output_vcs: Vec<OutputVc>,
    rr_pointers: Vec<usize>,
    source_queues: Vec<VecDeque<MessageId>>,
    messages: HashMap<MessageId, Message>,
    next_message_id: MessageId,
    sources: Vec<PoissonProcess>,
    dest_rng: StdRng,
    select_rng: StdRng,
    staged_arrivals: Vec<StagedArrival>,
    staged_credits: Vec<usize>,
    delivered: Vec<Message>,
    counters: NetworkCounters,
    /// Output VCs currently owned by a message, across the whole network —
    /// maintained on allocate/release so the stage-activity accounting can
    /// ask "did the switch stage have work?" without a scan.
    owned_outputs: u64,
}

impl Network {
    /// Builds the network state for a topology, routing algorithm and
    /// configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the topology's
    /// [`reverse_port`](Topology::reverse_port) mapping does not invert its
    /// links (all topologies in this workspace honour the contract).
    #[must_use]
    pub fn new(
        topology: Arc<dyn Topology>,
        routing: Arc<dyn RoutingAlgorithm>,
        config: SimConfig,
        pattern: TrafficPattern,
    ) -> Self {
        config.validate();
        let nodes = topology.node_count();
        let degree = topology.degree();
        let vcs = routing.virtual_channels();
        let inj_slots = if config.injection_slots == 0 { vcs } else { config.injection_slots };
        // The simulator routes credits upstream through reverse_port, so the
        // mapping must invert every link.
        for node in 0..nodes as NodeId {
            for port in 0..degree {
                let nb = topology.neighbor(node, port);
                assert_eq!(
                    topology.neighbor(nb, topology.reverse_port(node, port)),
                    node,
                    "reverse_port must lead back across the link"
                );
            }
        }
        let input_stride = degree * vcs + inj_slots;
        let input_vcs = vec![InputVc::default(); nodes * input_stride];
        let output_vcs = vec![OutputVc::new(config.buffer_depth); nodes * degree * vcs];
        let sources = (0..nodes)
            .map(|node| PoissonProcess::new(config.traffic_rate, config.seed, node as u64))
            .collect();
        let dest_rng = seeded_rng(config.seed, 0xDE57_1A71);
        let select_rng = seeded_rng(config.seed, 0x5E1E_C700);
        Self {
            topology,
            routing,
            config,
            pattern,
            nodes,
            degree,
            vcs,
            inj_slots,
            input_stride,
            input_vcs,
            output_vcs,
            rr_pointers: vec![0; nodes * degree],
            source_queues: vec![VecDeque::new(); nodes],
            messages: HashMap::new(),
            next_message_id: 0,
            sources,
            dest_rng,
            select_rng,
            staged_arrivals: Vec::new(),
            staged_credits: Vec::new(),
            delivered: Vec::new(),
            counters: NetworkCounters::default(),
            owned_outputs: 0,
        }
    }

    #[inline]
    fn in_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        debug_assert!(port < self.degree && vc < self.vcs);
        node as usize * self.input_stride + port * self.vcs + vc
    }

    #[inline]
    fn inj_idx(&self, node: NodeId, slot: usize) -> usize {
        debug_assert!(slot < self.inj_slots);
        node as usize * self.input_stride + self.degree * self.vcs + slot
    }

    #[inline]
    fn out_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        debug_assert!(port < self.degree && vc < self.vcs);
        (node as usize * self.degree + port) * self.vcs + vc
    }

    /// Index of the input VC that the given `(node, in_port, in_vc)` triple
    /// denotes, where `in_port == degree` means an injection slot.
    #[inline]
    fn source_input_idx(&self, node: NodeId, in_port: usize, in_vc: usize) -> usize {
        if in_port == self.degree {
            self.inj_idx(node, in_vc)
        } else {
            self.in_idx(node, in_port, in_vc)
        }
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn counters(&self) -> &NetworkCounters {
        &self.counters
    }

    /// Number of messages currently in flight or queued.
    #[must_use]
    pub fn outstanding_messages(&self) -> usize {
        self.messages.len()
    }

    /// Length of the longest source queue.
    #[must_use]
    pub fn max_source_queue(&self) -> usize {
        self.source_queues.iter().map(VecDeque::len).max().unwrap_or(0)
    }

    /// Total number of messages waiting in source queues.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.source_queues.iter().map(VecDeque::len).sum()
    }

    /// Drains the messages delivered during the last call to [`Self::step`].
    pub fn take_delivered(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.delivered)
    }

    /// Advances the network by one cycle.
    ///
    /// The stage-activity flags feeding
    /// [`NetworkCounters::record_stage_activity`] are sampled at each stage's
    /// entry, exactly where the event-driven engine tests its active sets, so
    /// both engines account identical skip counters.
    pub fn step(&mut self, cycle: u64) {
        let generated = self.generate_messages(cycle);
        let had_queued = self.source_queues.iter().any(|q| !q.is_empty());
        self.fill_injection_slots();
        let had_pending = self.route_and_allocate(cycle);
        let had_owned = self.owned_outputs > 0;
        self.switch_and_transfer(cycle);
        let had_staged = !self.staged_arrivals.is_empty() || !self.staged_credits.is_empty();
        self.apply_staged(cycle);
        self.counters.record_stage_activity(
            generated,
            had_queued,
            had_pending,
            had_owned,
            had_staged,
        );
        if cycle % 8 == 0 {
            self.sample_vc_occupancy();
        }
    }

    /// Returns whether any message was generated this cycle (the generation
    /// stage had work).
    fn generate_messages(&mut self, cycle: u64) -> bool {
        let mut generated = false;
        for node in 0..self.nodes as NodeId {
            let count = self.sources[node as usize].arrivals_at(cycle);
            generated |= count > 0;
            for _ in 0..count {
                let dest =
                    self.pattern.pick_destination(self.topology.as_ref(), node, &mut self.dest_rng);
                let id = self.next_message_id;
                self.next_message_id += 1;
                let measured = cycle >= self.config.warmup_cycles;
                let msg = Message::new(id, node, dest, self.config.message_length, cycle, measured);
                self.messages.insert(id, msg);
                self.source_queues[node as usize].push_back(id);
                self.counters.generated += 1;
            }
        }
        generated
    }

    fn fill_injection_slots(&mut self) {
        for node in 0..self.nodes as NodeId {
            if self.source_queues[node as usize].is_empty() {
                continue;
            }
            for slot in 0..self.inj_slots {
                let idx = self.inj_idx(node, slot);
                if !self.input_vcs[idx].is_free() {
                    continue;
                }
                let Some(id) = self.source_queues[node as usize].pop_front() else { break };
                self.input_vcs[idx].claim_for_injection(id, self.config.message_length);
            }
        }
    }

    /// Returns whether any unrouted header was pending this cycle (the
    /// routing stage had work).
    fn route_and_allocate(&mut self, cycle: u64) -> bool {
        let mut had_pending = false;
        let layout = self.routing.layout();
        for node in 0..self.nodes as NodeId {
            // network input ports first, then injection slots
            let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (in_port, in_vc, idx)
            for port in 0..self.degree {
                for vc in 0..self.vcs {
                    let idx = self.in_idx(node, port, vc);
                    let ivc = &self.input_vcs[idx];
                    if ivc.owner.is_some() && ivc.route.is_none() && ivc.buffered > 0 {
                        pending.push((port, vc, idx));
                    }
                }
            }
            for slot in 0..self.inj_slots {
                let idx = self.inj_idx(node, slot);
                let ivc = &self.input_vcs[idx];
                if ivc.owner.is_some() && ivc.route.is_none() && ivc.buffered > 0 {
                    pending.push((self.degree, slot, idx));
                }
            }
            had_pending |= !pending.is_empty();
            for (in_port, in_vc, idx) in pending {
                let msg_id = self.input_vcs[idx].owner.expect("pending input VC has an owner");
                let (dest, state) = {
                    let msg = self
                        .messages
                        .get(&msg_id)
                        .expect("input VC owners always reference in-flight messages");
                    (msg.dest, msg.routing)
                };
                debug_assert_ne!(node, dest, "flits at the destination are consumed, not routed");
                self.counters.header_allocation_attempts += 1;
                let candidates =
                    self.routing.candidates(self.topology.as_ref(), node, dest, &state);
                let free: Vec<_> = candidates
                    .iter()
                    .copied()
                    .filter(|c| self.output_vcs[self.out_idx(node, c.port, c.vc)].is_free())
                    .collect();
                if free.is_empty() {
                    self.counters.blocked_header_cycles += 1;
                    continue;
                }
                let choice = match self.config.selection {
                    SelectionPolicy::FirstFree => free[0],
                    SelectionPolicy::Random => {
                        *free.choose(&mut self.select_rng).expect("non-empty")
                    }
                    SelectionPolicy::AdaptiveFirst => {
                        let adaptive: Vec<_> =
                            free.iter().copied().filter(|c| layout.is_adaptive(c.vc)).collect();
                        if adaptive.is_empty() {
                            let min_vc = free.iter().map(|c| c.vc).min().expect("non-empty");
                            let lowest: Vec<_> =
                                free.iter().copied().filter(|c| c.vc == min_vc).collect();
                            *lowest.choose(&mut self.select_rng).expect("non-empty")
                        } else {
                            *adaptive.choose(&mut self.select_rng).expect("non-empty")
                        }
                    }
                };
                let out = self.out_idx(node, choice.port, choice.vc);
                let length = self.messages[&msg_id].length;
                self.output_vcs[out].allocate(msg_id, (in_port, in_vc), length);
                self.owned_outputs += 1;
                self.input_vcs[idx].route = Some((choice.port, choice.vc));
                // Update the message's routing state to reflect the hop it is
                // now committed to.
                let next = self.topology.neighbor(node, choice.port);
                let escape_level = if layout.is_adaptive(choice.vc) {
                    None
                } else {
                    Some(choice.vc - layout.adaptive)
                };
                let msg = self.messages.get_mut(&msg_id).expect("message exists");
                msg.routing =
                    msg.routing.after_hop(self.topology.as_ref(), node, next, escape_level);
                if msg.injected_at.is_none() {
                    msg.injected_at = Some(cycle);
                }
            }
        }
        had_pending
    }

    fn switch_and_transfer(&mut self, cycle: u64) {
        for node in 0..self.nodes as NodeId {
            for port in 0..self.degree {
                let rr_idx = node as usize * self.degree + port;
                let start = self.rr_pointers[rr_idx];
                for offset in 0..self.vcs {
                    let vc = (start + offset) % self.vcs;
                    let out = self.out_idx(node, port, vc);
                    let (msg_id, source) = {
                        let ovc = &self.output_vcs[out];
                        // An output VC whose tail has already been sent keeps
                        // its allocation until the downstream buffer drains,
                        // but it must never pull further flits (its source
                        // input VC may already belong to a new message).
                        match (ovc.owner, ovc.source) {
                            (Some(m), Some(s))
                                if ovc.credits > 0 && ovc.flits_sent < ovc.length =>
                            {
                                (m, s)
                            }
                            _ => continue,
                        }
                    };
                    let src_idx = self.source_input_idx(node, source.0, source.1);
                    if self.input_vcs[src_idx].buffered == 0 {
                        continue;
                    }
                    // --- transfer one flit ---
                    self.input_vcs[src_idx].buffered -= 1;
                    if source.0 < self.degree {
                        // return a credit to the upstream output VC feeding this input
                        let upstream_node = self.topology.neighbor(node, source.0);
                        let upstream_port = self.topology.reverse_port(node, source.0);
                        let upstream = self.out_idx(upstream_node, upstream_port, source.1);
                        self.staged_credits.push(upstream);
                    }
                    let length = self.messages[&msg_id].length;
                    {
                        // The output VC is *not* released yet even when this
                        // was the tail flit: it returns to the idle pool only
                        // once the downstream buffer has drained (all credits
                        // back), which `apply_staged` checks.
                        let ovc = &mut self.output_vcs[out];
                        ovc.credits -= 1;
                        ovc.flits_sent += 1;
                    }
                    // release the input VC once its tail has moved on
                    {
                        let ivc = &mut self.input_vcs[src_idx];
                        if ivc.received == length && ivc.buffered == 0 {
                            ivc.release();
                        }
                    }
                    let downstream = self.topology.neighbor(node, port);
                    self.staged_arrivals.push(StagedArrival {
                        node: downstream,
                        // the *input* port at the downstream router
                        port: self.topology.reverse_port(node, port),
                        vc,
                        message: msg_id,
                    });
                    self.counters.flit_transfers += 1;
                    self.counters.last_transfer_cycle = cycle;
                    self.rr_pointers[rr_idx] = (vc + 1) % self.vcs;
                    break;
                }
            }
        }
    }

    fn apply_staged(&mut self, cycle: u64) {
        let arrivals = std::mem::take(&mut self.staged_arrivals);
        for arrival in arrivals {
            let dest = self.messages[&arrival.message].dest;
            if arrival.node == dest {
                // consumed by the local processor immediately; the buffer slot
                // is never occupied, so the credit flows straight back
                let upstream_node = self.topology.neighbor(arrival.node, arrival.port);
                let upstream_port = self.topology.reverse_port(arrival.node, arrival.port);
                let upstream = self.out_idx(upstream_node, upstream_port, arrival.vc);
                self.staged_credits.push(upstream);
                let finished = {
                    let msg = self.messages.get_mut(&arrival.message).expect("in flight");
                    msg.flits_consumed += 1;
                    msg.flits_consumed == msg.length
                };
                if finished {
                    let mut msg = self.messages.remove(&arrival.message).expect("in flight");
                    msg.delivered_at = Some(cycle + 1);
                    self.delivered.push(msg);
                }
            } else {
                let idx = self.in_idx(arrival.node, arrival.port, arrival.vc);
                let ivc = &mut self.input_vcs[idx];
                if ivc.owner.is_none() {
                    ivc.owner = Some(arrival.message);
                    ivc.buffered = 0;
                    ivc.received = 0;
                    ivc.route = None;
                }
                debug_assert_eq!(
                    ivc.owner,
                    Some(arrival.message),
                    "one message per virtual channel"
                );
                ivc.buffered += 1;
                ivc.received += 1;
            }
        }
        let credits = std::mem::take(&mut self.staged_credits);
        for out in credits {
            let ovc = &mut self.output_vcs[out];
            ovc.credits += 1;
            debug_assert!(ovc.credits <= self.config.buffer_depth);
            // A virtual channel returns to the idle pool once its tail has
            // been sent and the downstream buffer has fully drained.
            if ovc.tail_sent() && ovc.credits == self.config.buffer_depth {
                ovc.release();
                self.owned_outputs -= 1;
            }
        }
    }

    fn sample_vc_occupancy(&mut self) {
        for node in 0..self.nodes as NodeId {
            for port in 0..self.degree {
                let busy = (0..self.vcs)
                    .filter(|&vc| self.output_vcs[self.out_idx(node, port, vc)].owner.is_some())
                    .count() as u64;
                self.counters.busy_vc_sum += busy;
                self.counters.busy_vc_sq_sum += busy * busy;
                self.counters.busy_vc_samples += 1;
            }
        }
    }

    /// Observed average degree of virtual-channel multiplexing
    /// (`Σ v² / Σ v` over the sampled busy-VC counts), 1.0 when no channel was
    /// ever busy.
    #[must_use]
    pub fn observed_multiplexing(&self) -> f64 {
        if self.counters.busy_vc_sum == 0 {
            1.0
        } else {
            self.counters.busy_vc_sq_sum as f64 / self.counters.busy_vc_sum as f64
        }
    }

    /// Consistency check used by tests and debug assertions: the number of
    /// flits buffered plus credits available on every channel never exceeds
    /// the buffer depth, and every owned output VC has an owning message.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn check_invariants(&self) {
        for node in 0..self.nodes as NodeId {
            for port in 0..self.degree {
                for vc in 0..self.vcs {
                    let out = &self.output_vcs[self.out_idx(node, port, vc)];
                    assert!(out.credits <= self.config.buffer_depth, "credit overflow");
                    let downstream = self.topology.neighbor(node, port);
                    let down_port = self.topology.reverse_port(node, port);
                    let ivc = &self.input_vcs[self.in_idx(downstream, down_port, vc)];
                    assert!(
                        ivc.buffered + out.credits <= self.config.buffer_depth,
                        "buffered flits plus credits exceed the buffer depth"
                    );
                    if let Some(owner) = out.owner {
                        assert!(
                            self.messages.contains_key(&owner),
                            "output VC owned by a vanished message"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::StarGraph;
    use star_routing::EnhancedNbc;

    fn small_network(rate: f64, seed: u64) -> Network {
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let config = SimConfig::builder()
            .message_length(8)
            .traffic_rate(rate)
            .buffer_depth(2)
            .warmup_cycles(0)
            .measured_messages(100)
            .max_cycles(100_000)
            .seed(seed)
            .build();
        Network::new(topology, routing, config, TrafficPattern::Uniform)
    }

    #[test]
    fn single_message_zero_load_latency_is_length_plus_distance() {
        // Drive the network by hand with exactly one message.
        let topology = Arc::new(StarGraph::new(4));
        let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 5));
        let config = SimConfig::builder()
            .message_length(8)
            .traffic_rate(0.0)
            .buffer_depth(2)
            .warmup_cycles(0)
            .measured_messages(1)
            .max_cycles(10_000)
            .seed(1)
            .build();
        let mut net = Network::new(topology.clone(), routing, config, TrafficPattern::Uniform);
        // inject one message from node 0 to a diameter-distant node
        let dest = (0..24u32).max_by_key(|&v| topology.distance(0, v)).unwrap();
        let hops = topology.distance(0, dest);
        let msg = Message::new(0, 0, dest, 8, 0, true);
        net.messages.insert(0, msg);
        net.source_queues[0].push_back(0);
        let mut delivered = Vec::new();
        for cycle in 0..500 {
            net.step(cycle);
            delivered.extend(net.take_delivered());
            if !delivered.is_empty() {
                break;
            }
        }
        assert_eq!(delivered.len(), 1);
        let latency = delivered[0].total_latency().unwrap();
        // ideal wormhole latency M + h (Eq. 4 of the paper at zero blocking);
        // injection happening in the generation cycle makes the simulator one
        // cycle faster, so accept [ideal - 1, ideal + 2].
        let ideal = (hops + 8) as u64;
        assert!(
            latency + 1 >= ideal && latency <= ideal + 2,
            "zero-load latency {latency} should be within 2 cycles of ideal {ideal}"
        );
        assert_eq!(delivered[0].routing.hops_taken, hops);
    }

    #[test]
    fn flit_conservation_and_invariants_under_load() {
        let mut net = small_network(0.01, 7);
        let mut delivered_flits = 0u64;
        for cycle in 0..20_000 {
            net.step(cycle);
            for m in net.take_delivered() {
                assert_eq!(m.flits_consumed, m.length);
                delivered_flits += m.length as u64;
            }
            if cycle % 500 == 0 {
                net.check_invariants();
            }
        }
        assert!(delivered_flits > 0, "the network must deliver traffic");
        // every transferred flit is eventually accounted for: transfers are at
        // least (hops) per delivered flit and finite
        assert!(net.counters().flit_transfers >= delivered_flits);
    }

    #[test]
    fn no_transfer_happens_without_traffic() {
        let mut net = small_network(0.0, 3);
        for cycle in 0..1_000 {
            net.step(cycle);
        }
        assert_eq!(net.counters().flit_transfers, 0);
        assert_eq!(net.counters().generated, 0);
        assert_eq!(net.observed_multiplexing(), 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut net = small_network(0.02, seed);
            let mut latencies = Vec::new();
            for cycle in 0..15_000 {
                net.step(cycle);
                latencies.extend(net.take_delivered().iter().map(|m| m.total_latency().unwrap()));
            }
            latencies
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn messages_are_delivered_in_bounded_time_at_low_load() {
        let mut net = small_network(0.005, 5);
        let mut max_latency = 0;
        let mut count = 0;
        for cycle in 0..30_000 {
            net.step(cycle);
            for m in net.take_delivered() {
                max_latency = max_latency.max(m.total_latency().unwrap());
                count += 1;
            }
        }
        assert!(count > 100);
        // at this load S4 latencies stay far below 10x the zero-load value
        assert!(max_latency < 300, "latency {max_latency} too large for low load");
        // the network drains: outstanding messages stay bounded
        assert!(net.outstanding_messages() < 50);
    }
}
