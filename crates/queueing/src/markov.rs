//! Virtual-channel occupancy chains and the multiplexing degree.
//!
//! Eq. (18) of the paper models the number of busy virtual channels at a
//! physical channel as a Markov chain whose steady state reduces to a
//! truncated geometric distribution in `ρ = λ_c·S̄`; Eq. (19) is Dally's
//! average degree of virtual-channel multiplexing,
//! `V̄ = Σ v²·P_v / Σ v·P_v`, which scales the final latency to account for
//! the physical bandwidth being time-multiplexed between the virtual channels
//! sharing it.
//!
//! A generic finite [`BirthDeathChain`] solver is also provided (and used by
//! tests to confirm that the closed form of Eq. 18 is indeed the steady state
//! of the chain described in the paper).

use serde::{Deserialize, Serialize};

/// Steady-state distribution of the number of busy virtual channels at a
/// physical channel with `v_max` virtual channels (Eq. 18):
///
/// `P_v = (λ·S̄)^v (1 − λ·S̄)` for `0 <= v < V`, and `P_V = (λ·S̄)^V`.
///
/// The result has length `v_max + 1` and sums to 1.  When `λ·S̄ >= 1` the
/// channel is saturated and all mass is placed on `v = V`.
///
/// # Panics
/// Panics if `v_max == 0` or the inputs are negative.
#[must_use]
pub fn vc_occupancy_distribution(arrival_rate: f64, mean_service: f64, v_max: usize) -> Vec<f64> {
    assert!(v_max >= 1, "need at least one virtual channel");
    assert!(arrival_rate >= 0.0 && mean_service >= 0.0, "inputs must be non-negative");
    let rho = arrival_rate * mean_service;
    let mut p = vec![0.0; v_max + 1];
    if rho >= 1.0 {
        p[v_max] = 1.0;
        return p;
    }
    for (v, slot) in p.iter_mut().enumerate().take(v_max) {
        *slot = rho.powi(v as i32) * (1.0 - rho);
    }
    p[v_max] = rho.powi(v_max as i32);
    p
}

/// Dally's average degree of virtual-channel multiplexing (Eq. 19):
/// `V̄ = Σ v²·P_v / Σ v·P_v`.  Returns 1.0 when no virtual channel is ever
/// busy (zero load), so that multiplying by `V̄` is always meaningful.
///
/// # Panics
/// Panics if the distribution is empty.
#[must_use]
pub fn multiplexing_degree(occupancy: &[f64]) -> f64 {
    assert!(!occupancy.is_empty(), "occupancy distribution must not be empty");
    let num: f64 = occupancy.iter().enumerate().map(|(v, &p)| (v * v) as f64 * p).sum();
    let den: f64 = occupancy.iter().enumerate().map(|(v, &p)| v as f64 * p).sum();
    if den <= 0.0 {
        1.0
    } else {
        num / den
    }
}

/// A finite birth–death Markov chain with state-dependent birth rates
/// `λ_v` (state `v → v+1`) and death rates `μ_v` (state `v → v-1`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BirthDeathChain {
    /// Birth rate out of each state `0..states-1` (last state has none).
    birth_rates: Vec<f64>,
    /// Death rate out of each state `1..states` (`death_rates[v-1]` leaves state `v`).
    death_rates: Vec<f64>,
}

impl BirthDeathChain {
    /// Builds a chain with `birth_rates.len() + 1` states.
    ///
    /// # Panics
    /// Panics if the lengths differ, are empty, or any rate is negative.
    #[must_use]
    pub fn new(birth_rates: Vec<f64>, death_rates: Vec<f64>) -> Self {
        assert_eq!(birth_rates.len(), death_rates.len(), "need one death rate per birth rate");
        assert!(!birth_rates.is_empty(), "chain needs at least two states");
        assert!(
            birth_rates.iter().chain(death_rates.iter()).all(|&r| r >= 0.0),
            "rates must be non-negative"
        );
        Self { birth_rates, death_rates }
    }

    /// A chain with the same birth rate `lambda` out of every state and the
    /// same death rate `mu` into every state — the structure the paper uses
    /// for virtual-channel occupancy (birth = message arrival at rate `λ_c`,
    /// death = service completion at rate `1/S̄`).
    #[must_use]
    pub fn homogeneous(lambda: f64, mu: f64, states: usize) -> Self {
        assert!(states >= 2, "chain needs at least two states");
        Self::new(vec![lambda; states - 1], vec![mu; states - 1])
    }

    /// Number of states.
    #[must_use]
    pub fn states(&self) -> usize {
        self.birth_rates.len() + 1
    }

    /// Exact steady-state distribution via the detailed-balance product form
    /// `π_v ∝ Π_{i<v} λ_i/μ_{i+1}`.
    ///
    /// States with an unreachable prefix (a zero birth rate upstream) simply
    /// receive zero probability.
    #[must_use]
    pub fn steady_state(&self) -> Vec<f64> {
        let n = self.states();
        let mut weights = vec![0.0; n];
        weights[0] = 1.0;
        for v in 1..n {
            let lambda = self.birth_rates[v - 1];
            let mu = self.death_rates[v - 1];
            weights[v] = if mu > 0.0 { weights[v - 1] * lambda / mu } else { 0.0 };
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        weights
    }

    /// Mean state value under the steady-state distribution.
    #[must_use]
    pub fn mean_state(&self) -> f64 {
        self.steady_state().iter().enumerate().map(|(v, &p)| v as f64 * p).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_distribution(p: &[f64]) {
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "distribution must sum to 1, got {sum}");
        assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn occupancy_is_a_distribution() {
        for &(lambda, s, v) in
            &[(0.001, 40.0, 4usize), (0.01, 60.0, 6), (0.0, 10.0, 3), (0.02, 45.0, 12)]
        {
            assert_distribution(&vc_occupancy_distribution(lambda, s, v));
        }
    }

    #[test]
    fn occupancy_closed_form_values() {
        let p = vc_occupancy_distribution(0.01, 50.0, 3);
        let rho: f64 = 0.5;
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
        assert!((p[2] - 0.125).abs() < 1e-12);
        assert!((p[3] - rho.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn saturation_concentrates_on_full_occupancy() {
        let p = vc_occupancy_distribution(0.1, 20.0, 5);
        assert_eq!(p[5], 1.0);
        assert!(p[..5].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_load_gives_unit_multiplexing() {
        let p = vc_occupancy_distribution(0.0, 40.0, 6);
        assert_eq!(multiplexing_degree(&p), 1.0);
    }

    #[test]
    fn multiplexing_degree_between_one_and_v() {
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            for v in 2..=12 {
                let p = vc_occupancy_distribution(rho / 40.0, 40.0, v);
                let m = multiplexing_degree(&p);
                assert!(m >= 1.0 - 1e-12, "multiplexing below 1: {m}");
                assert!(m <= v as f64 + 1e-12, "multiplexing above V: {m}");
            }
        }
    }

    #[test]
    fn multiplexing_degree_increases_with_load() {
        let v = 6;
        let mut last = 0.0;
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let m = multiplexing_degree(&vc_occupancy_distribution(rho / 30.0, 30.0, v));
            assert!(m > last);
            last = m;
        }
    }

    #[test]
    fn birth_death_homogeneous_matches_truncated_geometric_shape() {
        // The paper's chain: arrivals at λ_c, service at 1/S̄.  Its exact
        // steady state is the normalised geometric; Eq. (18) uses an
        // un-normalised variant (the transition rates out of each state are
        // "reduced by λ_c"), so we only compare shapes (ratios of successive
        // probabilities).
        let lambda = 0.004;
        let s = 55.0;
        let v = 6;
        let chain = BirthDeathChain::homogeneous(lambda, 1.0 / s, v + 1);
        let pi = chain.steady_state();
        assert_distribution(&pi);
        let rho = lambda * s;
        for i in 0..v {
            assert!((pi[i + 1] / pi[i] - rho).abs() < 1e-9);
        }
    }

    #[test]
    fn birth_death_mean_state_increases_with_load() {
        let s = 40.0;
        let mut last = 0.0;
        for &lambda in &[0.001, 0.004, 0.008, 0.012, 0.02] {
            let mean = BirthDeathChain::homogeneous(lambda, 1.0 / s, 7).mean_state();
            assert!(mean > last);
            last = mean;
        }
    }

    #[test]
    fn birth_death_zero_death_rate_is_handled() {
        let chain = BirthDeathChain::new(vec![1.0, 1.0], vec![1.0, 0.0]);
        let pi = chain.steady_state();
        // the state after the zero death rate is unreachable in product form
        assert_eq!(pi[2], 0.0);
        assert_distribution(&pi[..2]);
    }

    #[test]
    #[should_panic(expected = "at least one virtual channel")]
    fn occupancy_rejects_zero_channels() {
        let _ = vc_occupancy_distribution(0.01, 10.0, 0);
    }

    mod prop {
        use super::*;

        #[test]
        fn occupancy_always_a_distribution() {
            for v in 1usize..16 {
                for &s in &[1.0f64, 7.3, 40.0, 199.0] {
                    // inclusive top: rho reaches 1.999 (past saturation)
                    for i in 0..=20 {
                        let rho = 1.999 * f64::from(i) / 20.0;
                        let p = vc_occupancy_distribution(rho / s, s, v);
                        let sum: f64 = p.iter().sum();
                        assert!((sum - 1.0).abs() < 1e-9, "sum {sum} for rho={rho}, s={s}, v={v}");
                    }
                }
            }
        }

        #[test]
        fn multiplexing_bounded() {
            for v in 1usize..16 {
                // inclusive top so the near-saturation regime is exercised
                for i in 0..=40 {
                    let rho = 0.9985 * f64::from(i) / 40.0;
                    let p = vc_occupancy_distribution(rho, 1.0, v);
                    let m = multiplexing_degree(&p);
                    assert!(
                        m >= 1.0 - 1e-12 && m <= v as f64 + 1e-12,
                        "multiplexing {m} out of [1, {v}] at rho={rho}"
                    );
                }
            }
        }
    }
}
