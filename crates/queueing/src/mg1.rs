//! M/G/1 mean waiting times.
//!
//! The analytical model treats every network channel and the source injection
//! queue as M/G/1 servers (Eq. 12-16 of the paper).  The exact service-time
//! distribution at a wormhole channel is intractable (service times at
//! successive channels are correlated through the blocking mechanism), so the
//! paper approximates its variance by `(S̄ − M)²`, where `M` is the minimum
//! possible service time — the message length in flits.  Both the exact
//! Pollaczek–Khinchine form and the approximated form are provided.

/// Server utilisation `ρ = λ·S̄`.
#[inline]
#[must_use]
pub fn utilization(arrival_rate: f64, mean_service: f64) -> f64 {
    arrival_rate * mean_service
}

/// Pollaczek–Khinchine mean waiting time of an M/G/1 queue:
/// `W = ρ·S̄·(1 + C_S²) / (2·(1 − ρ))` with `C_S² = σ_S²/S̄²` (Eq. 12-14).
///
/// Returns `f64::INFINITY` when the queue is unstable (`ρ >= 1`), which the
/// model interprets as the network being saturated.
///
/// # Panics
/// Panics if any argument is negative or `mean_service` is zero.
#[must_use]
pub fn mg1_waiting_time(arrival_rate: f64, mean_service: f64, service_variance: f64) -> f64 {
    assert!(arrival_rate >= 0.0, "arrival rate must be non-negative");
    assert!(mean_service > 0.0, "mean service time must be positive");
    assert!(service_variance >= 0.0, "variance must be non-negative");
    let rho = utilization(arrival_rate, mean_service);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    let cs2 = service_variance / (mean_service * mean_service);
    rho * mean_service * (1.0 + cs2) / (2.0 * (1.0 - rho))
}

/// The paper's approximated M/G/1 waiting time (Eq. 15-16): the service-time
/// variance is taken as `(S̄ − M)²` where `M` is the minimum service time
/// (message length), giving
/// `W = λ·S̄²·(1 + (1 − M/S̄)²) / (2·(1 − λ·S̄))`.
///
/// Returns `f64::INFINITY` when unstable.
///
/// # Panics
/// Panics if arguments are negative, `mean_service` is zero, or the minimum
/// service time exceeds the mean.
#[must_use]
pub fn mg1_waiting_time_min_service(arrival_rate: f64, mean_service: f64, min_service: f64) -> f64 {
    assert!(min_service >= 0.0, "minimum service time must be non-negative");
    assert!(
        min_service <= mean_service + 1e-9,
        "minimum service time ({min_service}) cannot exceed the mean ({mean_service})"
    );
    let sigma2 = (mean_service - min_service).powi(2);
    mg1_waiting_time(arrival_rate, mean_service, sigma2)
}

/// Mean waiting time of an M/M/1 queue (exponential service), provided for
/// reference and cross-checks: `W = ρ·S̄/(1 − ρ)`.
#[must_use]
pub fn mm1_waiting_time(arrival_rate: f64, mean_service: f64) -> f64 {
    // An exponential service time has variance S̄².
    mg1_waiting_time(arrival_rate, mean_service, mean_service * mean_service)
}

/// Mean waiting time of an M/D/1 queue (deterministic service):
/// `W = ρ·S̄/(2(1 − ρ))`.
#[must_use]
pub fn md1_waiting_time(arrival_rate: f64, mean_service: f64) -> f64 {
    mg1_waiting_time(arrival_rate, mean_service, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_product() {
        assert!((utilization(0.01, 40.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_load_means_zero_wait() {
        assert_eq!(mg1_waiting_time(0.0, 32.0, 10.0), 0.0);
        assert_eq!(mg1_waiting_time_min_service(0.0, 32.0, 32.0), 0.0);
    }

    #[test]
    fn deterministic_service_matches_md1() {
        let w = mg1_waiting_time(0.01, 50.0, 0.0);
        let expected = 0.5 * 50.0 / (2.0 * 0.5);
        assert!((w - expected).abs() < 1e-12);
        assert!((md1_waiting_time(0.01, 50.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn exponential_service_matches_mm1() {
        let rho: f64 = 0.6;
        let s = 20.0;
        let lambda = rho / s;
        let expected = rho * s / (1.0 - rho);
        assert!((mm1_waiting_time(lambda, s) - expected).abs() < 1e-9);
    }

    #[test]
    fn saturated_queue_returns_infinity() {
        assert!(mg1_waiting_time(0.05, 20.0, 1.0).is_infinite());
        assert!(mg1_waiting_time(0.06, 20.0, 1.0).is_infinite());
        assert!(mg1_waiting_time_min_service(1.0, 1.5, 1.0).is_infinite());
    }

    #[test]
    fn waiting_time_grows_with_load_and_variance() {
        let w1 = mg1_waiting_time(0.005, 40.0, 10.0);
        let w2 = mg1_waiting_time(0.010, 40.0, 10.0);
        let w3 = mg1_waiting_time(0.010, 40.0, 100.0);
        assert!(w2 > w1);
        assert!(w3 > w2);
    }

    #[test]
    fn paper_approximation_reduces_to_md1_when_service_equals_minimum() {
        // If every message experiences no blocking, S̄ = M and the
        // approximated variance vanishes: the channel behaves like M/D/1.
        let lambda = 0.004;
        let m = 32.0;
        let approx = mg1_waiting_time_min_service(lambda, m, m);
        assert!((approx - md1_waiting_time(lambda, m)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot exceed the mean")]
    fn min_service_above_mean_is_rejected() {
        let _ = mg1_waiting_time_min_service(0.001, 30.0, 40.0);
    }

    mod prop {
        use super::*;

        #[test]
        fn waiting_time_is_finite_and_nonnegative_below_saturation() {
            for &s in &[1.0f64, 16.0, 77.0, 499.0] {
                // inclusive top so the near-saturation regime is exercised
                for i in 0..=19 {
                    let rho = 0.949 * f64::from(i) / 19.0;
                    for &extra in &[0.0f64, 0.25, 0.5, 0.99] {
                        let lambda = rho / s;
                        let min_service = s * (1.0 - extra);
                        let w = mg1_waiting_time_min_service(lambda, s, min_service);
                        assert!(w.is_finite(), "rho={rho}, s={s}, extra={extra}");
                        assert!(w >= 0.0, "rho={rho}, s={s}, extra={extra}: w={w}");
                    }
                }
            }
        }

        #[test]
        fn monotone_in_arrival_rate() {
            for &s in &[1.0f64, 12.0, 64.0, 200.0] {
                for i in 0..=30 {
                    let rho1 = 0.01 + 0.89 * f64::from(i) / 30.0;
                    for &bump in &[0.01f64, 0.05, 0.09] {
                        let rho2 = rho1 + bump;
                        let w1 = mg1_waiting_time(rho1 / s, s, s);
                        let w2 = mg1_waiting_time(rho2 / s, s, s);
                        assert!(w2 >= w1, "s={s}: W({rho2})={w2} < W({rho1})={w1}");
                    }
                }
            }
        }
    }
}
