//! # star-queueing
//!
//! Queueing-theory and numerical substrate shared by the analytical model
//! (`star-core`) and the flit-level simulator (`star-sim`):
//!
//! * [`mg1`] — M/G/1 mean waiting times, including the paper's approximation
//!   of the service-time variance from the minimum service time (Eq. 12-16);
//! * [`markov`] — the Markovian virtual-channel occupancy distribution of
//!   Eq. (18) and Dally's average multiplexing degree of Eq. (19), plus a
//!   generic birth–death chain solver;
//! * [`fixed_point`] — damped fixed-point iteration with divergence
//!   (saturation) detection, used to resolve the model's circular
//!   dependencies between latency and waiting time;
//! * [`stats`] — running statistics, batch means, across-replicate Student-t
//!   confidence intervals and histograms for simulation output analysis;
//! * [`sampling`] — Poisson-process inter-arrival sampling and deterministic
//!   seeding helpers, including the [`replicate_seed`] derivation the
//!   replicate-aware evaluation layer fans seeds out with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed_point;
pub mod markov;
pub mod mg1;
pub mod sampling;
pub mod stats;

pub use fixed_point::{FixedPointOutcome, FixedPointSolver};
pub use markov::{multiplexing_degree, vc_occupancy_distribution, BirthDeathChain};
pub use mg1::{mg1_waiting_time, mg1_waiting_time_min_service, utilization};
pub use sampling::{replicate_seed, PoissonProcess};
pub use stats::{student_t_975, BatchMeans, Histogram, ReplicateStats, RunningStats};
