//! Damped fixed-point iteration.
//!
//! The paper's model variables are mutually dependent (the mean network
//! latency `S̄` depends on the channel waiting time `w̄`, which depends on
//! `S̄` again through the M/G/1 formula), so the model is solved iteratively.
//! This module provides a small, reusable solver with:
//!
//! * damping (`x_{k+1} = (1-α)·x_k + α·F(x_k)`) to keep the iteration stable
//!   close to saturation,
//! * convergence detection on the relative change of the state vector,
//! * divergence / saturation detection (non-finite values or exceeding a
//!   configurable ceiling), which the model reports as "saturated" rather
//!   than looping forever.

use serde::{Deserialize, Serialize};

/// Outcome of a fixed-point solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FixedPointOutcome {
    /// Converged to the contained state within tolerance.
    Converged {
        /// Final state vector.
        state: Vec<f64>,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The iteration diverged (non-finite values or state above the ceiling),
    /// which the latency model interprets as operating beyond saturation.
    Diverged {
        /// Last finite state observed (clamped), for diagnostics.
        last_state: Vec<f64>,
        /// Number of iterations performed before divergence was declared.
        iterations: usize,
    },
    /// The iteration count limit was reached without meeting the tolerance.
    MaxIterations {
        /// State at the final iteration.
        state: Vec<f64>,
        /// Relative change at the final iteration.
        residual: f64,
    },
}

impl FixedPointOutcome {
    /// The state vector if the solve converged.
    #[must_use]
    pub fn converged_state(&self) -> Option<&[f64]> {
        match self {
            FixedPointOutcome::Converged { state, .. } => Some(state),
            _ => None,
        }
    }

    /// Whether the solve converged.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        matches!(self, FixedPointOutcome::Converged { .. })
    }

    /// Whether the solve diverged (saturation).
    #[must_use]
    pub fn is_diverged(&self) -> bool {
        matches!(self, FixedPointOutcome::Diverged { .. })
    }
}

/// Configuration for a damped fixed-point iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedPointSolver {
    /// Damping factor `α` in `(0, 1]`: 1 is plain iteration, smaller is more
    /// heavily damped.
    pub damping: f64,
    /// Relative-change tolerance for convergence.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Any state component exceeding this value is treated as divergence.
    pub divergence_ceiling: f64,
}

impl Default for FixedPointSolver {
    fn default() -> Self {
        Self { damping: 0.5, tolerance: 1e-9, max_iterations: 10_000, divergence_ceiling: 1e9 }
    }
}

impl FixedPointSolver {
    /// Creates a solver with the given damping factor and defaults elsewhere.
    ///
    /// # Panics
    /// Panics if the damping factor is not in `(0, 1]`.
    #[must_use]
    pub fn with_damping(damping: f64) -> Self {
        assert!(damping > 0.0 && damping <= 1.0, "damping must be in (0, 1]");
        Self { damping, ..Self::default() }
    }

    /// Runs the damped iteration `x ← (1-α)x + α·F(x)` from `initial` until
    /// convergence, divergence or the iteration limit.
    pub fn solve<F>(&self, initial: Vec<f64>, mut step: F) -> FixedPointOutcome
    where
        F: FnMut(&[f64]) -> Vec<f64>,
    {
        assert!(self.damping > 0.0 && self.damping <= 1.0, "damping must be in (0, 1]");
        let mut state = initial;
        let mut residual = f64::INFINITY;
        for iteration in 1..=self.max_iterations {
            let next_raw = step(&state);
            assert_eq!(next_raw.len(), state.len(), "step must preserve the state dimension");
            if next_raw.iter().any(|x| !x.is_finite() || *x > self.divergence_ceiling) {
                return FixedPointOutcome::Diverged { last_state: state, iterations: iteration };
            }
            let mut next = vec![0.0; state.len()];
            let mut max_rel = 0.0f64;
            for i in 0..state.len() {
                next[i] = (1.0 - self.damping) * state[i] + self.damping * next_raw[i];
                let denom = next[i].abs().max(1e-12);
                max_rel = max_rel.max((next[i] - state[i]).abs() / denom);
            }
            state = next;
            residual = max_rel;
            if max_rel < self.tolerance {
                return FixedPointOutcome::Converged { state, iterations: iteration };
            }
        }
        FixedPointOutcome::MaxIterations { state, residual }
    }

    /// Convenience wrapper for a scalar fixed point.
    pub fn solve_scalar<F>(&self, initial: f64, mut step: F) -> FixedPointOutcome
    where
        F: FnMut(f64) -> f64,
    {
        self.solve(vec![initial], move |state| vec![step(state[0])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_known_fixed_point() {
        // x = cos(x) has the Dottie number ~0.739085 as its fixed point.
        let solver = FixedPointSolver::with_damping(1.0);
        let out = solver.solve_scalar(0.0, f64::cos);
        let state = out.converged_state().expect("must converge");
        assert!((state[0] - 0.739_085_133_2).abs() < 1e-6);
    }

    #[test]
    fn damping_still_converges() {
        let solver = FixedPointSolver::with_damping(0.3);
        let out = solver.solve_scalar(0.5, |x| 0.5 * x + 1.0);
        assert!((out.converged_state().unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vector_fixed_point() {
        // Linear contraction toward (1, 2).
        let solver = FixedPointSolver::default();
        let out = solver
            .solve(vec![10.0, -3.0], |x| vec![0.5 * (x[0] - 1.0) + 1.0, 0.25 * (x[1] - 2.0) + 2.0]);
        let s = out.converged_state().unwrap();
        assert!((s[0] - 1.0).abs() < 1e-6);
        assert!((s[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_divergence_on_growth() {
        let solver = FixedPointSolver { divergence_ceiling: 1e6, ..Default::default() };
        let out = solver.solve_scalar(1.0, |x| x * 10.0);
        assert!(out.is_diverged());
        assert!(!out.is_converged());
    }

    #[test]
    fn detects_divergence_on_nan_and_infinity() {
        let solver = FixedPointSolver::default();
        assert!(solver.solve_scalar(1.0, |_| f64::NAN).is_diverged());
        assert!(solver.solve_scalar(1.0, |_| f64::INFINITY).is_diverged());
    }

    #[test]
    fn reports_max_iterations_for_oscillation() {
        // Undamped period-2 oscillation between 0 and 1 never converges.
        let solver = FixedPointSolver { damping: 1.0, max_iterations: 50, ..Default::default() };
        let out = solver.solve_scalar(0.0, |x| 1.0 - x);
        assert!(matches!(out, FixedPointOutcome::MaxIterations { .. }));
        // With damping the same map converges to 0.5.
        let damped = FixedPointSolver::with_damping(0.5).solve_scalar(0.0, |x| 1.0 - x);
        assert!((damped.converged_state().unwrap()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn converged_state_accessor_none_on_divergence() {
        let solver = FixedPointSolver { divergence_ceiling: 10.0, ..Default::default() };
        let out = solver.solve_scalar(1.0, |x| x * 2.0);
        assert!(out.converged_state().is_none());
    }

    #[test]
    #[should_panic(expected = "state dimension")]
    fn dimension_mismatch_is_rejected() {
        let solver = FixedPointSolver::default();
        let _ = solver.solve(vec![1.0, 2.0], |_| vec![1.0]);
    }

    mod prop {
        use super::*;

        #[test]
        fn linear_contractions_always_converge() {
            for i in 0..19 {
                let slope = -0.9 + 1.8 * f64::from(i) / 18.0;
                for &intercept in &[-100.0f64, -7.5, 0.0, 3.25, 100.0] {
                    for &start in &[-100.0f64, 0.0, 42.0, 100.0] {
                        let solver = FixedPointSolver::with_damping(0.8);
                        let out = solver.solve_scalar(start, |x| slope * x + intercept);
                        let expected = intercept / (1.0 - slope);
                        let s = out
                            .converged_state()
                            .unwrap_or_else(|| panic!("contraction slope={slope} must converge"));
                        assert!(
                            (s[0] - expected).abs() < 1e-5 * (1.0 + expected.abs()),
                            "slope={slope}, intercept={intercept}, start={start}: \
                             got {}, want {expected}",
                            s[0]
                        );
                    }
                }
            }
        }
    }
}
