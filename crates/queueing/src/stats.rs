//! Statistics collection for simulation output analysis.
//!
//! The simulator reports mean message latency, mean network latency and mean
//! source-queueing time with confidence intervals.  [`RunningStats`] is a
//! numerically stable (Welford) accumulator; [`BatchMeans`] implements the
//! classic batch-means method for steady-state output analysis;
//! [`ReplicateStats`] summarises independent replications of one experiment
//! (mean, sample standard deviation, Student-t 95% confidence interval);
//! [`Histogram`] records integer-valued samples (latencies in cycles) for
//! distribution plots.

use serde::{Deserialize, Serialize};

/// Two-sided 95% Student-t quantile (`t_{0.975, df}`) for the given degrees
/// of freedom, from the standard table; degrees of freedom beyond the table
/// fall back to coarser rows and finally the normal quantile 1.96.
///
/// Replicate counts are small (a handful to a few dozen independent seeds),
/// exactly the regime where the normal approximation undercovers and the
/// t correction matters.
#[must_use]
pub fn student_t_975(degrees_of_freedom: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    // past the table, clamp df DOWN to the nearest coarser row (the
    // conventional, conservative reading: a slightly wider interval, never
    // a narrower one)
    match degrees_of_freedom {
        0 => f64::INFINITY,
        df @ 1..=30 => TABLE[df as usize - 1],
        31..=39 => TABLE[29],
        40..=59 => 2.021,
        60..=119 => 2.000,
        120..=239 => 1.980,
        _ => 1.960,
    }
}

/// Summary statistics over independent replications of one experiment: the
/// across-replicate mean, sample standard deviation and the Student-t 95%
/// confidence half-width of the mean.
///
/// This is the quantity every replicate-aware report carries per operating
/// point.  A single replicate (or a deterministic backend such as the
/// analytical model) yields a degenerate interval of zero width, which keeps
/// one report schema across backends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicateStats {
    /// Number of replicates summarised.
    pub replicates: u64,
    /// Across-replicate mean.
    pub mean: f64,
    /// Sample standard deviation across replicates (0 with fewer than two).
    pub std_dev: f64,
    /// Student-t 95% confidence half-width of the mean (0 with fewer than
    /// two replicates).
    pub ci95: f64,
}

impl Default for ReplicateStats {
    fn default() -> Self {
        Self::empty()
    }
}

impl ReplicateStats {
    /// The summary of zero replicates (all-zero fields; the shape saturated
    /// points report when no finite measurement exists).
    #[must_use]
    pub fn empty() -> Self {
        Self { replicates: 0, mean: 0.0, std_dev: 0.0, ci95: 0.0 }
    }

    /// The degenerate summary of a single observation: zero-width interval
    /// around the value.  Deterministic backends (the analytical model) use
    /// this so their reports share the replicate schema.
    #[must_use]
    pub fn degenerate(value: f64) -> Self {
        Self { replicates: 1, mean: value, std_dev: 0.0, ci95: 0.0 }
    }

    /// Summarises one finite sample per replicate.
    ///
    /// # Panics
    /// Panics if any sample is non-finite (saturated replicates must be
    /// filtered — and flagged — by the caller, so the interval stays
    /// meaningful and comparison-safe).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "replicate samples must be finite (filter saturated replicates first)"
        );
        if samples.is_empty() {
            return Self::empty();
        }
        let mut acc = RunningStats::new();
        for &s in samples {
            acc.push(s);
        }
        let std_dev = acc.std_dev();
        let ci95 = if samples.len() < 2 {
            0.0
        } else {
            student_t_975(samples.len() as u64 - 1) * acc.std_error()
        };
        Self { replicates: samples.len() as u64, mean: acc.mean(), std_dev, ci95 }
    }

    /// Relative 95% confidence half-width `ci95 / |mean|` (0 when the mean is
    /// zero) — the stopping criterion adaptive replication targets.
    #[must_use]
    pub fn relative_ci95(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.ci95 / self.mean.abs()
        }
    }

    /// Formats the summary as `mean ± ci95` for tables.
    #[must_use]
    pub fn pretty(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.ci95)
    }
}

/// Numerically stable running mean/variance accumulator (Welford's method).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate 95% confidence half-width for the mean (normal
    /// approximation, `1.96 · SE`).
    #[must_use]
    pub fn confidence_95(&self) -> f64 {
        1.96 * self.std_error()
    }
}

/// Batch-means estimator for steady-state simulation output: samples are
/// grouped into fixed-size batches and the batch means are treated as
/// (approximately independent) observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batch_stats: RunningStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { batch_size, current_sum: 0.0, current_count: 0, batch_stats: RunningStats::new() }
    }

    /// Adds one raw sample.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_stats.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batch_stats.count()
    }

    /// Mean over completed batches.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.batch_stats.mean()
    }

    /// 95% confidence half-width over completed batches.
    #[must_use]
    pub fn confidence_95(&self) -> f64 {
        self.batch_stats.confidence_95()
    }

    /// Relative half-width of the 95% confidence interval (0 when the mean is
    /// zero); a common stopping criterion for steady-state simulations.
    #[must_use]
    pub fn relative_precision(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.confidence_95() / mean.abs()
        }
    }
}

/// Fixed-bin histogram over non-negative integer samples (e.g. message
/// latencies in cycles); samples beyond the last bin are clamped into it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0 && bins > 0, "histogram dimensions must be positive");
        Self { bin_width, bins: vec![0; bins], total: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bin_width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The value below which `quantile` (in `[0,1]`) of the samples fall,
    /// resolved to bin granularity.  Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, quantile: f64) -> u64 {
        assert!((0.0..=1.0).contains(&quantile), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        let threshold = (quantile * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                return (i as u64 + 1) * self.bin_width;
            }
        }
        self.bins.len() as u64 * self.bin_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.confidence_95() > 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..300] {
            a.push(x);
        }
        for &x in &data[300..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        // merging an empty accumulator is a no-op
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);
    }

    #[test]
    fn batch_means_reduces_to_sample_mean() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batches(), 10);
        assert!((bm.mean() - 49.5).abs() < 1e-12);
        assert!(bm.relative_precision() > 0.0);
    }

    #[test]
    fn batch_means_ignores_incomplete_batch() {
        let mut bm = BatchMeans::new(10);
        for i in 0..25 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batches(), 2);
        assert!((bm.mean() - (4.5 + 14.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10, 20);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 10);
    }

    #[test]
    fn histogram_clamps_overflow() {
        let mut h = Histogram::new(10, 5);
        h.record(1_000_000);
        assert_eq!(h.bins()[4], 1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn student_t_table_decreases_toward_the_normal_quantile() {
        assert!(student_t_975(0).is_infinite());
        assert!((student_t_975(1) - 12.706).abs() < 1e-12);
        assert!((student_t_975(7) - 2.365).abs() < 1e-12);
        let mut last = f64::INFINITY;
        for df in 1..=300 {
            let t = student_t_975(df);
            assert!(t <= last, "t quantile must not increase with df");
            assert!(t >= 1.960);
            last = t;
        }
        assert!((student_t_975(10_000) - 1.960).abs() < 1e-12);
        // beyond the table, df clamps DOWN to the coarser row — the interval
        // may only widen, never narrow (e.g. df=31 uses the df=30 quantile,
        // which exceeds the true ≈2.040)
        assert_eq!(student_t_975(31), student_t_975(30));
        assert_eq!(student_t_975(59), 2.021);
        assert!(student_t_975(31) > 2.040);
    }

    #[test]
    fn replicate_stats_known_values() {
        // mean 5, sample stddev sqrt(32/7) over 8 observations
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = ReplicateStats::from_samples(&samples);
        assert_eq!(s.replicates, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let expected_ci = student_t_975(7) * s.std_dev / (8.0f64).sqrt();
        assert!((s.ci95 - expected_ci).abs() < 1e-12);
        assert!((s.relative_ci95() - expected_ci / 5.0).abs() < 1e-12);
        assert!(s.pretty().contains('±'));
    }

    #[test]
    fn replicate_stats_degenerate_cases_have_zero_width() {
        let empty = ReplicateStats::from_samples(&[]);
        assert_eq!(empty, ReplicateStats::empty());
        assert_eq!(empty.relative_ci95(), 0.0);
        let one = ReplicateStats::from_samples(&[42.0]);
        assert_eq!(one, ReplicateStats::degenerate(42.0));
        assert_eq!(one.ci95, 0.0);
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(ReplicateStats::default(), ReplicateStats::empty());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn replicate_stats_reject_non_finite_samples() {
        let _ = ReplicateStats::from_samples(&[1.0, f64::INFINITY]);
    }

    mod prop {
        use super::*;
        use crate::sampling::seeded_rng;
        use rand::Rng;

        /// Deterministic stand-in for the former proptest vector strategy.
        fn random_vec(seed: u64, len: usize, scale: f64) -> Vec<f64> {
            let mut rng = seeded_rng(seed, 0xDA7A);
            (0..len).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale).collect()
        }

        #[test]
        fn welford_matches_two_pass() {
            for seed in 0..32u64 {
                let len = 2 + (seed as usize * 13) % 198;
                let data = random_vec(seed, len, 1e6);
                let mut s = RunningStats::new();
                for &x in &data {
                    s.push(x);
                }
                let n = data.len() as f64;
                let mean: f64 = data.iter().sum::<f64>() / n;
                let var: f64 = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
                assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()), "seed {seed}");
                assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()), "seed {seed}");
            }
        }

        #[test]
        fn merge_is_associative_enough() {
            for seed in 0..32u64 {
                let a = random_vec(seed * 2 + 1, 1 + (seed as usize * 7) % 99, 1e3);
                let b = random_vec(seed * 2 + 2, 1 + (seed as usize * 11) % 99, 1e3);
                let mut ra = RunningStats::new();
                for &x in &a {
                    ra.push(x);
                }
                let mut rb = RunningStats::new();
                for &x in &b {
                    rb.push(x);
                }
                let mut merged = ra.clone();
                merged.merge(&rb);
                let mut all = RunningStats::new();
                for &x in a.iter().chain(b.iter()) {
                    all.push(x);
                }
                assert_eq!(merged.count(), all.count());
                assert!(
                    (merged.mean() - all.mean()).abs() < 1e-7 * (1.0 + all.mean().abs()),
                    "seed {seed}"
                );
            }
        }
    }
}
