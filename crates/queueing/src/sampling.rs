//! Random sampling utilities for the simulator's traffic sources.
//!
//! The paper assumes each node generates messages according to a Poisson
//! process with rate `λ_g` messages/cycle.  [`PoissonProcess`] produces the
//! corresponding exponential inter-arrival times and converts them to integer
//! cycle timestamps; [`seeded_rng`] provides deterministic, stream-separable
//! seeding so that simulation experiments are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives the RNG seed of one replicate from a base seed and the replicate
/// index — the deterministic fan-out replicate-aware experiments use: the
/// same `(seed_base, replicate)` pair yields the same seed in every process
/// on every platform, and different replicates get well-separated seeds.
///
/// The mix is one SplitMix64 finalisation round over the pair, so replicate
/// `i` of base `b` never collides with replicate `i + 1` of base `b − 1`
/// the way naive `base + index` addition would.
#[must_use]
pub fn replicate_seed(seed_base: u64, replicate: u64) -> u64 {
    let mut z = seed_base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(replicate.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG for a given experiment seed and stream id.
///
/// Different `stream` values (e.g. one per node) yield independent-looking
/// generators while remaining fully reproducible for a fixed `seed`.
#[must_use]
pub fn seeded_rng(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 scrambling of (seed, stream) into a 32-byte seed.
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut bytes = [0u8; 32];
    for chunk in bytes.chunks_mut(8) {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    StdRng::from_seed(bytes)
}

/// A Poisson arrival process with a given rate in events per cycle.
///
/// Inter-arrival times are exponential with mean `1/rate`; arrival cycles are
/// produced as (not necessarily strictly) increasing integer timestamps.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    next_arrival: f64,
    rng: StdRng,
}

impl PoissonProcess {
    /// Creates a process with the given rate (events/cycle).  A rate of zero
    /// produces no events.
    ///
    /// # Panics
    /// Panics if the rate is negative or not finite.
    #[must_use]
    pub fn new(rate: f64, seed: u64, stream: u64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite and non-negative");
        let mut p = Self { rate, next_arrival: 0.0, rng: seeded_rng(seed, stream) };
        if rate > 0.0 {
            p.next_arrival = p.sample_interval();
        } else {
            p.next_arrival = f64::INFINITY;
        }
        p
    }

    /// The configured rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn sample_interval(&mut self) -> f64 {
        // Inverse-CDF sampling of an exponential with mean 1/rate.
        let u: f64 = self.rng.random::<f64>();
        // Guard against u == 0 which would give +inf.
        let u = u.max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }

    /// Returns the number of new messages generated at the given cycle
    /// (usually 0 or 1; can exceed 1 at very high rates).
    pub fn arrivals_at(&mut self, cycle: u64) -> usize {
        if self.rate == 0.0 {
            return 0;
        }
        let mut count = 0;
        while self.next_arrival <= cycle as f64 + 1.0 - f64::EPSILON {
            count += 1;
            let step = self.sample_interval();
            self.next_arrival += step;
        }
        count
    }

    /// Time of the next arrival (in cycles, fractional), `+∞` for rate 0.
    #[must_use]
    pub fn next_arrival_time(&self) -> f64 {
        self.next_arrival
    }

    /// The earliest integer cycle at which [`Self::arrivals_at`] would report
    /// a non-zero count, `None` when no arrival is pending (rate 0).
    ///
    /// This is the event-scheduling twin of [`Self::arrivals_at`]: it
    /// evaluates the *same* float predicate (`t <= cycle + 1 - ε`, with the
    /// identical operation order and therefore identical rounding), so an
    /// event-driven caller that sleeps until the returned cycle and then
    /// calls `arrivals_at` observes exactly the arrivals a caller polling
    /// every cycle would — cycle for cycle, count for count.
    #[must_use]
    pub fn next_arrival_cycle(&self) -> Option<u64> {
        if !self.next_arrival.is_finite() {
            return None;
        }
        let t = self.next_arrival;
        // Lower bound: the predicate needs cycle + 1 - ε >= t, so the answer
        // is at least floor(t - 1).  Walk forward with the literal predicate
        // rather than a closed-form ceil — the expression's f64 rounding is
        // magnitude-dependent and must match arrivals_at bit for bit.
        let mut cycle = if t > 1.0 { (t - 1.0) as u64 } else { 0 };
        while t > cycle as f64 + 1.0 - f64::EPSILON {
            cycle += 1;
        }
        Some(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut p = PoissonProcess::new(0.0, 1, 0);
        for cycle in 0..10_000 {
            assert_eq!(p.arrivals_at(cycle), 0);
        }
        assert!(p.next_arrival_time().is_infinite());
    }

    #[test]
    fn seeding_is_deterministic_and_stream_separated() {
        let mut a = PoissonProcess::new(0.01, 42, 7);
        let mut b = PoissonProcess::new(0.01, 42, 7);
        let mut c = PoissonProcess::new(0.01, 42, 8);
        let seq_a: Vec<usize> = (0..5000).map(|t| a.arrivals_at(t)).collect();
        let seq_b: Vec<usize> = (0..5000).map(|t| b.arrivals_at(t)).collect();
        let seq_c: Vec<usize> = (0..5000).map(|t| c.arrivals_at(t)).collect();
        assert_eq!(seq_a, seq_b, "same seed/stream must reproduce exactly");
        assert_ne!(seq_a, seq_c, "different streams must differ");
    }

    #[test]
    fn empirical_rate_matches_configuration() {
        for &rate in &[0.002, 0.01, 0.05] {
            let mut p = PoissonProcess::new(rate, 7, 3);
            // large horizon so the 5% tolerance sits at several Poisson sigmas
            // even for the lowest rate (0.002 * 1M = 2000 expected events)
            let horizon = 1_000_000u64;
            let total: usize = (0..horizon).map(|t| p.arrivals_at(t)).sum();
            let empirical = total as f64 / horizon as f64;
            let rel_err = (empirical - rate).abs() / rate;
            assert!(rel_err < 0.05, "rate {rate}: empirical {empirical} off by {rel_err}");
        }
    }

    #[test]
    fn window_counts_have_poisson_dispersion() {
        // For a Poisson process the number of arrivals in a fixed window has
        // variance equal to its mean (index of dispersion 1).
        let mut p = PoissonProcess::new(0.02, 11, 0);
        let window = 200u64;
        let mut stats = crate::stats::RunningStats::new();
        for w in 0..5_000u64 {
            let mut count = 0usize;
            for cycle in w * window..(w + 1) * window {
                count += p.arrivals_at(cycle);
            }
            stats.push(count as f64);
        }
        let dispersion = stats.variance() / stats.mean();
        assert!(
            (dispersion - 1.0).abs() < 0.1,
            "index of dispersion should be ~1, got {dispersion}"
        );
        assert!((stats.mean() - 4.0).abs() < 0.2, "expected ~4 arrivals per window");
    }

    #[test]
    fn replicate_seeds_are_stable_and_separated() {
        // the derivation is part of the reproducibility contract: these
        // constants must never change across runs, platforms or releases
        assert_eq!(replicate_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(replicate_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(replicate_seed(42, 1), 0xD7FC_1BDE_F4D9_4D80);
        // recomputing yields the identical seed
        for base in [0u64, 7, u64::MAX] {
            for rep in 0..4 {
                assert_eq!(replicate_seed(base, rep), replicate_seed(base, rep));
            }
        }
        // no collisions across a realistic fan-out, including the diagonal
        // (base + 1, rep) vs (base, rep + 1) that naive addition would alias
        let mut seen = std::collections::HashSet::new();
        for base in 0..32u64 {
            for rep in 0..32u64 {
                assert!(seen.insert(replicate_seed(base, rep)), "collision at ({base}, {rep})");
            }
        }
    }

    #[test]
    fn seeded_rng_streams_do_not_collide() {
        let mut r0 = seeded_rng(123, 0);
        let mut r1 = seeded_rng(123, 1);
        let a: Vec<u64> = (0..16).map(|_| r0.random()).collect();
        let b: Vec<u64> = (0..16).map(|_| r1.random()).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        let _ = PoissonProcess::new(-0.1, 0, 0);
    }

    #[test]
    fn next_arrival_cycle_agrees_with_polling() {
        // The event-scheduling contract: jumping straight to
        // next_arrival_cycle and draining there reproduces the per-cycle
        // polling sequence exactly, across many rates and seeds.
        for &(rate, seed) in &[(0.0005, 3u64), (0.01, 7), (0.3, 11), (2.5, 13)] {
            let mut polled = PoissonProcess::new(rate, seed, 0);
            let mut jumped = PoissonProcess::new(rate, seed, 0);
            let horizon = 20_000u64;
            let reference: Vec<(u64, usize)> = (0..horizon)
                .filter_map(|t| match polled.arrivals_at(t) {
                    0 => None,
                    n => Some((t, n)),
                })
                .collect();
            let mut observed = Vec::new();
            while let Some(cycle) = jumped.next_arrival_cycle() {
                if cycle >= horizon {
                    break;
                }
                let count = jumped.arrivals_at(cycle);
                assert!(count > 0, "a scheduled arrival cycle must fire (rate {rate})");
                observed.push((cycle, count));
            }
            assert_eq!(observed, reference, "rate {rate} seed {seed}");
        }
    }

    #[test]
    fn next_arrival_cycle_is_none_for_zero_rate() {
        assert_eq!(PoissonProcess::new(0.0, 1, 0).next_arrival_cycle(), None);
    }
}
