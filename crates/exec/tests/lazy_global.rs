//! The global pool must be lazy: serial work through
//! [`ExecPool::global_ordered`] never spawns the worker threads, so a
//! process that never opts into parallelism pays nothing for the pool.
//! (Integration test = own process, so no other test can have spawned the
//! global pool before us.)

use star_exec::ExecPool;

/// Names of this process's live threads (Linux `/proc`; skipped elsewhere).
fn thread_names() -> Option<Vec<String>> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    Some(
        tasks
            .filter_map(|t| std::fs::read_to_string(t.ok()?.path().join("comm")).ok())
            .map(|name| name.trim().to_string())
            .collect(),
    )
}

fn pool_worker_count() -> Option<usize> {
    Some(thread_names()?.iter().filter(|n| n.starts_with("star-exec")).count())
}

#[test]
fn serial_batches_never_instantiate_the_global_pool() {
    let items: Vec<u64> = (0..32).collect();
    let expect: Vec<u64> = items.iter().map(|i| i * 3).collect();
    // width 1 and tiny batches stay inline on the calling thread
    assert_eq!(ExecPool::global_ordered(1, &items, |_, &i| i * 3), expect);
    assert_eq!(ExecPool::global_ordered(0, &items[..1], |_, &i| i * 3), expect[..1]);
    if let Some(workers) = pool_worker_count() {
        assert_eq!(workers, 0, "serial work must not spawn pool workers");
    }
    // wider widths still answer correctly; on a single-hardware-thread
    // host they stay inline too, so the pool is only ever spawned by the
    // first request that can actually run in parallel
    assert_eq!(ExecPool::global_ordered(2, &items, |_, &i| i * 3), expect);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if let Some(workers) = pool_worker_count() {
        let expected = if cores == 1 { 0 } else { cores };
        assert_eq!(workers, expected, "pool spawns only for genuinely parallel work");
    }
}
