//! Cross-process sharding: slicing one run's work list across `N`
//! processes and merging the partial CSVs back into the unsharded bytes.
//!
//! The scheme has three deterministic pieces:
//!
//! 1. **Slicing.**  A run's work list (the flat sequence of operating
//!    points a harness binary would evaluate) is split by
//!    [`ShardSpec::owns`]: shard `K/N` keeps the items whose flat index is
//!    `≡ K−1 (mod N)`.  Round-robin keeps every shard's load balanced even
//!    when cost grows along the list (rates sweep toward the saturation
//!    knee, where solves and simulations get slower).
//! 2. **Partial reports.**  A sharded run emits the same CSV rows the
//!    unsharded run would — formatted by the same code, so the bytes match
//!    — but only for the items it owns, each prefixed with the row's index
//!    in the unsharded CSV ([`partial_header`] / [`partial_rows`]).
//! 3. **Merging.**  [`merge_shard_csvs`] checks that the partials share
//!    one schema, sorts the rows by their index, verifies the index set is
//!    exactly `0..total` (no gaps, no duplicates — a missing or doubled
//!    shard is a hard error, not silent corruption) and strips the index
//!    column.  The output is byte-identical to the CSV of an unsharded
//!    run, which `cargo xtask ci`'s shard-smoke step verifies end to end.

use std::error::Error;
use std::fmt;

/// Name of the index column prepended to sharded partial CSVs.  The column
/// header carries the run fingerprint (`row:<16 hex digits>`), so partials
/// of *different* runs — different flags, different experiments — refuse to
/// merge even when their row-index sets happen to complement.
pub const PARTIAL_INDEX_COLUMN: &str = "row";

/// Order-sensitive FNV-1a accumulator over a sharded run's identity — the
/// base name, shard count, sweep ids, scenario labels, seed bases and rate
/// grids.  Every shard of one run derives the identity from the *full*
/// (unsharded) run description, so all `N` partials carry the same stamp;
/// a shard launched with different flags stamps differently and
/// [`merge_shard_csvs`] rejects the mix as a [`MergeError::RunMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFingerprint(u64);

impl Default for RunFingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl RunFingerprint {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An empty fingerprint.
    #[must_use]
    pub fn new() -> Self {
        Self(Self::OFFSET_BASIS)
    }

    fn add_byte(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
    }

    /// Folds a string (length-prefixed, so concatenations can't collide).
    pub fn add_str(&mut self, s: &str) {
        self.add_u64(s.len() as u64);
        for byte in s.bytes() {
            self.add_byte(byte);
        }
    }

    /// Folds an integer.
    pub fn add_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.add_byte(byte);
        }
    }

    /// Folds a float by its exact bit pattern.
    pub fn add_f64(&mut self, v: f64) {
        self.add_u64(v.to_bits());
    }

    /// The 64-bit digest stamped into partial headers.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// The digest as its stable 16-digit lower-hex spelling — the exact
    /// string stamped into shard partial headers and used as a cache key by
    /// the serving layer, so the two agree on one identity format.
    ///
    /// ```
    /// use star_exec::RunFingerprint;
    ///
    /// let mut fp = RunFingerprint::new();
    /// fp.add_str("S5/enhanced-nbc/V6/M32");
    /// assert_eq!(fp.to_hex().len(), 16);
    /// assert_eq!(fp.to_hex(), format!("{fp}"));
    /// assert_eq!(fp.to_hex(), format!("{:016x}", fp.finish()));
    /// ```
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for RunFingerprint {
    /// Formats the digest as 16 lower-hex digits (zero-padded, no prefix).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One shard of a cross-process run: this process owns every `count`-th
/// item of the flat work list, starting at `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Zero-based shard index (`K−1` of the `--shard K/N` spelling).
    pub index: usize,
    /// Total number of shards (`N`).
    pub count: usize,
}

/// Why a `--shard` argument failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardParseError {
    /// The argument is not of the form `K/N`.
    Malformed(String),
    /// `N` must be at least 1 and `K` in `1..=N`.
    OutOfRange {
        /// The parsed 1-based shard number.
        shard: u64,
        /// The parsed shard count.
        of: u64,
    },
}

impl fmt::Display for ShardParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardParseError::Malformed(s) => {
                write!(f, "expected --shard K/N (e.g. 2/3), got {s:?}")
            }
            ShardParseError::OutOfRange { shard, of } => {
                write!(f, "shard {shard}/{of} out of range: need 1 <= K <= N")
            }
        }
    }
}

impl Error for ShardParseError {}

impl ShardSpec {
    /// Parses the `--shard K/N` spelling (1-based `K`).
    ///
    /// # Errors
    /// Returns a [`ShardParseError`] when the argument is malformed or `K`
    /// is outside `1..=N`.
    pub fn parse(arg: &str) -> Result<Self, ShardParseError> {
        let (k, n) =
            arg.split_once('/').ok_or_else(|| ShardParseError::Malformed(arg.to_string()))?;
        let (k, n): (u64, u64) = match (k.trim().parse(), n.trim().parse()) {
            (Ok(k), Ok(n)) => (k, n),
            _ => return Err(ShardParseError::Malformed(arg.to_string())),
        };
        if n == 0 || k == 0 || k > n {
            return Err(ShardParseError::OutOfRange { shard: k, of: n });
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(Self { index: (k - 1) as usize, count: n as usize })
    }

    /// Whether this shard owns flat work item `i`.
    #[must_use]
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// The `1ofN`-style label used in partial file names.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}of{}", self.index + 1, self.count)
    }

    /// The partial CSV file name for an output that would be `<base>.csv`
    /// unsharded (e.g. `star_vs_hypercube.shard2of3.csv`).
    #[must_use]
    pub fn file_name(&self, base: &str) -> String {
        format!("{base}.shard{}.csv", self.label())
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// The header line of a partial CSV for the given unsharded header,
/// stamped with the run's [`RunFingerprint`] digest (its stable
/// [`RunFingerprint::to_hex`] spelling).
#[must_use]
pub fn partial_header(header: &str, fingerprint: RunFingerprint) -> String {
    format!("{PARTIAL_INDEX_COLUMN}:{fingerprint},{header}")
}

/// Partial CSV rows: each unsharded-run row prefixed with its index in the
/// unsharded CSV.
#[must_use]
pub fn partial_rows(rows: &[(usize, String)]) -> Vec<String> {
    rows.iter().map(|(index, row)| format!("{index},{row}")).collect()
}

/// Why a set of partial CSVs does not merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No partial files were given.
    NoPartials,
    /// A partial is empty or its header lacks the fingerprint-stamped
    /// index column.
    BadHeader {
        /// Which partial (by argument position).
        partial: usize,
        /// The offending header line.
        header: String,
    },
    /// Two partials were written by different runs (different flags or
    /// different experiments) — their fingerprints disagree.
    RunMismatch {
        /// Which partial (by argument position).
        partial: usize,
        /// The first partial's fingerprint digest.
        expected: u64,
        /// The fingerprint found.
        found: u64,
    },
    /// Two partials disagree on the underlying schema.
    HeaderMismatch {
        /// Which partial (by argument position).
        partial: usize,
        /// The schema of partial 0.
        expected: String,
        /// The schema found.
        found: String,
    },
    /// A data row does not start with a `row_index,` prefix.
    BadRow {
        /// Which partial (by argument position).
        partial: usize,
        /// The offending line.
        row: String,
    },
    /// Two rows claim the same unsharded index (a shard ran twice?).
    DuplicateRow {
        /// The duplicated unsharded row index.
        index: usize,
    },
    /// The index set has a gap (a shard is missing?).
    MissingRow {
        /// The first absent unsharded row index.
        index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoPartials => write!(f, "no partial CSVs to merge"),
            MergeError::BadHeader { partial, header } => write!(
                f,
                "partial #{partial}: header {header:?} does not start with \
                 \"{PARTIAL_INDEX_COLUMN}:<fingerprint>,\" — not a sharded partial CSV"
            ),
            MergeError::RunMismatch { partial, expected, found } => write!(
                f,
                "partial #{partial}: run fingerprint {found:016x} differs from the first \
                 partial's {expected:016x} — the partials come from different runs \
                 (different flags or experiments)"
            ),
            MergeError::HeaderMismatch { partial, expected, found } => write!(
                f,
                "partial #{partial}: schema {found:?} differs from the first \
                 partial's {expected:?}"
            ),
            MergeError::BadRow { partial, row } => {
                write!(f, "partial #{partial}: row {row:?} has no leading row index")
            }
            MergeError::DuplicateRow { index } => {
                write!(f, "row {index} appears in more than one partial (shard ran twice?)")
            }
            MergeError::MissingRow { index } => {
                write!(f, "row {index} is missing (incomplete shard set?)")
            }
        }
    }
}

impl Error for MergeError {}

/// Merges partial CSV *contents* (one string per shard, any order) into
/// the unsharded CSV: validates the shared schema and the completeness of
/// the index set, sorts by unsharded row index, strips the index column.
///
/// The result is byte-identical to the CSV an unsharded run writes,
/// because every data row was formatted by the same code that formats the
/// unsharded rows and only the index prefix is added/removed around it.
///
/// # Errors
/// Returns a [`MergeError`] describing the first inconsistency found.
pub fn merge_shard_csvs(partials: &[String]) -> Result<String, MergeError> {
    let mut schema: Option<String> = None;
    let mut run: Option<u64> = None;
    let mut rows: Vec<(usize, String)> = Vec::new();
    for (pi, partial) in partials.iter().enumerate() {
        let mut lines = partial.lines();
        let header = lines.next().unwrap_or_default();
        let bad_header = || MergeError::BadHeader { partial: pi, header: header.to_string() };
        let (stamp, inner) = header.split_once(',').ok_or_else(bad_header)?;
        let fingerprint = stamp
            .strip_prefix(&format!("{PARTIAL_INDEX_COLUMN}:"))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(bad_header)?;
        match run {
            None => run = Some(fingerprint),
            Some(expected) if expected != fingerprint => {
                return Err(MergeError::RunMismatch { partial: pi, expected, found: fingerprint });
            }
            Some(_) => {}
        }
        match &schema {
            None => schema = Some(inner.to_string()),
            Some(expected) if expected != inner => {
                return Err(MergeError::HeaderMismatch {
                    partial: pi,
                    expected: expected.clone(),
                    found: inner.to_string(),
                });
            }
            Some(_) => {}
        }
        for line in lines {
            let (index, rest) = line
                .split_once(',')
                .and_then(|(i, rest)| i.parse::<usize>().ok().map(|i| (i, rest)))
                .ok_or_else(|| MergeError::BadRow { partial: pi, row: line.to_string() })?;
            rows.push((index, rest.to_string()));
        }
    }
    let schema = schema.ok_or(MergeError::NoPartials)?;
    rows.sort_by_key(|(index, _)| *index);
    for (position, (index, _)) in rows.iter().enumerate() {
        if *index < position {
            return Err(MergeError::DuplicateRow { index: *index });
        }
        if *index > position {
            return Err(MergeError::MissingRow { index: position });
        }
    }
    let mut out = String::with_capacity(
        schema.len() + 1 + rows.iter().map(|(_, r)| r.len() + 1).sum::<usize>(),
    );
    out.push_str(&schema);
    out.push('\n');
    for (_, row) in &rows {
        out.push_str(row);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_one_based_shards() {
        assert_eq!(ShardSpec::parse("1/3"), Ok(ShardSpec { index: 0, count: 3 }));
        assert_eq!(ShardSpec::parse("3/3"), Ok(ShardSpec { index: 2, count: 3 }));
        assert_eq!(ShardSpec::parse("1/1"), Ok(ShardSpec { index: 0, count: 1 }));
        assert_eq!(ShardSpec::parse("2/3").unwrap().to_string(), "2/3");
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in ["", "3", "a/b", "1/3/5", "1-3"] {
            assert!(matches!(ShardSpec::parse(bad), Err(ShardParseError::Malformed(_))), "{bad}");
        }
        for out in ["0/3", "4/3", "1/0"] {
            assert!(
                matches!(ShardSpec::parse(out), Err(ShardParseError::OutOfRange { .. })),
                "{out}"
            );
        }
        assert!(ShardSpec::parse("0/3").unwrap_err().to_string().contains("out of range"));
        assert!(ShardSpec::parse("x").unwrap_err().to_string().contains("expected --shard"));
    }

    #[test]
    fn shards_partition_the_work_list() {
        let specs: Vec<ShardSpec> = (0..3).map(|index| ShardSpec { index, count: 3 }).collect();
        for i in 0..20 {
            let owners = specs.iter().filter(|s| s.owns(i)).count();
            assert_eq!(owners, 1, "item {i} must have exactly one owner");
        }
        assert!(specs[1].owns(1) && specs[1].owns(4));
        assert_eq!(specs[1].label(), "2of3");
        assert_eq!(specs[1].file_name("report"), "report.shard2of3.csv");
    }

    fn fp_of(tag: u64) -> RunFingerprint {
        let mut fp = RunFingerprint::new();
        fp.add_u64(tag);
        fp
    }

    fn partial_of_run(header: &str, fingerprint: RunFingerprint, rows: &[(usize, &str)]) -> String {
        let mut out = partial_header(header, fingerprint);
        out.push('\n');
        let owned: Vec<(usize, String)> = rows.iter().map(|&(i, r)| (i, r.to_string())).collect();
        for row in partial_rows(&owned) {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    fn partial(header: &str, rows: &[(usize, &str)]) -> String {
        partial_of_run(header, fp_of(7), rows)
    }

    #[test]
    fn fingerprints_are_deterministic_and_order_sensitive() {
        let digest = |build: &dyn Fn(&mut RunFingerprint)| {
            let mut fp = RunFingerprint::new();
            build(&mut fp);
            fp.finish()
        };
        let a = digest(&|fp| {
            fp.add_str("s4");
            fp.add_u64(3);
            fp.add_f64(0.002);
        });
        let same = digest(&|fp| {
            fp.add_str("s4");
            fp.add_u64(3);
            fp.add_f64(0.002);
        });
        assert_eq!(a, same, "the digest is a pure function of the folded values");
        let reordered = digest(&|fp| {
            fp.add_u64(3);
            fp.add_str("s4");
            fp.add_f64(0.002);
        });
        assert_ne!(a, reordered);
        // length prefixing keeps concatenations apart
        let ab = digest(&|fp| {
            fp.add_str("a");
            fp.add_str("b");
        });
        let a_b = digest(&|fp| fp.add_str("ab"));
        assert_ne!(ab, a_b);
    }

    #[test]
    fn hex_spelling_is_stable_and_round_trips_through_headers() {
        let fp = fp_of(0xBEEF);
        assert_eq!(fp.to_hex(), format!("{:016x}", fp.finish()));
        assert_eq!(fp.to_hex(), fp.to_string(), "Display and to_hex agree");
        assert_eq!(fp.to_hex().len(), 16, "zero-padded to a fixed width");
        // the header stamp is exactly the hex spelling, and the merge parser
        // reads it back as the same digest
        let header = partial_header("x,y", fp);
        assert_eq!(header, format!("row:{},x,y", fp.to_hex()));
        let merged = merge_shard_csvs(&[format!("{header}\n0,1,a\n")]).unwrap();
        assert_eq!(merged, "x,y\n1,a\n");
    }

    #[test]
    fn merge_restores_the_unsharded_bytes() {
        let a = partial("x,y", &[(0, "0.1,a"), (2, "0.3,c")]);
        let b = partial("x,y", &[(1, "0.2,b"), (3, "0.4,d")]);
        // order of partials must not matter
        for pair in [[a.clone(), b.clone()], [b.clone(), a.clone()]] {
            let merged = merge_shard_csvs(&pair).unwrap();
            assert_eq!(merged, "x,y\n0.1,a\n0.2,b\n0.3,c\n0.4,d\n");
        }
    }

    #[test]
    fn merge_accepts_empty_shards() {
        let a = partial("x", &[(0, "only")]);
        let empty = partial("x", &[]);
        assert_eq!(merge_shard_csvs(&[a, empty]).unwrap(), "x\nonly\n");
    }

    #[test]
    fn merge_rejects_inconsistent_partials() {
        assert_eq!(merge_shard_csvs(&[]), Err(MergeError::NoPartials));
        let good = partial("x,y", &[(0, "0.1,a")]);
        for not_a_partial in ["x,y\n1,nope\n", "row,x,y\n1,nope\n", "row:zz,x\n"] {
            assert!(
                matches!(
                    merge_shard_csvs(&[not_a_partial.to_string()]),
                    Err(MergeError::BadHeader { partial: 0, .. })
                ),
                "{not_a_partial:?}"
            );
        }
        // complementary indices, same schema, but written by different runs
        let other_run = partial_of_run("x,y", fp_of(8), &[(1, "0.2,b")]);
        assert!(matches!(
            merge_shard_csvs(&[good.clone(), other_run]),
            Err(MergeError::RunMismatch { partial: 1, expected, found })
                if expected == fp_of(7).finish() && found == fp_of(8).finish()
        ));
        assert!(matches!(
            merge_shard_csvs(&[good.clone(), partial("x,z", &[(1, "0.2,b")])]),
            Err(MergeError::HeaderMismatch { partial: 1, .. })
        ));
        assert!(matches!(
            merge_shard_csvs(&[format!("{}oops,row\n", partial("x,y", &[]))]),
            Err(MergeError::BadRow { .. })
        ));
        assert_eq!(
            merge_shard_csvs(&[good.clone(), good.clone()]),
            Err(MergeError::DuplicateRow { index: 0 })
        );
        assert_eq!(
            merge_shard_csvs(&[good, partial("x,y", &[(2, "0.3,c")])]),
            Err(MergeError::MissingRow { index: 1 })
        );
        assert!(MergeError::MissingRow { index: 1 }.to_string().contains("missing"));
    }
}
