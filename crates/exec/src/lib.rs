//! # star-exec
//!
//! The shared execution layer of the star-wormhole workspace: one
//! [`ExecPool`] of persistent workers behind every parallel path
//! (`SweepRunner` sweep sharding, the analytical models' per-iteration
//! blocking sums, the destination-spectrum build), plus the
//! [`shard`] machinery that splits one run's work list across processes
//! and merges the partial CSVs back together.
//!
//! ## Why a persistent pool
//!
//! Before this crate each parallel site spawned its own scoped threads per
//! call.  That is fine for coarse work (a sweep of operating points) but
//! PR 4 measured that it makes the *fine-grained* sites — the per-class
//! blocking sums inside every fixed-point iteration, called thousands of
//! times per solve — slower than the serial loop on all but the largest
//! spectra: the spawn/join cost dominates the microseconds of useful work.
//! [`ExecPool`] spawns its workers once and reuses them for every batch, so
//! opting a solve into parallelism costs a queue push per batch instead of
//! a thread spawn per iteration.  The `model_solve`/`hypercube_model`
//! benches record the pool-vs-spawn delta (see [`spawn_ordered`], the
//! spawn-per-call baseline kept exactly for that comparison).
//!
//! ## The determinism contract
//!
//! [`ExecPool::run_ordered`] computes `f(i, &items[i])` for every item of a
//! slice and returns the results **in item order**.  Each item is evaluated
//! exactly once, by exactly one executor, with the same inputs regardless
//! of which executor runs it or when — scheduling chooses *who* computes an
//! item, never *what* is computed — and results are reassembled by index.
//! Consequently the returned vector is **byte-identical for any worker
//! count**, including the serial short-circuit.  Every caller in the
//! workspace (sweep runner, blocking sums, spectrum build) inherits its
//! "`--threads` never changes the output" guarantee from this contract,
//! and the tests pin it at all three call sites.
//!
//! A width of `0` means "all pool workers" (the `--threads 0` convention of
//! the harness binaries); `1` short-circuits to a serial loop on the
//! calling thread with no queue traffic at all.  Panics from `f` are
//! caught, the batch is drained, and the first panic payload is re-thrown
//! on the caller — a panicking work item never takes a pool worker down
//! with it.
//!
//! Nested batches are safe: the calling thread always participates as an
//! executor, so a batch submitted from inside a pool worker completes even
//! when every other worker is busy (it merely runs with less parallelism).
//!
//! ## Cross-process sharding
//!
//! [`shard::ShardSpec`] deterministically slices a run's flat work list
//! (`--shard K/N` keeps the items whose index `≡ K−1 (mod N)`), partial
//! CSVs carry each row's index in the unsharded run
//! ([`shard::partial_header`] / [`shard::partial_rows`]), and
//! [`shard::merge_shard_csvs`] reassembles any set of partials into a CSV
//! byte-identical to the unsharded run — `cargo xtask merge-shards` is a
//! thin wrapper around it.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod pool;
pub mod shard;

pub use pool::{spawn_ordered, ExecPool};
pub use shard::{merge_shard_csvs, MergeError, RunFingerprint, ShardParseError, ShardSpec};
