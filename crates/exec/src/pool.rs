//! The persistent, deterministic worker pool.
//!
//! One [`ExecPool`] owns a set of long-lived worker threads and a shared
//! job queue.  Work arrives as *batches* ([`ExecPool::run_ordered`]): the
//! caller hands over a slice of items and a function, helper jobs are
//! queued for the pool workers, and the calling thread itself joins in as
//! an executor.  Executors claim chunks of consecutive item indices from
//! an atomic ticket counter, so a batch drains without any per-item
//! locking on the hot path; results land in per-index slots and are
//! collected in item order once the batch closes.
//!
//! The load-bearing `unsafe` of the workspace lives here (the only other
//! occurrence is `star-serve`'s one-line SIGINT binding), in one well-worn
//! shape
//! (the same lifetime erasure `rayon`/`crossbeam` scopes are built on): a
//! batch borrows the caller's stack, but pool workers are `'static`
//! threads, so the helper jobs carry a type-erased raw pointer to the
//! batch context instead of a borrow.  Safety rests on the **gate
//! protocol** documented at the private `Shared`/`Gate` types in this
//! file: a helper may only dereference the
//! context after checking in through the gate while it is open, and
//! `run_ordered` cannot return (ending the borrow) until it has closed the
//! gate and every checked-in helper has checked out.  Helper jobs that
//! reach the front of the queue after the gate closed return without ever
//! touching the context.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A queued unit of pool work: either a batch helper or a shutdown signal
/// (represented by draining the queue while `shutdown` is set).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolState {
    queue: Mutex<PoolQueue>,
    job_ready: Condvar,
}

/// A persistent pool of worker threads executing deterministic ordered
/// batches.
///
/// Most callers want [`ExecPool::global`] — one process-wide pool sized to
/// the available parallelism, shared by every parallel path in the
/// workspace.  Dedicated pools ([`ExecPool::new`]) exist for tests and for
/// embedding the crate elsewhere; dropping one joins its workers.
///
/// See the [crate docs](crate) for the determinism contract.
pub struct ExecPool {
    state: Arc<PoolState>,
    workers: usize,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool").field("workers", &self.workers).finish()
    }
}

impl ExecPool {
    /// Spawns a pool with the given number of persistent workers; `0` means
    /// one worker per available hardware thread.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = if workers > 0 { workers } else { hardware_threads() };
        let state = Arc::new(PoolState {
            queue: Mutex::new(PoolQueue { jobs: VecDeque::new(), shutdown: false }),
            job_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("star-exec-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawning a pool worker must succeed")
            })
            .collect();
        Self { state, workers, handles }
    }

    /// The process-wide shared pool (one worker per available hardware
    /// thread, spawned on first use, never torn down).
    #[must_use]
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecPool::new(0))
    }

    /// Number of persistent workers.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers
    }

    /// Resolves a requested batch width: `0` means all pool workers.
    #[must_use]
    pub fn resolve_width(&self, width: usize) -> usize {
        if width > 0 {
            width
        } else {
            self.workers
        }
    }

    fn submit(&self, job: Job) {
        let mut queue = self.state.queue.lock().expect("pool queue poisoned");
        debug_assert!(!queue.shutdown, "submitting to a shut-down pool");
        queue.jobs.push_back(job);
        drop(queue);
        self.state.job_ready.notify_one();
    }

    /// [`Self::run_ordered`] on the shared [`Self::global`] pool, without
    /// instantiating it for serial work: a width of `1`, a batch of fewer
    /// than two items, or a single-hardware-thread host executes inline on
    /// the calling thread and never spawns the pool's workers.  This is
    /// the entry point the default-serial call sites (the models' blocking
    /// sums, the spectrum build, the sweep runner) go through, so a
    /// process that never actually runs anything in parallel never pays
    /// for idle worker threads.
    ///
    /// # Panics
    /// As [`Self::run_ordered`].
    pub fn global_ordered<I, T, F>(width: usize, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        if width == 1 || items.len() < 2 || hardware_threads() == 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        Self::global().run_ordered(width, items, f)
    }

    /// Computes `f(i, &items[i])` for every item and returns the results in
    /// item order — byte-identical for any `width` (see the
    /// [crate docs](crate) for the full determinism contract).
    ///
    /// `width` is the number of executors the batch may use: `0` means all
    /// pool workers, `1` short-circuits to a serial loop on the calling
    /// thread.  The calling thread always participates, so the effective
    /// parallelism is `min(width, items.len())` and nested batches cannot
    /// deadlock even on a saturated pool.
    ///
    /// # Panics
    /// Re-throws the first panic raised by `f` (after the whole batch has
    /// been drained, so no work item is left running when this returns).
    pub fn run_ordered<I, T, F>(&self, width: usize, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let executors = self.resolve_width(width).min(items.len()).max(1);
        if executors == 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        let mut slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let ctx = Ctx {
            items,
            f: &f,
            slots: &slots,
            next: &next,
            // ~4 chunks per executor balances ticket traffic against tail
            // imbalance; any chunking yields the same results
            chunk: (items.len() / (executors * 4)).max(1),
            panic: &panic_slot,
        };
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate { closed: false, active: 0 }),
            gate_change: Condvar::new(),
            run: run_batch::<I, T, F>,
            ctx: SendPtr(std::ptr::from_ref(&ctx).cast::<()>()),
        });
        for _ in 0..executors - 1 {
            let shared = Arc::clone(&shared);
            self.submit(Box::new(move || helper_entry(&shared)));
        }

        // the caller is always an executor: even if every pool worker is
        // busy (or the pool is this thread's own, nested), the batch drains
        ctx.run();

        // close the gate: helpers that did not check in yet will skip, and
        // the borrowed context stays alive until the checked-in ones leave
        let mut gate = shared.gate.lock().expect("batch gate poisoned");
        gate.closed = true;
        while gate.active > 0 {
            gate = shared.gate_change.wait(gate).expect("batch gate poisoned");
        }
        drop(gate);

        if let Some(payload) = panic_slot.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        slots
            .drain(..)
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every item of a drained batch has a result")
            })
            .collect()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut queue = self.state.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.state.job_ready.notify_all();
        for handle in self.handles.drain(..) {
            handle.join().expect("pool workers never panic out of a job");
        }
    }
}

/// The host's available parallelism, sampled once (the pool's `0` width and
/// the serial short-circuit of [`ExecPool::global_ordered`] both use it).
fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = state.job_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        match job {
            // helper entries contain their own panics (the payload travels
            // back to the batch owner), but stay defensive: a worker must
            // outlive any single job
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

/// The gate a batch's helpers synchronise on.  Protocol:
///
/// 1. a helper locks the gate; if `closed`, it returns **without touching
///    the context pointer** (the borrow may already be over);
/// 2. otherwise it increments `active`, releases the lock, and may now
///    dereference the context — the owner is still inside `run_ordered`;
/// 3. when done it decrements `active` and signals `gate_change`;
/// 4. the owner, after finishing its own share, sets `closed` and blocks on
///    `gate_change` until `active == 0`; only then may `run_ordered`
///    return and the borrowed context die.
struct Gate {
    closed: bool,
    active: usize,
}

/// Type-erased raw pointer to a batch's stack-borrowed [`Ctx`].
///
/// Raw pointers are not `Send`/`Sync`; this wrapper asserts both because
/// the pointer is only ever dereferenced under the gate protocol above,
/// which guarantees the pointee is alive and the pointee's own
/// synchronisation (`&[I]: Sync`, per-slot mutexes, atomics) makes shared
/// access sound.
struct SendPtr(*const ());

// SAFETY: see the type docs — dereferences are confined to gate-protected
// helper executions, during which the pointee is alive and `Sync`.
unsafe impl Send for SendPtr {}
// SAFETY: as above.
unsafe impl Sync for SendPtr {}

struct Shared {
    gate: Mutex<Gate>,
    gate_change: Condvar,
    /// Monomorphised executor entry: casts the erased pointer back to the
    /// concrete `Ctx<I, T, F>` and drains tickets.
    run: unsafe fn(*const ()),
    ctx: SendPtr,
}

fn helper_entry(shared: &Shared) {
    {
        let mut gate = shared.gate.lock().expect("batch gate poisoned");
        if gate.closed {
            return;
        }
        gate.active += 1;
    }
    // SAFETY: the gate was open when we checked in, so the batch owner is
    // still blocked inside `run_ordered` and the context outlives this
    // call; the owner cannot proceed past the gate until we check out.
    unsafe { (shared.run)(shared.ctx.0) };
    let mut gate = shared.gate.lock().expect("batch gate poisoned");
    gate.active -= 1;
    if gate.active == 0 {
        shared.gate_change.notify_all();
    }
}

struct Ctx<'scope, I, T, F> {
    items: &'scope [I],
    f: &'scope F,
    slots: &'scope [Mutex<Option<T>>],
    next: &'scope AtomicUsize,
    chunk: usize,
    panic: &'scope Mutex<Option<Box<dyn Any + Send>>>,
}

impl<I: Sync, T: Send, F: Fn(usize, &I) -> T + Sync> Ctx<'_, I, T, F> {
    /// Drains chunks of item tickets until the batch is exhausted.  Never
    /// unwinds: panics from `f` are parked in the shared panic slot and the
    /// remaining tickets are cancelled so the batch closes promptly.
    fn run(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.items.len() {
                break;
            }
            let end = (start + self.chunk).min(self.items.len());
            for i in start..end {
                match catch_unwind(AssertUnwindSafe(|| (self.f)(i, &self.items[i]))) {
                    Ok(value) => {
                        *self.slots[i].lock().expect("slot lock poisoned") = Some(value);
                    }
                    Err(payload) => {
                        let mut slot = self.panic.lock().expect("panic slot poisoned");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        // cancel the tickets nobody claimed yet (claimed
                        // chunks still finish; the owner waits for them)
                        self.next.fetch_max(self.items.len(), Ordering::Relaxed);
                        return;
                    }
                }
            }
        }
    }
}

/// Monomorphised batch entry used by [`helper_entry`] through the erased
/// function pointer in [`Shared`].
///
/// # Safety
/// `ctx` must point to a live `Ctx<I, T, F>` with exactly these type
/// parameters — guaranteed by construction in [`ExecPool::run_ordered`],
/// which pairs the pointer with this instantiation — and the pointee must
/// outlive the call, which the gate protocol guarantees.
unsafe fn run_batch<I: Sync, T: Send, F: Fn(usize, &I) -> T + Sync>(ctx: *const ()) {
    // SAFETY: see the function docs.
    let ctx = unsafe { &*ctx.cast::<Ctx<'_, I, T, F>>() };
    ctx.run();
}

/// The spawn-per-call baseline [`ExecPool::run_ordered`] replaced: the same
/// ordered-map semantics (identical outputs, same width convention with
/// `0` = all available parallelism) implemented by spawning fresh scoped
/// threads for every call.
///
/// Kept **only** so the `model_solve`/`hypercube_model` benches can record
/// the pool-vs-spawn delta that motivated the persistent pool; production
/// code paths all use the pool.
///
/// # Panics
/// Propagates panics from `f` (via the scoped join).
#[must_use]
pub fn spawn_ordered<I, T, F>(width: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let width = if width > 0 {
        width
    } else {
        thread::available_parallelism().map_or(1, std::num::NonZero::get)
    };
    let workers = width.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let indexed: Vec<(usize, &I)> = items.iter().enumerate().collect();
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = indexed
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || chunk.iter().map(|&(i, item)| f(i, item)).collect::<Vec<T>>())
            })
            .collect();
        // joining in spawn order restores item order
        handles.into_iter().flat_map(|h| h.join().expect("spawned worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ordered_results_for_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        let pool = ExecPool::new(4);
        for width in [0usize, 1, 2, 3, 4, 7, 200] {
            assert_eq!(pool.run_ordered(width, &items, |_, &i| i * i), expect, "width {width}");
        }
        assert_eq!(spawn_ordered(3, &items, |_, &i| i * i), expect);
        assert_eq!(spawn_ordered(0, &items, |_, &i| i * i), expect);
    }

    #[test]
    fn indices_match_items() {
        let items = ["a", "b", "c", "d", "e"];
        let out = ExecPool::global().run_ordered(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_and_single_batches() {
        let pool = ExecPool::new(2);
        let empty: Vec<u32> = pool.run_ordered(4, &[] as &[u32], |_, &x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.run_ordered(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        let _ = ExecPool::global()
            .run_ordered(0, &items, |_, &i| counters[i].fetch_add(1, Ordering::Relaxed));
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_batches_complete_on_a_busy_pool() {
        // a 1-worker pool: the outer batch occupies the only worker, so the
        // inner batches must drain on their calling (worker/owner) threads
        let pool = ExecPool::new(1);
        let outer: Vec<usize> = (0..8).collect();
        let result = pool.run_ordered(0, &outer, |_, &i| {
            let inner: Vec<usize> = (0..4).collect();
            pool.run_ordered(0, &inner, |_, &j| i * 10 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| 4 * (i * 10) + 6).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn panic_in_worker_propagates_to_the_caller() {
        let pool = ExecPool::new(3);
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(3, &items, |_, &i| {
                assert!(i != 17, "work item 17 exploded");
                i
            })
        }));
        let payload = result.expect_err("the batch must re-throw the item panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is the message");
        assert!(message.contains("work item 17 exploded"), "got {message:?}");
        // the pool survives: workers caught the unwind and keep serving
        assert_eq!(pool.run_ordered(3, &[1u32, 2, 3], |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = ExecPool::global();
        let b = ExecPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
        assert_eq!(a.resolve_width(0), a.threads());
        assert_eq!(a.resolve_width(5), 5);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ExecPool::new(2);
        let items: Vec<u32> = (0..16).collect();
        let doubled = pool.run_ordered(0, &items, |_, &x| x * 2);
        assert_eq!(doubled[15], 30);
        drop(pool); // must not hang or panic
    }
}
