//! Criterion benchmark: the star-graph primitives on the simulator's and the
//! model's hot paths — distance evaluation, profitable-dimension enumeration,
//! rank/unrank, minimal-path DAG construction and the exact distance
//! distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use star_graph::path::MinimalPathDag;
use star_graph::rank::{rank, unrank};
use star_graph::{distance, factorial, Permutation, StarGraph, Topology};

fn bench_permutation_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_ops");
    let perms: Vec<Permutation> = (0..factorial(7)).step_by(97).map(|r| unrank(7, r)).collect();
    group.bench_function("distance_to_identity_s7", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &perms {
                acc += black_box(p.distance_to_identity());
            }
            acc
        });
    });
    group.bench_function("profitable_dimensions_s7", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &perms {
                acc += black_box(p.profitable_dimensions().len());
            }
            acc
        });
    });
    group.bench_function("rank_unrank_roundtrip_s7", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in (0..factorial(7)).step_by(97) {
                acc += black_box(rank(&unrank(7, r)));
            }
            acc
        });
    });
    group.finish();
}

fn bench_topology_and_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_and_paths");
    group.bench_function("stargraph_construction_s6", |b| {
        b.iter(|| black_box(StarGraph::new(6)));
    });
    let s5 = StarGraph::new(5);
    group.bench_function("min_route_ports_all_pairs_s5", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for src in 0..s5.node_count() as u32 {
                acc += s5.min_route_ports(src, 0).len();
            }
            black_box(acc)
        });
    });
    group.bench_function("minimal_path_dag_diameter_s5", |b| {
        let rel = Permutation::from_symbols(&[2, 1, 4, 3, 5]).unwrap();
        b.iter(|| black_box(MinimalPathDag::build(&rel).adaptivity_profile()));
    });
    group.bench_function("distance_distribution_s9", |b| {
        b.iter(|| black_box(distance::star_distance_distribution(9)));
    });
    group.finish();
}

criterion_group!(benches, bench_permutation_ops, bench_topology_and_paths);
criterion_main!(benches);
