//! Criterion benchmark: cost of one analytical-model evaluation.
//!
//! The selling point of the model over simulation is that one operating point
//! costs microseconds-to-milliseconds instead of seconds; this bench
//! quantifies that for the paper's configurations (`S5`, `V = 6/9/12`) and for
//! the larger networks the model is meant to reach (`S6`, `S7`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use star_core::blocking::{batch_blocking_delays, total_blocking_delay, VcSplit};
use star_core::occupancy::ChannelOccupancy;
use star_core::{
    AnalyticalModel, DestinationSpectrum, ModelConfig, ModelParams, ModelResult, SpectrumModel,
    TraversalSpectrum,
};
use star_exec::spawn_ordered;
use star_graph::Torus;

fn config(symbols: usize, v: usize, rate: f64) -> ModelConfig {
    ModelConfig::builder()
        .symbols(symbols)
        .virtual_channels(v)
        .message_length(32)
        .traffic_rate(rate)
        .build()
}

fn solve(symbols: usize, v: usize, rate: f64) -> ModelResult {
    AnalyticalModel::new(config(symbols, v, rate)).solve()
}

fn bench_model_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_solve");
    for &v in &[6usize, 9, 12] {
        group.bench_function(format!("s5_v{v}_moderate_load"), |b| {
            b.iter(|| black_box(solve(5, v, 0.006)));
        });
    }
    group.bench_function("s6_v6_moderate_load", |b| {
        b.iter(|| black_box(solve(6, 6, 0.004)));
    });
    group.bench_function("s7_v8_light_load", |b| {
        b.iter(|| black_box(solve(7, 8, 0.001)));
    });
    // the per-destination parallelism pair: the same S7 solve with the
    // per-cycle-type blocking sums computed serially vs sharded across
    // the persistent pool (byte-identical answers; this records the
    // speedup of the parallel path at the largest spectrum the star model
    // ships, now that the pool removed the per-iteration spawn cost)
    let spectrum = std::sync::Arc::new(DestinationSpectrum::new(7));
    for threads in [1usize, 2, 4] {
        let model = AnalyticalModel::with_spectrum(config(7, 8, 0.004), Arc::clone(&spectrum))
            .with_parallelism(threads);
        group.bench_function(format!("s7_v8_moderate_load_blocking_threads{threads}"), |b| {
            b.iter(|| black_box(model.solve()));
        });
    }
    group.finish();
}

fn bench_pool_vs_spawn(c: &mut Criterion) {
    // one S7 blocking batch — the unit of work every fixed-point iteration
    // repeats — through the persistent pool vs the retired spawn-per-call
    // baseline.  PR 4 measured that spawn-per-step made this batch not
    // worth parallelising; this pair records the regression being fixed
    // (identical outputs, only the execution layer differs).
    let spectrum = DestinationSpectrum::new(7);
    let profiles: Vec<&star_graph::AdaptivityProfile> =
        spectrum.classes().iter().map(|c| &c.profile).collect();
    let split = VcSplit { adaptive: 2, escape_levels: 6, bonus_cards: true };
    let occupancy = ChannelOccupancy::new(0.004, 60.0, 8);
    let mut group = c.benchmark_group("blocking_batch");
    group.bench_function("s7_serial", |b| {
        b.iter(|| black_box(batch_blocking_delays(split, &occupancy, &profiles, 12.0, 1)));
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("s7_pool_threads{threads}"), |b| {
            b.iter(|| {
                black_box(batch_blocking_delays(split, &occupancy, &profiles, 12.0, threads))
            });
        });
        group.bench_function(format!("s7_spawn_threads{threads}"), |b| {
            b.iter(|| {
                black_box(spawn_ordered(threads, &profiles, |_, profile| {
                    total_blocking_delay(split, &occupancy, profile, 12.0)
                }))
            });
        });
    }
    group.finish();
}

fn bench_spectrum_and_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_components");
    group.bench_function("destination_spectrum_s5", |b| {
        b.iter(|| black_box(DestinationSpectrum::new(5)));
    });
    // per-destination parallelism of the spectrum build itself (path DAGs
    // per cycle type are independent)
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("destination_spectrum_s7_threads{threads}"), |b| {
            b.iter(|| black_box(DestinationSpectrum::with_threads(7, threads)));
        });
    }
    group.bench_function("sweep_reusing_spectrum_s5_v6_8pts", |b| {
        let rates: Vec<f64> = (1..=8).map(|i| 0.0015 * i as f64).collect();
        b.iter(|| black_box(star_core::sweep_traffic(config(5, 6, 0.001), &rates)));
    });
    // the generic-path pair: the one-off BFS distance census a new topology
    // plugin pays instead of a closed-form spectrum, and the spectrum-model
    // solve that reuses it per operating point
    group.bench_function("traversal_spectrum_t12_build", |b| {
        let torus = Torus::new(12);
        b.iter(|| black_box(TraversalSpectrum::new(&torus)));
    });
    group.bench_function("t12_v8_moderate_load_spectrum_solve", |b| {
        let params = ModelParams {
            virtual_channels: 8,
            message_length: 32,
            traffic_rate: 0.004,
            ..ModelParams::default()
        };
        let spectrum = Arc::new(TraversalSpectrum::new(&Torus::new(12)));
        let model = SpectrumModel::new(params, Arc::clone(&spectrum));
        b.iter(|| black_box(model.solve()));
    });
    group.finish();
}

criterion_group!(benches, bench_model_solve, bench_spectrum_and_sweep, bench_pool_vs_spawn);
criterion_main!(benches);
