//! Criterion benchmark: the cost of regenerating one operating point of
//! Figure 1 (model evaluation vs one quick simulator run at the same point),
//! both through the unified `Evaluator` API.
//!
//! The full figures are produced by the `figure1` harness binary; this bench
//! tracks how expensive each half of a figure point is, which is the
//! model-vs-simulation cost argument made in the paper's introduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use star_workloads::{Evaluator as _, ModelBackend, Scenario, SimBackend, SimBudget};

fn fig1_scenario(v: usize) -> Scenario {
    Scenario::star(5).with_virtual_channels(v).with_message_length(32)
}

fn bench_fig1_model_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_model_point");
    let backend = ModelBackend::new();
    for &v in &[6usize, 9, 12] {
        group.bench_function(format!("s5_v{v}_rate0.006"), |b| {
            b.iter(|| black_box(backend.evaluate(&fig1_scenario(v).at(0.006))));
        });
    }
    group.finish();
}

fn bench_fig1_sim_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_sim_point");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    let backend = SimBackend::new(SimBudget::Quick);
    group.bench_function("s5_v6_rate0.004_quick", |b| {
        b.iter(|| black_box(backend.evaluate(&fig1_scenario(6).with_seed_base(5).at(0.004))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_model_points, bench_fig1_sim_point);
criterion_main!(benches);
