//! Criterion benchmark: cold-started vs warm-started Figure-1 model sweeps.
//!
//! `sweep_traffic` seeds each rate's damped fixed-point iteration with the
//! previous rate's converged state; this bench pins the speedup against the
//! cold-start sweep on the paper's `S5`, `V = 6`, `M = 32` curve (where the
//! points near the saturation knee dominate the solve cost), both directly
//! through `star-core` and through the `SweepRunner` + `ModelBackend` path
//! the harness binaries use.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use star_core::{sweep_traffic, sweep_traffic_cold, ModelConfig};
use star_workloads::{ModelBackend, Scenario, SweepRunner, SweepSpec};

fn s5_rates() -> Vec<f64> {
    // the V = 6, M = 32 axis of Figure 1, dense enough to hug the knee
    (1..=16).map(|i| 0.0008 * i as f64).collect()
}

fn bench_core_sweeps(c: &mut Criterion) {
    let config = ModelConfig::builder().symbols(5).virtual_channels(6).message_length(32).build();
    let rates = s5_rates();
    let mut group = c.benchmark_group("sweep_warmstart");
    group.bench_function("s5_v6_m32_cold", |b| {
        b.iter(|| black_box(sweep_traffic_cold(config, &rates)));
    });
    group.bench_function("s5_v6_m32_warm", |b| {
        b.iter(|| black_box(sweep_traffic(config, &rates)));
    });
    group.finish();
}

fn bench_runner_sweeps(c: &mut Criterion) {
    // The cold backend also loses spectrum sharing: without rate chaining the
    // runner shards at point granularity, so each point rebuilds its
    // destination spectrum.  This pair therefore measures the full user-facing
    // delta of the warm path, not just the solver iterations.
    let sweep = SweepSpec::new("fig1a-M32", Scenario::star(5), s5_rates());
    let mut group = c.benchmark_group("sweep_runner");
    group.bench_function("s5_v6_m32_cold_backend", |b| {
        let runner = SweepRunner::with_threads(1);
        b.iter(|| black_box(runner.run_one(&ModelBackend::cold(), &sweep)));
    });
    group.bench_function("s5_v6_m32_warm_backend", |b| {
        let runner = SweepRunner::with_threads(1);
        b.iter(|| black_box(runner.run_one(&ModelBackend::new(), &sweep)));
    });
    group.finish();
}

criterion_group!(benches, bench_core_sweeps, bench_runner_sweeps);
criterion_main!(benches);
