//! Criterion benchmark: the analytical hypercube model at parity-sweep
//! scale.
//!
//! The star-vs-hypercube comparison runs model-only at `Q10`/`Q13` (the
//! cubes matched to `S6`/`S7`); this bench pins the cost of a single solve
//! at those sizes, the warm- vs cold-started sweep delta on the `Q10`
//! curve, and the spectrum construction that sweeps amortise.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use star_core::blocking::{batch_blocking_delays, total_blocking_delay};
use star_core::occupancy::ChannelOccupancy;
use star_core::{HypercubeConfig, HypercubeModel, HypercubeRouting, HypercubeSpectrum};
use star_exec::spawn_ordered;
use star_workloads::{ModelBackend, Scenario, SweepRunner, SweepSpec};

fn q10_rates() -> Vec<f64> {
    // dense enough to hug the Q10 knee (saturation ≈ 0.028 at V = 8, M = 32)
    (1..=16).map(|i| 0.0016 * i as f64).collect()
}

fn bench_single_solves(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube_model");
    for (dims, label) in [(10usize, "q10"), (13, "q13")] {
        let config = HypercubeConfig::builder()
            .dims(dims)
            .virtual_channels(8)
            .message_length(32)
            .traffic_rate(0.008)
            .build();
        let model = HypercubeModel::new(config);
        group.bench_function(format!("{label}_v8_m32_solve"), |b| {
            b.iter(|| black_box(model.solve()));
        });
        let ecube = HypercubeModel::new(HypercubeConfig {
            routing: HypercubeRouting::DimensionOrder,
            ..config
        });
        group.bench_function(format!("{label}_v8_m32_ecube_solve"), |b| {
            b.iter(|| black_box(ecube.solve()));
        });
    }
    group.bench_function("q13_spectrum_build", |b| {
        b.iter(|| black_box(HypercubeSpectrum::new(13)));
    });
    // the per-destination parallelism pair at Q13 (byte-identical answers;
    // records the speedup of sharding the per-distance-class blocking sums
    // of every fixed-point iteration across the persistent pool)
    let q13 = HypercubeConfig::builder()
        .dims(13)
        .virtual_channels(8)
        .message_length(32)
        .traffic_rate(0.008)
        .build();
    for threads in [1usize, 2, 4] {
        let model = HypercubeModel::new(q13).with_parallelism(threads);
        group.bench_function(format!("q13_v8_m32_solve_blocking_threads{threads}"), |b| {
            b.iter(|| black_box(model.solve()));
        });
    }
    // pool vs the retired spawn-per-call baseline on one Q13 blocking batch
    // (the work unit every fixed-point iteration repeats) — records the
    // PR 4 spawn-per-step regression being fixed
    let spectrum = HypercubeSpectrum::new(13);
    let profiles: Vec<&star_graph::AdaptivityProfile> =
        spectrum.classes().iter().map(|c| &c.adaptive_profile).collect();
    let split = q13.vc_split();
    let occupancy = ChannelOccupancy::new(0.004, 70.0, 8);
    for threads in [2usize, 4] {
        group.bench_function(format!("q13_blocking_batch_pool_threads{threads}"), |b| {
            b.iter(|| {
                black_box(batch_blocking_delays(split, &occupancy, &profiles, 12.0, threads))
            });
        });
        group.bench_function(format!("q13_blocking_batch_spawn_threads{threads}"), |b| {
            b.iter(|| {
                black_box(spawn_ordered(threads, &profiles, |_, profile| {
                    total_blocking_delay(split, &occupancy, profile, 12.0)
                }))
            });
        });
    }
    group.finish();
}

fn bench_backend_sweeps(c: &mut Criterion) {
    // the same warm-vs-cold pair `sweep_warmstart` pins for the star, on the
    // hypercube path through the evaluator API
    let sweep =
        SweepSpec::new("q10-parity", Scenario::hypercube(10).with_virtual_channels(8), q10_rates());
    let mut group = c.benchmark_group("hypercube_backend");
    group.bench_function("q10_v8_m32_cold_backend", |b| {
        let runner = SweepRunner::with_threads(1);
        b.iter(|| black_box(runner.run_one(&ModelBackend::cold(), &sweep)));
    });
    group.bench_function("q10_v8_m32_warm_backend", |b| {
        let runner = SweepRunner::with_threads(1);
        b.iter(|| black_box(runner.run_one(&ModelBackend::new(), &sweep)));
    });
    group.finish();
}

criterion_group!(benches, bench_single_solves, bench_backend_sweeps);
criterion_main!(benches);
