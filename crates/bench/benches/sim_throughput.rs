//! Criterion benchmark: flit-level simulator throughput (simulated cycles per
//! second) on a small star graph, for the Enhanced-Nbc and deterministic
//! routers.  Sample counts are kept low because a single iteration already
//! simulates tens of thousands of cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use star_graph::StarGraph;
use star_routing::{DeterministicMinimal, EnhancedNbc, RoutingAlgorithm};
use star_sim::{SimConfig, Simulation, TrafficPattern};

fn run_once(routing: Arc<dyn RoutingAlgorithm>, rate: f64, seed: u64) -> f64 {
    let topology = Arc::new(StarGraph::new(4));
    let config = SimConfig::builder()
        .message_length(16)
        .traffic_rate(rate)
        .warmup_cycles(1_000)
        .measured_messages(2_000)
        .max_cycles(100_000)
        .seed(seed)
        .build();
    Simulation::new(topology, routing, config, TrafficPattern::Uniform).run().mean_message_latency
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    let topology = StarGraph::new(4);
    group.bench_function("s4_enhanced_nbc_moderate_load", |b| {
        b.iter(|| {
            let routing: Arc<dyn RoutingAlgorithm> =
                Arc::new(EnhancedNbc::for_topology(&topology, 6));
            black_box(run_once(routing, 0.01, 7))
        });
    });
    group.bench_function("s4_deterministic_moderate_load", |b| {
        b.iter(|| {
            let routing: Arc<dyn RoutingAlgorithm> =
                Arc::new(DeterministicMinimal::for_topology(&topology, 6));
            black_box(run_once(routing, 0.01, 7))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
