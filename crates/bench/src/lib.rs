//! # star-bench
//!
//! The benchmark harness: shared plumbing for the binaries that regenerate
//! every figure of the paper (`figure1`) and the extension studies
//! (`properties_table`, `routing_comparison`, `star_vs_hypercube`,
//! `size_sweep`), plus Criterion micro-benchmarks (`benches/`).
//!
//! Each binary prints a Markdown table (and an ASCII plot where a figure is
//! being reproduced) to stdout and writes a CSV next to it under
//! `target/experiments/`, so EXPERIMENTS.md can quote the numbers directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::Arc;

use star_core::ValidationRow;
use star_graph::{StarGraph, Topology};
use star_routing::{DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm};
use star_sim::{SimReport, Simulation, TrafficPattern};
use star_workloads::{run_model_point, run_sim_point, Figure1Experiment, SimBudget};

/// Directory where harness binaries drop their CSV outputs.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Runs one Figure-1 curve: for every traffic rate, evaluate the analytical
/// model and the simulator, and pair them into validation rows.
#[must_use]
pub fn run_figure1_curve(
    experiment: &Figure1Experiment,
    budget: SimBudget,
    seed: u64,
) -> Vec<ValidationRow> {
    experiment
        .points()
        .into_iter()
        .map(|point| {
            let model = run_model_point(point);
            let sim = run_sim_point(point, budget, seed);
            let sim_latency = if sim.saturated { None } else { Some(sim.mean_message_latency) };
            ValidationRow::new(&model, sim_latency)
        })
        .collect()
}

/// Builds a routing algorithm by name for the ablation harness
/// (`enhanced-nbc`, `nbc`, `nhop`, `deterministic`).
///
/// # Panics
/// Panics on an unknown name.
#[must_use]
pub fn routing_by_name(
    name: &str,
    topology: &dyn Topology,
    virtual_channels: usize,
) -> Arc<dyn RoutingAlgorithm> {
    match name {
        "enhanced-nbc" => Arc::new(EnhancedNbc::for_topology(topology, virtual_channels)),
        "nbc" => Arc::new(Nbc::for_topology(topology, virtual_channels)),
        "nhop" => Arc::new(NHop::for_topology(topology, virtual_channels)),
        "deterministic" => Arc::new(DeterministicMinimal::for_topology(topology, virtual_channels)),
        other => panic!("unknown routing algorithm {other:?}"),
    }
}

/// Simulates one operating point of `S_n` with a named routing algorithm.
#[must_use]
pub fn simulate_star(
    symbols: usize,
    routing_name: &str,
    virtual_channels: usize,
    message_length: usize,
    traffic_rate: f64,
    budget: SimBudget,
    seed: u64,
) -> SimReport {
    let topology = Arc::new(StarGraph::new(symbols));
    let routing = routing_by_name(routing_name, topology.as_ref(), virtual_channels);
    let config = budget.apply(message_length, traffic_rate, seed);
    Simulation::new(topology, routing, config, TrafficPattern::Uniform).run()
}

/// Parses a `--flag value` (or `--flag=value`) style argument list used by
/// the harness binaries (no external CLI dependency).  Returns the value of
/// `flag`, if any.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned()).or_else(|| {
        args.iter().find_map(|a| {
            a.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')).map(str::to_string)
        })
    })
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Chooses the simulation budget from `--budget quick|standard|thorough`
/// (default quick, so the harness finishes promptly on one core).
#[must_use]
pub fn budget_from_args(args: &[String]) -> SimBudget {
    match arg_value(args, "--budget").as_deref() {
        Some("standard") => SimBudget::Standard,
        Some("thorough") => SimBudget::Thorough,
        _ => SimBudget::Quick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::ExperimentPoint;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["--v", "9", "--budget", "standard", "--plot"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--v").as_deref(), Some("9"));
        assert_eq!(arg_value(&args, "--missing"), None);
        let eq_args: Vec<String> = ["--budget=thorough"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&eq_args, "--budget").as_deref(), Some("thorough"));
        assert_eq!(budget_from_args(&eq_args), SimBudget::Thorough);
        assert!(arg_present(&args, "--plot"));
        assert!(!arg_present(&args, "--csv"));
        assert_eq!(budget_from_args(&args), SimBudget::Standard);
        assert_eq!(budget_from_args(&[]), SimBudget::Quick);
    }

    #[test]
    fn routing_by_name_builds_all_algorithms() {
        let s5 = StarGraph::new(5);
        for name in ["enhanced-nbc", "nbc", "nhop", "deterministic"] {
            let algo = routing_by_name(name, &s5, 6);
            assert_eq!(algo.virtual_channels(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "unknown routing algorithm")]
    fn unknown_routing_name_panics() {
        let _ = routing_by_name("xy", &StarGraph::new(4), 4);
    }

    #[test]
    fn figure1_curve_produces_one_row_per_rate() {
        // tiny S4 stand-in so the test stays fast; the real curves use S5
        let experiment = Figure1Experiment {
            id: "test".into(),
            symbols: 4,
            virtual_channels: 6,
            message_length: 16,
            rates: vec![0.002, 0.004],
        };
        let rows = run_figure1_curve(&experiment, SimBudget::Quick, 3);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.virtual_channels, 6);
            assert!(row.model_latency.is_some());
            assert!(row.simulated_latency.is_some());
        }
        let _ = ExperimentPoint {
            symbols: 4,
            virtual_channels: 6,
            message_length: 16,
            traffic_rate: 0.002,
        };
    }
}
