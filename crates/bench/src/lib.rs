//! # star-bench
//!
//! The benchmark harness: shared plumbing for the binaries that regenerate
//! every figure of the paper (`figure1`) and the extension studies
//! (`properties_table`, `routing_comparison`, `star_vs_hypercube`,
//! `size_sweep`, `model_ablation`), plus Criterion micro-benchmarks
//! (`benches/`).
//!
//! Every binary drives the unified evaluation API —
//! [`star_workloads::Evaluator`] backends ([`star_workloads::ModelBackend`]
//! / [`star_workloads::SimBackend`]) through a
//! [`star_workloads::SweepRunner`] — instead of hand-rolling its own sweep
//! loop,
//! prints a Markdown table (and an ASCII plot where a figure is being
//! reproduced) to stdout and writes a CSV next to it under
//! `target/experiments/`, so EXPERIMENTS.md can quote the numbers directly.
//!
//! Command-line handling lives in one place, [`cli`]: every binary parses a
//! [`cli::HarnessArgs`] and gets the shared `--threads`/`--budget`/
//! `--replicates`/`--seed-base`/`--ci-target` flags — and the cross-process
//! `--shard K/N` slicing with its mergeable partial CSVs — without
//! re-spelling any of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod loadgen;

use std::path::PathBuf;

use star_core::ValidationRow;
use star_workloads::SweepReport;

/// Directory where harness binaries drop their CSV outputs.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Zips a model sweep report with a simulation sweep report over the same
/// rates into the [`ValidationRow`]s EXPERIMENTS.md tabulates, carrying the
/// simulator's across-replicate confidence interval.
///
/// # Panics
/// Panics if the reports do not cover the same rates in the same order, or
/// if the first report did not come from the model backend.
#[must_use]
pub fn pair_into_validation_rows(model: &SweepReport, sim: &SweepReport) -> Vec<ValidationRow> {
    assert_eq!(model.rates(), sim.rates(), "reports must cover the same rates");
    model
        .estimates
        .iter()
        .zip(&sim.estimates)
        .map(|(m, s)| {
            // any analytical detail qualifies (closed-form star/hypercube or
            // the generic spectrum) — only a simulated first report is a bug
            assert!(m.sim_report().is_none(), "first report must be a model sweep");
            let scenario = &m.point.scenario;
            let row = ValidationRow {
                traffic_rate: m.point.traffic_rate,
                message_length: scenario.message_length,
                virtual_channels: scenario.virtual_channels,
                model_latency: if m.saturated { None } else { Some(m.mean_latency) },
                simulated_latency: s.latency(),
                simulated_ci95: 0.0,
                sim_replicates: 1,
            };
            row.with_sim_ci(s.latency_ci95(), s.replicates())
        })
        .collect()
}

/// The model-predicted saturation rate of a scenario, on any topology —
/// the bisection the model-only harness binaries use to pick rate grids that
/// cover the whole latency curve up to the knee.  Star and hypercube
/// scenarios use the closed-form solvers; anything else goes through the
/// generic [`star_core::TraversalSpectrum`].
///
/// # Panics
/// Panics if the analytical model does not cover the scenario, or if the
/// scenario's parameters are out of the model's range (the panic message
/// carries the underlying config error, e.g. too few virtual channels for
/// the topology's escape-level minimum).
#[must_use]
pub fn model_saturation_rate(scenario: &star_workloads::Scenario, tolerance: f64) -> f64 {
    // the shared implementation lives next to the wire vocabulary so the
    // daemon's prewarmer and the load generator agree bit for bit
    star_workloads::model_saturation_rate(scenario, tolerance)
}

/// Prints the per-point replicate consumption of a simulated sweep — the
/// log the adaptive `--ci-target` stopping rule owes the user (for fixed
/// fan-outs it is a one-line confirmation).
pub fn log_replicate_consumption(reports: &[SweepReport]) {
    for report in reports {
        for estimate in &report.estimates {
            if estimate.sim_report().is_none() {
                continue;
            }
            eprintln!(
                "[replicates] {} λ_g={:.5}: {} replicate(s), rel CI {:.2}%{}",
                report.id,
                estimate.point.traffic_rate,
                estimate.replicates(),
                estimate.latency_rel_ci95() * 100.0,
                if estimate.saturated { " (saturated)" } else { "" },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::{ModelBackend, Scenario, SimBackend, SimBudget, SweepRunner, SweepSpec};

    #[test]
    fn paired_passes_produce_one_validation_row_per_rate_with_replicate_cis() {
        // the figure1 binary's evaluation flow: a model pass and a sim pass
        // over the same sweeps, paired into validation rows (tiny S4
        // stand-in so the test stays fast; the real curves use S5)
        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(3);
        let sweeps = [SweepSpec::new("test", scenario, vec![0.002, 0.004])];
        let runner = SweepRunner::with_threads(2);
        let model = runner.run_pass(&ModelBackend::new(), None, &sweeps);
        let sim = runner.run_pass(&SimBackend::new(SimBudget::Quick), None, &sweeps);
        let rows = pair_into_validation_rows(&model[0], &sim[0]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.virtual_channels, 6);
            assert!(row.model_latency.is_some());
            assert!(row.simulated_latency.is_some());
            assert_eq!(row.sim_replicates, 2);
            assert!(row.simulated_ci95 > 0.0, "two seeds must yield a real interval");
        }
    }

    #[test]
    #[should_panic(expected = "same rates")]
    fn mismatched_reports_are_rejected() {
        let runner = SweepRunner::with_threads(1);
        let scenario = Scenario::star(4).with_message_length(16);
        let a = runner
            .run_one(&ModelBackend::new(), &SweepSpec::new("a", scenario.clone(), vec![0.001]));
        let b = runner.run_one(&ModelBackend::new(), &SweepSpec::new("b", scenario, vec![0.002]));
        let _ = pair_into_validation_rows(&a, &b);
    }
}
