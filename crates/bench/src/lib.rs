//! # star-bench
//!
//! The benchmark harness: shared plumbing for the binaries that regenerate
//! every figure of the paper (`figure1`) and the extension studies
//! (`properties_table`, `routing_comparison`, `star_vs_hypercube`,
//! `size_sweep`, `model_ablation`), plus Criterion micro-benchmarks
//! (`benches/`).
//!
//! Every binary drives the unified evaluation API —
//! [`star_workloads::Evaluator`] backends ([`ModelBackend`] / [`SimBackend`])
//! through a [`SweepRunner`] — instead of hand-rolling its own sweep loop,
//! prints a Markdown table (and an ASCII plot where a figure is being
//! reproduced) to stdout and writes a CSV next to it under
//! `target/experiments/`, so EXPERIMENTS.md can quote the numbers directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use star_core::ValidationRow;
use star_workloads::{ModelBackend, SimBackend, SimBudget, SweepReport, SweepRunner, SweepSpec};

/// Directory where harness binaries drop their CSV outputs.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Runs one Figure-1 curve through both backends — the analytical model
/// (warm-started) and the simulator (points sharded across `threads`
/// workers) — and pairs the estimates into validation rows.
///
/// # Panics
/// Panics if the model backend does not cover the sweep's scenario.
#[must_use]
pub fn run_figure1_curve(
    sweep: &SweepSpec,
    budget: SimBudget,
    seed: u64,
    threads: usize,
) -> Vec<ValidationRow> {
    let runner = SweepRunner::with_threads(threads);
    let model = runner.run_one(&ModelBackend::new(), sweep);
    let sim = runner.run_one(&SimBackend::new(budget, seed), sweep);
    pair_into_validation_rows(&model, &sim)
}

/// Zips a model sweep report with a simulation sweep report over the same
/// rates into the [`ValidationRow`]s EXPERIMENTS.md tabulates.
///
/// # Panics
/// Panics if the reports do not cover the same rates in the same order, or
/// if the first report did not come from the model backend.
#[must_use]
pub fn pair_into_validation_rows(model: &SweepReport, sim: &SweepReport) -> Vec<ValidationRow> {
    assert_eq!(model.rates(), sim.rates(), "reports must cover the same rates");
    model
        .estimates
        .iter()
        .zip(&sim.estimates)
        .map(|(m, s)| {
            let result = m.model_result().expect("first report must be a model sweep");
            ValidationRow::new(result, s.latency())
        })
        .collect()
}

/// The model-predicted saturation rate of a scenario, on either topology —
/// the bisection the model-only harness binaries use to pick rate grids that
/// cover the whole latency curve up to the knee.
///
/// # Panics
/// Panics if the analytical model does not cover the scenario, or if the
/// scenario's parameters are out of the model's range (the panic message
/// carries the underlying config error, e.g. too few virtual channels for
/// the cube's escape-level minimum).
#[must_use]
pub fn model_saturation_rate(scenario: &star_workloads::Scenario, tolerance: f64) -> f64 {
    match scenario.model_config(0.0) {
        Ok(Some(config)) => return star_core::saturation_rate(config, tolerance),
        Err(e) => panic!("invalid model scenario {}: {e}", scenario.label()),
        Ok(None) => {}
    }
    match scenario.hypercube_model_config(0.0) {
        Ok(Some(config)) => star_core::hypercube_saturation_rate(config, tolerance),
        Err(e) => panic!("invalid model scenario {}: {e}", scenario.label()),
        Ok(None) => {
            panic!("the analytical model does not cover scenario {}", scenario.label())
        }
    }
}

/// Parses a `--flag value` (or `--flag=value`) style argument list used by
/// the harness binaries (no external CLI dependency).  Returns the value of
/// `flag`, if any.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned()).or_else(|| {
        args.iter().find_map(|a| {
            a.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')).map(str::to_string)
        })
    })
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Chooses the simulation budget from `--budget quick|standard|thorough`
/// (default quick, so the harness finishes promptly on one core).
#[must_use]
pub fn budget_from_args(args: &[String]) -> SimBudget {
    match arg_value(args, "--budget").as_deref() {
        Some("standard") => SimBudget::Standard,
        Some("thorough") => SimBudget::Thorough,
        _ => SimBudget::Quick,
    }
}

/// Chooses the worker count from `--threads N` (default 0 = all available
/// parallelism, the [`SweepRunner`] convention).
#[must_use]
pub fn threads_from_args(args: &[String]) -> usize {
    arg_value(args, "--threads").and_then(|s| s.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::Scenario;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--v", "9", "--budget", "standard", "--threads", "4", "--plot"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--v").as_deref(), Some("9"));
        assert_eq!(arg_value(&args, "--missing"), None);
        let eq_args: Vec<String> = ["--budget=thorough"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&eq_args, "--budget").as_deref(), Some("thorough"));
        assert_eq!(budget_from_args(&eq_args), SimBudget::Thorough);
        assert!(arg_present(&args, "--plot"));
        assert!(!arg_present(&args, "--csv"));
        assert_eq!(budget_from_args(&args), SimBudget::Standard);
        assert_eq!(budget_from_args(&[]), SimBudget::Quick);
        assert_eq!(threads_from_args(&args), 4);
        assert_eq!(threads_from_args(&[]), 0);
    }

    #[test]
    fn figure1_curve_produces_one_row_per_rate() {
        // tiny S4 stand-in so the test stays fast; the real curves use S5
        let sweep =
            SweepSpec::new("test", Scenario::star(4).with_message_length(16), vec![0.002, 0.004]);
        let rows = run_figure1_curve(&sweep, SimBudget::Quick, 3, 2);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.virtual_channels, 6);
            assert!(row.model_latency.is_some());
            assert!(row.simulated_latency.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "same rates")]
    fn mismatched_reports_are_rejected() {
        let runner = SweepRunner::with_threads(1);
        let scenario = Scenario::star(4).with_message_length(16);
        let a = runner.run_one(&ModelBackend::new(), &SweepSpec::new("a", scenario, vec![0.001]));
        let b = runner.run_one(&ModelBackend::new(), &SweepSpec::new("b", scenario, vec![0.002]));
        let _ = pair_into_validation_rows(&a, &b);
    }
}
