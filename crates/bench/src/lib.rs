//! # star-bench
//!
//! The benchmark harness: shared plumbing for the binaries that regenerate
//! every figure of the paper (`figure1`) and the extension studies
//! (`properties_table`, `routing_comparison`, `star_vs_hypercube`,
//! `size_sweep`, `model_ablation`), plus Criterion micro-benchmarks
//! (`benches/`).
//!
//! Every binary drives the unified evaluation API —
//! [`star_workloads::Evaluator`] backends ([`ModelBackend`] / [`SimBackend`])
//! through a [`SweepRunner`] — instead of hand-rolling its own sweep loop,
//! prints a Markdown table (and an ASCII plot where a figure is being
//! reproduced) to stdout and writes a CSV next to it under
//! `target/experiments/`, so EXPERIMENTS.md can quote the numbers directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use star_core::ValidationRow;
use star_workloads::{
    CiTarget, ModelBackend, Scenario, SimBackend, SimBudget, SweepReport, SweepRunner, SweepSpec,
};

/// Directory where harness binaries drop their CSV outputs.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Runs one Figure-1 curve through both backends — the analytical model
/// (warm-started) and the simulator ((point × replicate) work items sharded
/// across `threads` workers, replicate count and seed base taken from the
/// sweep's scenario) — and pairs the estimates into validation rows.
///
/// # Panics
/// Panics if the model backend does not cover the sweep's scenario.
#[must_use]
pub fn run_figure1_curve(
    sweep: &SweepSpec,
    sim: &SimBackend,
    threads: usize,
) -> Vec<ValidationRow> {
    let runner = SweepRunner::with_threads(threads);
    let model = runner.run_one(&ModelBackend::new(), sweep);
    let simulated = runner.run_one(sim, sweep);
    log_replicate_consumption(std::slice::from_ref(&simulated));
    pair_into_validation_rows(&model, &simulated)
}

/// Zips a model sweep report with a simulation sweep report over the same
/// rates into the [`ValidationRow`]s EXPERIMENTS.md tabulates, carrying the
/// simulator's across-replicate confidence interval.
///
/// # Panics
/// Panics if the reports do not cover the same rates in the same order, or
/// if the first report did not come from the model backend.
#[must_use]
pub fn pair_into_validation_rows(model: &SweepReport, sim: &SweepReport) -> Vec<ValidationRow> {
    assert_eq!(model.rates(), sim.rates(), "reports must cover the same rates");
    model
        .estimates
        .iter()
        .zip(&sim.estimates)
        .map(|(m, s)| {
            let result = m.model_result().expect("first report must be a model sweep");
            ValidationRow::new(result, s.latency()).with_sim_ci(s.latency_ci95(), s.replicates())
        })
        .collect()
}

/// The model-predicted saturation rate of a scenario, on either topology —
/// the bisection the model-only harness binaries use to pick rate grids that
/// cover the whole latency curve up to the knee.
///
/// # Panics
/// Panics if the analytical model does not cover the scenario, or if the
/// scenario's parameters are out of the model's range (the panic message
/// carries the underlying config error, e.g. too few virtual channels for
/// the cube's escape-level minimum).
#[must_use]
pub fn model_saturation_rate(scenario: &star_workloads::Scenario, tolerance: f64) -> f64 {
    match scenario.model_config(0.0) {
        Ok(Some(config)) => return star_core::saturation_rate(config, tolerance),
        Err(e) => panic!("invalid model scenario {}: {e}", scenario.label()),
        Ok(None) => {}
    }
    match scenario.hypercube_model_config(0.0) {
        Ok(Some(config)) => star_core::hypercube_saturation_rate(config, tolerance),
        Err(e) => panic!("invalid model scenario {}: {e}", scenario.label()),
        Ok(None) => {
            panic!("the analytical model does not cover scenario {}", scenario.label())
        }
    }
}

/// Parses a `--flag value` (or `--flag=value`) style argument list used by
/// the harness binaries (no external CLI dependency).  Returns the value of
/// `flag`, if any.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned()).or_else(|| {
        args.iter().find_map(|a| {
            a.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')).map(str::to_string)
        })
    })
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Chooses the simulation budget from `--budget quick|standard|thorough`
/// (default quick, so the harness finishes promptly on one core).
#[must_use]
pub fn budget_from_args(args: &[String]) -> SimBudget {
    match arg_value(args, "--budget").as_deref() {
        Some("standard") => SimBudget::Standard,
        Some("thorough") => SimBudget::Thorough,
        _ => SimBudget::Quick,
    }
}

/// Chooses the worker count from `--threads N` (default 0 = all available
/// parallelism, the [`SweepRunner`] convention).
#[must_use]
pub fn threads_from_args(args: &[String]) -> usize {
    arg_value(args, "--threads").and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Chooses the replicate count from `--replicates R` (default 1 — a single
/// replicate, whose seed is still derived from the seed base).
#[must_use]
pub fn replicates_from_args(args: &[String]) -> usize {
    arg_value(args, "--replicates").and_then(|s| s.parse().ok()).unwrap_or(1).max(1)
}

/// Chooses the seed base from `--seed-base S` (accepting the retired
/// `--seed` spelling as an alias), falling back to the binary's historical
/// default.  Note that a seed base is *derived from*, not used verbatim:
/// replicate `i` simulates with `replicate_seed(S, i)`, so pre-replicate
/// single-seed CSVs are not bit-reproducible — rerun to regenerate.
#[must_use]
pub fn seed_base_from_args(args: &[String], default: u64) -> u64 {
    arg_value(args, "--seed-base")
        .or_else(|| arg_value(args, "--seed"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parses the adaptive stopping rule from `--ci-target <rel>` (with an
/// optional `--max-replicates N` cap); `None` when the flag is absent.
///
/// # Panics
/// Panics (exit-style message) if the target is outside `(0, 1)`.
#[must_use]
pub fn ci_target_from_args(args: &[String]) -> Option<CiTarget> {
    let relative: f64 = arg_value(args, "--ci-target")?.parse().ok()?;
    let mut target = CiTarget::new(relative);
    if let Some(cap) = arg_value(args, "--max-replicates").and_then(|s| s.parse().ok()) {
        target.max_replicates = cap;
    }
    Some(target)
}

/// Builds the simulator backend every harness binary uses: `--budget` plus
/// the optional `--ci-target`/`--max-replicates` adaptive stopping rule.
#[must_use]
pub fn sim_backend_from_args(args: &[String]) -> SimBackend {
    let mut backend = SimBackend::new(budget_from_args(args));
    if let Some(target) = ci_target_from_args(args) {
        backend = backend.with_ci_target(target);
    }
    backend
}

/// Applies the replication flags (`--replicates`, `--seed-base`) to a
/// scenario, with the binary's historical seed default.
#[must_use]
pub fn replicated_scenario(scenario: Scenario, args: &[String], default_seed: u64) -> Scenario {
    scenario
        .with_replicates(replicates_from_args(args))
        .with_seed_base(seed_base_from_args(args, default_seed))
}

/// Prints the per-point replicate consumption of a simulated sweep — the
/// log the adaptive `--ci-target` stopping rule owes the user (for fixed
/// fan-outs it is a one-line confirmation).
pub fn log_replicate_consumption(reports: &[SweepReport]) {
    for report in reports {
        for estimate in &report.estimates {
            if estimate.sim_report().is_none() {
                continue;
            }
            eprintln!(
                "[replicates] {} λ_g={:.5}: {} replicate(s), rel CI {:.2}%{}",
                report.id,
                estimate.point.traffic_rate,
                estimate.replicates(),
                estimate.latency_rel_ci95() * 100.0,
                if estimate.saturated { " (saturated)" } else { "" },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_workloads::Scenario;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--v", "9", "--budget", "standard", "--threads", "4", "--plot"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--v").as_deref(), Some("9"));
        assert_eq!(arg_value(&args, "--missing"), None);
        let eq_args: Vec<String> = ["--budget=thorough"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&eq_args, "--budget").as_deref(), Some("thorough"));
        assert_eq!(budget_from_args(&eq_args), SimBudget::Thorough);
        assert!(arg_present(&args, "--plot"));
        assert!(!arg_present(&args, "--csv"));
        assert_eq!(budget_from_args(&args), SimBudget::Standard);
        assert_eq!(budget_from_args(&[]), SimBudget::Quick);
        assert_eq!(threads_from_args(&args), 4);
        assert_eq!(threads_from_args(&[]), 0);
    }

    #[test]
    fn replication_arg_parsing() {
        let args: Vec<String> = [
            "--replicates",
            "8",
            "--seed-base",
            "99",
            "--ci-target",
            "0.05",
            "--max-replicates",
            "12",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(replicates_from_args(&args), 8);
        assert_eq!(replicates_from_args(&[]), 1);
        assert_eq!(seed_base_from_args(&args, 7), 99);
        assert_eq!(seed_base_from_args(&[], 7), 7);
        // the retired --seed spelling keeps working as an alias
        let legacy: Vec<String> = ["--seed", "123"].iter().map(|s| s.to_string()).collect();
        assert_eq!(seed_base_from_args(&legacy, 7), 123);
        let target = ci_target_from_args(&args).unwrap();
        assert_eq!(target.relative, 0.05);
        assert_eq!(target.max_replicates, 12);
        assert_eq!(ci_target_from_args(&[]), None);
        let scenario = replicated_scenario(Scenario::star(4), &args, 7);
        assert_eq!(scenario.replicates, 8);
        assert_eq!(scenario.seed_base, 99);
        let backend = sim_backend_from_args(&args);
        assert_eq!(backend.ci_target, Some(target));
        assert!(sim_backend_from_args(&[]).ci_target.is_none());
    }

    #[test]
    fn figure1_curve_produces_one_row_per_rate_with_replicate_cis() {
        // tiny S4 stand-in so the test stays fast; the real curves use S5
        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(3);
        let sweep = SweepSpec::new("test", scenario, vec![0.002, 0.004]);
        let rows = run_figure1_curve(&sweep, &SimBackend::new(SimBudget::Quick), 2);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.virtual_channels, 6);
            assert!(row.model_latency.is_some());
            assert!(row.simulated_latency.is_some());
            assert_eq!(row.sim_replicates, 2);
            assert!(row.simulated_ci95 > 0.0, "two seeds must yield a real interval");
        }
    }

    #[test]
    #[should_panic(expected = "same rates")]
    fn mismatched_reports_are_rejected() {
        let runner = SweepRunner::with_threads(1);
        let scenario = Scenario::star(4).with_message_length(16);
        let a = runner.run_one(&ModelBackend::new(), &SweepSpec::new("a", scenario, vec![0.001]));
        let b = runner.run_one(&ModelBackend::new(), &SweepSpec::new("b", scenario, vec![0.002]));
        let _ = pair_into_validation_rows(&a, &b);
    }
}
