//! The `star-load` generator: replay a deterministic mixed query stream
//! against a running `star-serve` daemon and measure what serving costs.
//!
//! The stream is a pure function of the [`LoadConfig`] (xoshiro-seeded, no
//! wall-clock anywhere in the *generation*), drawn over a pinned pool of
//! configurations spanning all four topology families and three
//! disciplines, with per-configuration rate grids placed between 20% and
//! 85% of each configuration's model-predicted saturation rate.  Configs
//! are drawn with a min-of-two-draws bias (earlier pool entries are hotter)
//! so the stream has the skew that makes a cache interesting; rates and
//! the exact/warm mode split are uniform draws.
//!
//! Requests are pipelined in fixed-size batches across
//! [`LoadConfig::connections`] concurrent connections (batches dealt
//! round-robin, so every connection sees the same mix) — one connection
//! cannot observe the daemon's sharded-cache win; contention needs
//! cross-connection traffic.  The per-query service latency sample is the
//! batch round-trip divided by the batch size — the *amortized* latency a
//! pipelining client experiences — and p50/p99 are taken over those
//! samples.  Throughput is queries over total wall-clock.  The cache hit
//! rate is the fraction of responses the daemon answered verbatim from its
//! solve cache (`"cached":"exact"`).
//!
//! [`append_trajectory`] maintains `BENCH_serve.json`: a JSON array of
//! measurement points, one appended per `cargo xtask serve-bench` run, so
//! the serving path has a perf trajectory just like the figures have CSVs.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use star_serve::protocol::{query_line, Query, SolveMode};
use star_workloads::{load_rate_grid, WireScenario};

/// What to replay and how hard.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address (`HOST:PORT`).
    pub addr: String,
    /// Total queries to issue.
    pub queries: usize,
    /// Stream seed — same seed, same stream, byte for byte.
    pub seed: u64,
    /// Fraction of queries issued in `warm` mode (the rest are `exact`).
    pub warm_fraction: f64,
    /// Requests in flight per batch per connection.
    pub pipeline: usize,
    /// Concurrent connections replaying the stream (batches dealt
    /// round-robin across them).
    pub connections: usize,
    /// Distinct rates per configuration (the rate grid resolution; with
    /// `queries` well above `pool × rates`, repeats drive the hit rate).
    pub rates: usize,
    /// Send a `shutdown` request after measuring (for harnesses that own
    /// the daemon's lifetime).
    pub shutdown: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            queries: 2000,
            seed: 7,
            warm_fraction: 0.5,
            pipeline: 8,
            connections: 1,
            rates: 24,
            shutdown: false,
        }
    }
}

/// The pinned configuration pool: all four families, three disciplines,
/// everything inside the analytical model's validated ranges.  Order
/// matters — earlier entries are drawn more often.  This is
/// [`star_workloads::default_config_pool`], the same list the daemon's
/// `--prewarm pool` solves before listening.
#[must_use]
pub fn config_pool() -> Vec<WireScenario> {
    star_workloads::default_config_pool()
}

/// The deterministic query stream for a load config (ids are sequential
/// from 0; the stream never depends on daemon behaviour).
#[must_use]
pub fn query_stream(config: &LoadConfig) -> Vec<Query> {
    let pool = config_pool();
    // the shared grid keeps generated rates bit-identical to the ones the
    // daemon's `--prewarm` pass solves, so prewarmed traffic hits verbatim
    let grids: Vec<Vec<f64>> =
        pool.iter().map(|wire| load_rate_grid(&wire.scenario(), config.rates)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.queries as u64)
        .map(|id| {
            // min of two uniform draws: configuration popularity is skewed
            // towards the front of the pool, like real query traffic
            let first = rng.random_range(0..pool.len());
            let second = rng.random_range(0..pool.len());
            let pick = first.min(second);
            let rate = grids[pick][rng.random_range(0..grids[pick].len())];
            let mode = if rng.random::<f64>() < config.warm_fraction {
                SolveMode::Warm
            } else {
                SolveMode::Exact
            };
            Query { id, wire: pool[pick], rate, mode }
        })
        .collect()
}

/// What a replay measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries issued (and responses received).
    pub queries: u64,
    /// Responses with `"status":"error"`.
    pub errors: u64,
    /// Response counts by `cached` outcome (`cold`/`exact`/`warm`).
    pub outcomes: BTreeMap<String, u64>,
    /// Fraction of queries answered verbatim from the solve cache.
    pub hit_rate: f64,
    /// Total wall-clock of the replay in seconds.
    pub elapsed_s: f64,
    /// Queries per second over the whole replay.
    pub qps: f64,
    /// Median amortized per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile amortized per-query latency, microseconds.
    pub p99_us: f64,
    /// The daemon's own `stats` snapshot after the replay.
    pub stats: Value,
}

impl LoadReport {
    /// The report as a `BENCH_serve.json` trajectory point, carrying the
    /// load config that produced it so points stay comparable.
    #[must_use]
    pub fn trajectory_point(&self, config: &LoadConfig) -> Value {
        let outcomes =
            self.outcomes.iter().map(|(name, count)| (name.clone(), Value::from(*count))).collect();
        Value::Object(vec![
            (
                "config".to_string(),
                Value::Object(vec![
                    ("queries".to_string(), Value::from(config.queries)),
                    ("seed".to_string(), Value::from(config.seed)),
                    ("warm_fraction".to_string(), Value::from(config.warm_fraction)),
                    ("pipeline".to_string(), Value::from(config.pipeline)),
                    ("connections".to_string(), Value::from(config.connections)),
                    ("rates".to_string(), Value::from(config.rates)),
                    ("pool".to_string(), Value::from(config_pool().len())),
                ]),
            ),
            ("queries".to_string(), Value::from(self.queries)),
            ("errors".to_string(), Value::from(self.errors)),
            ("hit_rate".to_string(), Value::from(self.hit_rate)),
            ("qps".to_string(), Value::from(round3(self.qps))),
            ("p50_us".to_string(), Value::from(round3(self.p50_us))),
            ("p99_us".to_string(), Value::from(round3(self.p99_us))),
            ("outcomes".to_string(), Value::Object(outcomes)),
            ("daemon_stats".to_string(), self.stats.clone()),
        ])
    }

    /// A human-readable summary block.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "queries     {}\nerrors      {}\nhit rate    {:.1}%\nthroughput  {:.0} q/s\n\
             latency     p50 {:.1} µs, p99 {:.1} µs (amortized per query)\noutcomes    {:?}",
            self.queries,
            self.errors,
            self.hit_rate * 100.0,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.outcomes,
        )
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// One connection's tallies, merged into the [`LoadReport`] afterwards.
struct ConnectionTally {
    outcomes: BTreeMap<String, u64>,
    errors: u64,
    samples_us: Vec<f64>,
}

/// Replays one connection's share of the batches, pipelined batch by
/// batch, checking per-connection response order.
fn replay_connection(addr: &str, batches: &[&[Query]]) -> io::Result<ConnectionTally> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut tally = ConnectionTally {
        outcomes: BTreeMap::new(),
        errors: 0,
        samples_us: Vec::with_capacity(batches.iter().map(|b| b.len()).sum()),
    };
    let mut line = String::new();
    for batch in batches {
        let batch_started = Instant::now();
        for query in *batch {
            writer.write_all(query_line(query).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        for query in *batch {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(invalid("daemon closed mid-replay".to_string()));
            }
            let response = serde_json::from_str(line.trim_end())
                .map_err(|e| invalid(format!("bad response: {e}")))?;
            // responses come back in request order; anything else is a
            // daemon ordering bug the replay must not paper over
            if response.get("id").and_then(Value::as_u64) != Some(query.id) {
                return Err(invalid(format!("out-of-order response for id {}", query.id)));
            }
            match response.get("status").and_then(Value::as_str) {
                Some("ok") => {
                    let outcome = response
                        .get("cached")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    *tally.outcomes.entry(outcome).or_insert(0) += 1;
                }
                _ => tally.errors += 1,
            }
        }
        let amortized_us = batch_started.elapsed().as_secs_f64() * 1e6 / batch.len() as f64;
        tally.samples_us.extend(std::iter::repeat_n(amortized_us, batch.len()));
    }
    Ok(tally)
}

/// Replays the config's stream against the daemon and measures it.
///
/// The stream's batches are dealt round-robin across
/// [`LoadConfig::connections`] concurrent connections; each connection
/// pipelines its own batches independently, and the tallies merge into one
/// report.  The stats snapshot (and the optional shutdown) goes over a
/// fresh connection after every replay connection has finished, so it sees
/// the post-replay cache state.
///
/// # Errors
/// Connection failures, short reads, out-of-order or malformed responses.
///
/// # Panics
/// Panics if a replay thread itself panics (it never should — failures
/// come back as errors).
pub fn run_load(config: &LoadConfig) -> io::Result<LoadReport> {
    let stream = query_stream(config);
    let batches: Vec<&[Query]> = stream.chunks(config.pipeline.max(1)).collect();
    let connections = config.connections.max(1).min(batches.len().max(1));

    let started = Instant::now();
    let tallies: Vec<io::Result<ConnectionTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let mine: Vec<&[Query]> =
                    batches.iter().copied().skip(worker).step_by(connections).collect();
                let addr = config.addr.as_str();
                scope.spawn(move || replay_connection(addr, &mine))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("replay thread panicked")).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    let mut errors = 0u64;
    let mut samples_us: Vec<f64> = Vec::with_capacity(stream.len());
    for tally in tallies {
        let tally = tally?;
        for (outcome, count) in tally.outcomes {
            *outcomes.entry(outcome).or_insert(0) += count;
        }
        errors += tally.errors;
        samples_us.extend(tally.samples_us);
    }

    // one stats snapshot after the replay, through the same wire
    let conn = TcpStream::connect(&config.addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut line = String::new();
    writeln!(writer, "{{\"id\":{},\"op\":\"stats\"}}", stream.len())?;
    writer.flush()?;
    reader.read_line(&mut line)?;
    let stats = serde_json::from_str(line.trim_end())
        .ok()
        .and_then(|v: Value| v.get("stats").cloned())
        .unwrap_or(Value::Null);
    if config.shutdown {
        writeln!(writer, "{{\"id\":{},\"op\":\"shutdown\"}}", stream.len() + 1)?;
        writer.flush()?;
        line.clear();
        let _ = reader.read_line(&mut line);
    }

    samples_us.sort_by(f64::total_cmp);
    let queries = stream.len() as u64;
    let exact_hits = outcomes.get("exact").copied().unwrap_or(0);
    Ok(LoadReport {
        queries,
        errors,
        hit_rate: exact_hits as f64 / queries.max(1) as f64,
        elapsed_s,
        qps: queries as f64 / elapsed_s.max(f64::MIN_POSITIVE),
        p50_us: percentile(&samples_us, 0.50),
        p99_us: percentile(&samples_us, 0.99),
        outcomes,
        stats,
    })
}

/// Appends a trajectory point to a `BENCH_serve.json`-style file (a JSON
/// array; created when absent, replaced when unreadable).
///
/// # Errors
/// Filesystem errors reading or writing the file.
pub fn append_trajectory(path: &Path, point: &Value) -> io::Result<()> {
    let mut points: Vec<Value> = match fs::read_to_string(path) {
        Ok(existing) => serde_json::from_str(&existing)
            .ok()
            .and_then(|v: Value| v.as_array().map(<[Value]>::to_vec))
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    points.push(point.clone());
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&p.to_string());
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_mixed_and_in_model_range() {
        let config = LoadConfig { queries: 400, ..LoadConfig::default() };
        let a = query_stream(&config);
        let b = query_stream(&config);
        assert_eq!(a, b, "same seed must replay the same stream");
        assert_eq!(a.len(), 400);
        assert!(a.iter().enumerate().all(|(i, q)| q.id == i as u64));
        // the stream really mixes: both modes, several configurations
        assert!(a.iter().any(|q| q.mode == SolveMode::Warm));
        assert!(a.iter().any(|q| q.mode == SolveMode::Exact));
        let distinct: std::collections::BTreeSet<String> =
            a.iter().map(|q| q.wire.network_label()).collect();
        assert!(distinct.len() >= 4, "stream covers the pool: {distinct:?}");
        // every drawn point is inside the model's validated range and
        // below saturation (grid tops out at 85% of the predicted knee)
        for query in &a {
            assert!(query.rate > 0.0);
            assert!(matches!(query.wire.scenario().model_params(query.rate), Ok(Some(_))));
        }
        // a different seed is a different stream
        let c = query_stream(&LoadConfig { seed: 8, queries: 400, ..LoadConfig::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn trajectory_files_append_and_survive_garbage() {
        let dir = std::env::temp_dir().join("star-load-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        let _ = std::fs::remove_file(&path);
        let point = Value::Object(vec![("qps".to_string(), Value::from(1000.0))]);
        append_trajectory(&path, &point).unwrap();
        append_trajectory(&path, &point).unwrap();
        let parsed = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        // a corrupt file is replaced, not a crash
        std::fs::write(&path, "not json").unwrap();
        append_trajectory(&path, &point).unwrap();
        let parsed = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn percentiles_pick_from_sorted_samples() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&sorted, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile(&sorted, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
