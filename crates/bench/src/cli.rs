//! The one shared command-line layer of the harness binaries.
//!
//! Every binary used to call the same half-dozen parsing helpers in its own
//! order; [`HarnessArgs`] bundles them so a binary parses once and asks for
//! what it needs — and so run-wide flags (`--threads`, `--replicates`,
//! `--seed-base`, `--ci-target`, `--budget`, and the cross-process
//! `--shard K/N`) are defined in exactly one place.
//!
//! ## Sharding
//!
//! `--shard K/N` slices the run's flat operating-point list (see
//! [`star_workloads::shard_sweeps`] and [`SweepRunner::run_pass`] for the
//! granularity rules) and switches the CSV output to an index-prefixed
//! partial named `<base>.shardKofN.csv`; `cargo xtask merge-shards`
//! reassembles the `N` partials into bytes identical to an unsharded run.
//! Tables and plots that pair rows across sweeps are suppressed in sharded
//! runs (a shard only holds its slice); the merged CSV carries everything.

use std::io;
use std::path::PathBuf;

use star_workloads::{
    CiTarget, Evaluator, ReportSink, Scenario, ShardSpec, SimBackend, SimBudget, SweepReport,
    SweepRunner, SweepSpec, TopologyKind,
};

use crate::experiments_dir;

/// Parses a `--flag value` (or `--flag=value`) style argument list used by
/// the harness binaries (no external CLI dependency).  Returns the value of
/// `flag`, if any.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned()).or_else(|| {
        args.iter().find_map(|a| {
            a.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')).map(str::to_string)
        })
    })
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The flags shared by every harness binary, parsed once.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    args: Vec<String>,
    /// The cross-process shard this invocation runs, if any.
    pub shard: Option<ShardSpec>,
}

impl HarnessArgs {
    /// Parses the process's arguments, exiting with status 2 on a malformed
    /// `--shard`.
    #[must_use]
    pub fn parse() -> Self {
        match Self::from_vec(std::env::args().skip(1).collect()) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Builds from an explicit argument vector.
    ///
    /// # Errors
    /// Returns the parse error of a malformed `--shard K/N`.
    pub fn from_vec(args: Vec<String>) -> Result<Self, star_exec::ShardParseError> {
        let shard = match arg_value(&args, "--shard") {
            Some(spec) => Some(ShardSpec::parse(&spec)?),
            None => None,
        };
        Ok(Self { args, shard })
    }

    /// The value of a binary-specific `--flag value` / `--flag=value`.
    #[must_use]
    pub fn value(&self, flag: &str) -> Option<String> {
        arg_value(&self.args, flag)
    }

    /// Whether a bare binary-specific `--flag` is present.
    #[must_use]
    pub fn present(&self, flag: &str) -> bool {
        arg_present(&self.args, flag)
    }

    /// A `usize`-valued flag with a default.
    #[must_use]
    pub fn usize_or(&self, flag: &str, default: usize) -> usize {
        self.value(flag).and_then(|s| s.parse().ok()).unwrap_or(default)
    }

    /// The simulation budget from `--budget quick|standard|thorough`
    /// (default quick, so the harness finishes promptly on one core).
    #[must_use]
    pub fn budget(&self) -> SimBudget {
        match self.value("--budget").as_deref() {
            Some("standard") => SimBudget::Standard,
            Some("thorough") => SimBudget::Thorough,
            _ => SimBudget::Quick,
        }
    }

    /// The worker width from `--threads N` (default 0 = all pool workers,
    /// the workspace-wide convention).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.usize_or("--threads", 0)
    }

    /// The sweep runner every pass of this invocation shares.
    #[must_use]
    pub fn runner(&self) -> SweepRunner {
        SweepRunner::with_threads(self.threads())
    }

    /// The replicate count from `--replicates R` (default 1 — a single
    /// replicate, whose seed is still derived from the seed base).
    #[must_use]
    pub fn replicates(&self) -> usize {
        self.usize_or("--replicates", 1).max(1)
    }

    /// The topology family from `--topology star|hypercube|torus|ring`,
    /// falling back to the binary's default family.
    ///
    /// # Panics
    /// Panics on an unknown family name, listing the accepted ones.
    #[must_use]
    pub fn topology_kind(&self, default: TopologyKind) -> TopologyKind {
        self.topology_kinds(&[default])[0]
    }

    /// The topology families from a comma-separated
    /// `--topology star,hypercube,torus` list, falling back to the binary's
    /// defaults — for binaries that compare families side by side.
    ///
    /// # Panics
    /// Panics on an unknown family name, listing the accepted ones.
    #[must_use]
    pub fn topology_kinds(&self, default: &[TopologyKind]) -> Vec<TopologyKind> {
        let Some(list) = self.value("--topology") else {
            return default.to_vec();
        };
        list.split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(|name| {
                TopologyKind::parse(name).unwrap_or_else(|| {
                    let accepted: Vec<&str> = TopologyKind::ALL.iter().map(|k| k.name()).collect();
                    panic!("unknown topology {name:?} (expected one of: {})", accepted.join(", "))
                })
            })
            .collect()
    }

    /// The seed base from `--seed-base S` (accepting the retired `--seed`
    /// spelling as an alias), falling back to the binary's historical
    /// default.  A seed base is *derived from*, not used verbatim:
    /// replicate `i` simulates with `replicate_seed(S, i)`.
    #[must_use]
    pub fn seed_base(&self, default: u64) -> u64 {
        self.value("--seed-base")
            .or_else(|| self.value("--seed"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// The adaptive stopping rule from `--ci-target <rel>` (with an
    /// optional `--max-replicates N` cap); `None` when the flag is absent.
    ///
    /// # Panics
    /// Panics if the target is outside `(0, 1)`.
    #[must_use]
    pub fn ci_target(&self) -> Option<CiTarget> {
        let relative: f64 = self.value("--ci-target")?.parse().ok()?;
        let mut target = CiTarget::new(relative);
        if let Some(cap) = self.value("--max-replicates").and_then(|s| s.parse().ok()) {
            target.max_replicates = cap;
        }
        Some(target)
    }

    /// The simulator backend every harness binary uses: `--budget` plus the
    /// optional `--ci-target`/`--max-replicates` adaptive stopping rule.
    #[must_use]
    pub fn sim_backend(&self) -> SimBackend {
        let mut backend = SimBackend::new(self.budget());
        if let Some(target) = self.ci_target() {
            backend = backend.with_ci_target(target);
        }
        backend
    }

    /// Applies the replication flags (`--replicates`, `--seed-base`) to a
    /// scenario, with the binary's historical seed default.
    #[must_use]
    pub fn replicated(&self, scenario: Scenario, default_seed: u64) -> Scenario {
        scenario.with_replicates(self.replicates()).with_seed_base(self.seed_base(default_seed))
    }

    /// Runs one backend pass over the full sweep list, restricted to this
    /// invocation's shard (see [`SweepRunner::run_pass`] for the
    /// chain-respecting granularity).
    ///
    /// # Panics
    /// As [`SweepRunner::run`].
    #[must_use]
    pub fn run_pass(&self, evaluator: &dyn Evaluator, full: &[SweepSpec]) -> Vec<SweepReport> {
        self.runner().run_pass(evaluator, self.shard, full)
    }

    /// A report sink for this invocation (plain CSV, or index-prefixed
    /// partial when sharded).
    #[must_use]
    pub fn report_sink(&self) -> ReportSink {
        ReportSink::new(self.shard)
    }

    /// Whether cross-sweep tables/plots should be printed: suppressed in
    /// sharded runs, where a process only holds its slice of the rows.
    #[must_use]
    pub fn print_tables(&self) -> bool {
        self.shard.is_none()
    }

    /// Writes a non-`RunReport` output (the `figure1` validation CSVs, the
    /// `properties_table` rows) under `target/experiments/`, honouring the
    /// shard: rows are `(index in the unsharded CSV, formatted row)`; an
    /// unsharded run must pass the complete `0..n` index sequence.
    ///
    /// `run` is the caller's [`star_exec::RunFingerprint`] over the *full*
    /// run description (identical in every shard of one run); the shard
    /// count and base name are folded in here, and the digest is stamped
    /// into the partial header so `merge-shards` refuses to mix runs.
    ///
    /// # Errors
    /// Returns any I/O error from writing the file.
    pub fn write_indexed_csv(
        &self,
        base: &str,
        header: &str,
        run: star_exec::RunFingerprint,
        rows: &[(usize, String)],
    ) -> io::Result<PathBuf> {
        use star_exec::shard::{partial_header, partial_rows};
        let dir = experiments_dir();
        match self.shard {
            None => {
                debug_assert!(rows.iter().enumerate().all(|(i, (index, _))| i == *index));
                let path = dir.join(format!("{base}.csv"));
                let plain: Vec<String> = rows.iter().map(|(_, row)| row.clone()).collect();
                star_workloads::write_csv(&path, header, &plain)?;
                Ok(path)
            }
            Some(shard) => {
                let mut run = run;
                run.add_u64(shard.count as u64);
                run.add_str(base);
                let path = dir.join(shard.file_name(base));
                star_workloads::write_csv(
                    &path,
                    &partial_header(header, run),
                    &partial_rows(rows),
                )?;
                Ok(path)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> HarnessArgs {
        HarnessArgs::from_vec(list.iter().map(ToString::to_string).collect()).unwrap()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["--v", "9", "--budget", "standard", "--threads", "4", "--plot"]);
        assert_eq!(a.value("--v").as_deref(), Some("9"));
        assert_eq!(a.value("--missing"), None);
        assert!(a.present("--plot"));
        assert!(!a.present("--csv"));
        assert_eq!(a.budget(), SimBudget::Standard);
        assert_eq!(a.threads(), 4);
        assert_eq!(a.usize_or("--v", 6), 9);
        assert_eq!(a.usize_or("--m", 32), 32);
        let eq = args(&["--budget=thorough"]);
        assert_eq!(eq.budget(), SimBudget::Thorough);
        let none = args(&[]);
        assert_eq!(none.budget(), SimBudget::Quick);
        assert_eq!(none.threads(), 0);
        assert_eq!(none.runner().threads(), star_workloads::ExecPool::global().threads());
    }

    #[test]
    fn replication_arg_parsing() {
        let a = args(&[
            "--replicates",
            "8",
            "--seed-base",
            "99",
            "--ci-target",
            "0.05",
            "--max-replicates",
            "12",
        ]);
        assert_eq!(a.replicates(), 8);
        assert_eq!(args(&[]).replicates(), 1);
        assert_eq!(a.seed_base(7), 99);
        assert_eq!(args(&[]).seed_base(7), 7);
        // the retired --seed spelling keeps working as an alias
        assert_eq!(args(&["--seed", "123"]).seed_base(7), 123);
        let target = a.ci_target().unwrap();
        assert_eq!(target.relative, 0.05);
        assert_eq!(target.max_replicates, 12);
        assert_eq!(args(&[]).ci_target(), None);
        let scenario = a.replicated(Scenario::star(4), 7);
        assert_eq!(scenario.replicates, 8);
        assert_eq!(scenario.seed_base, 99);
        let backend = a.sim_backend();
        assert_eq!(backend.ci_target, Some(target));
        assert!(args(&[]).sim_backend().ci_target.is_none());
    }

    #[test]
    fn topology_arg_parsing() {
        let single = args(&["--topology", "torus"]);
        assert_eq!(single.topology_kind(TopologyKind::Star), TopologyKind::Torus);
        assert_eq!(args(&[]).topology_kind(TopologyKind::Hypercube), TopologyKind::Hypercube);
        let list = args(&["--topology", "star,hypercube,torus"]);
        assert_eq!(
            list.topology_kinds(&[TopologyKind::Star]),
            vec![TopologyKind::Star, TopologyKind::Hypercube, TopologyKind::Torus]
        );
        assert_eq!(
            args(&[]).topology_kinds(&[TopologyKind::Star, TopologyKind::Ring]),
            vec![TopologyKind::Star, TopologyKind::Ring]
        );
        // spaces around commas are tolerated
        assert_eq!(
            args(&["--topology", "ring, torus"]).topology_kinds(&[]),
            vec![TopologyKind::Ring, TopologyKind::Torus]
        );
    }

    #[test]
    #[should_panic(expected = "unknown topology")]
    fn unknown_topology_name_rejected() {
        let _ = args(&["--topology", "mesh"]).topology_kind(TopologyKind::Star);
    }

    #[test]
    fn shard_arg_parsing() {
        let a = args(&["--shard", "2/3"]);
        let shard = a.shard.unwrap();
        assert_eq!((shard.index, shard.count), (1, 3));
        assert!(!a.print_tables());
        assert!(args(&[]).shard.is_none());
        assert!(args(&[]).print_tables());
        assert!(HarnessArgs::from_vec(vec!["--shard".into(), "9".into()]).is_err());
        assert!(HarnessArgs::from_vec(vec!["--shard".into(), "4/3".into()]).is_err());
    }
}
