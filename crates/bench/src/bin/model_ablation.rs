//! Extension study D: the analytical model applied to the other routing
//! schemes the paper mentions ("the modelling approach used here can be
//! equally applied for other routing schemes after few changes") — plain
//! negative-hop (NHop), negative-hop with bonus cards (Nbc) and Enhanced-Nbc
//! — side by side with the simulated latencies of the same algorithms, so the
//! analytical ablation can be checked against the simulated one
//! (`routing_comparison`).
//!
//! ```text
//! cargo run --release -p star-bench --bin model_ablation --
//!     [--topology star|hypercube|torus|ring] [--n SIZE] [--v 6]
//!     [--m 32] [--points N] [--budget quick|standard|thorough]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N] [--no-sim]
//! ```
//!
//! `--topology` runs the ablation on another family, where the generic
//! traversal-spectrum model answers all three disciplines; `--n` then
//! selects that family's size.  A `--v` below the family's Enhanced-Nbc
//! escape-level floor is raised with a note on stderr.

use star_bench::cli::HarnessArgs;
use star_bench::{experiments_dir, log_replicate_consumption};
use star_core::{ModelDiscipline, ModelParams};
use star_workloads::{
    markdown_table, Discipline, ModelBackend, SweepReport, SweepSpec, TopologyKind,
};

const DISCIPLINES: [Discipline; 3] = [Discipline::EnhancedNbc, Discipline::Nbc, Discipline::NHop];

fn main() {
    let cli = HarnessArgs::parse();
    let kind = cli.topology_kind(TopologyKind::Star);
    let size = cli.usize_or("--n", kind.default_size());
    let mut v = cli.usize_or("--v", 6);
    let m = cli.usize_or("--m", 32);
    let points = cli.usize_or("--points", 5);
    let with_sim = !cli.present("--no-sim");
    let backend = cli.sim_backend();
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    let base = kind.scenario(size).with_message_length(m);
    let floor =
        ModelParams::min_virtual_channels(ModelDiscipline::EnhancedNbc, base.topology().diameter());
    if v < floor {
        eprintln!(
            "[v-floor] {} needs V >= {floor} for Enhanced-Nbc; raising from {v}",
            base.network_label()
        );
        v = floor;
    }
    let sweeps: Vec<SweepSpec> = DISCIPLINES
        .iter()
        .map(|&d| {
            let scenario =
                cli.replicated(base.clone().with_discipline(d).with_virtual_channels(v), 424_242);
            SweepSpec::new(d.name(), scenario, rates.clone())
        })
        .collect();
    let model_reports = cli.run_pass(&ModelBackend::new(), &sweeps);
    let sim_reports: Option<Vec<SweepReport>> = with_sim.then(|| cli.run_pass(&backend, &sweeps));

    println!(
        "# Analytical-model ablation over routing disciplines — {}, V = {v}, M = {m}\n",
        base.network_label()
    );
    if cli.print_tables() {
        let mut rows = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut cells = vec![format!("{rate:.4}")];
            for (di, _) in DISCIPLINES.iter().enumerate() {
                let model_cell = model_reports[di].estimates[ri].latency_cell();
                let sim_cell = sim_reports
                    .as_ref()
                    .map_or_else(|| "-".to_string(), |r| r[di].estimates[ri].latency_ci_cell());
                cells.push(format!("{model_cell} / {sim_cell}"));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "traffic rate (λ_g)",
                    "Enhanced-Nbc (model/sim)",
                    "Nbc (model/sim)",
                    "NHop (model/sim)"
                ],
                &rows
            )
        );
        println!("Each cell is `analytical model latency / simulated latency ± 95% CI` in cycles.");
    } else {
        println!("(sharded run: cross-discipline table omitted — merge the shard CSVs)\n");
    }
    let mut sink = cli.report_sink();
    sink.extend_pass(&sweeps, &model_reports);
    if let Some(sim_reports) = &sim_reports {
        log_replicate_consumption(sim_reports);
        sink.extend_pass(&sweeps, sim_reports);
    }
    match sink.write_csv(&experiments_dir(), "model_ablation") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write model_ablation: {e}"),
    }
}
