//! Extension study D: the analytical model applied to the other routing
//! schemes the paper mentions ("the modelling approach used here can be
//! equally applied for other routing schemes after few changes") — plain
//! negative-hop (NHop), negative-hop with bonus cards (Nbc) and Enhanced-Nbc
//! — side by side with the simulated latencies of the same algorithms, so the
//! analytical ablation can be checked against the simulated one
//! (`routing_comparison`).
//!
//! ```text
//! cargo run --release -p star-bench --bin model_ablation -- [--n 5] [--v 6]
//!     [--m 32] [--points N] [--budget quick|standard|thorough]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--no-sim]
//! ```

use star_bench::{
    arg_present, arg_value, experiments_dir, log_replicate_consumption, replicated_scenario,
    sim_backend_from_args, threads_from_args,
};
use star_workloads::{
    markdown_table, Discipline, ModelBackend, RunReport, Scenario, SweepReport, SweepRunner,
    SweepSpec,
};

const DISCIPLINES: [Discipline; 3] = [Discipline::EnhancedNbc, Discipline::Nbc, Discipline::NHop];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let with_sim = !arg_present(&args, "--no-sim");
    let backend = sim_backend_from_args(&args);
    let runner = SweepRunner::with_threads(threads_from_args(&args));
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    let sweeps: Vec<SweepSpec> = DISCIPLINES
        .iter()
        .map(|&d| {
            let scenario = replicated_scenario(
                Scenario::star(symbols)
                    .with_discipline(d)
                    .with_virtual_channels(v)
                    .with_message_length(m),
                &args,
                424_242,
            );
            SweepSpec::new(d.name(), scenario, rates.clone())
        })
        .collect();
    let model_reports = runner.run(&ModelBackend::new(), &sweeps);
    let sim_reports: Option<Vec<SweepReport>> = with_sim.then(|| runner.run(&backend, &sweeps));

    println!(
        "# Analytical-model ablation over routing disciplines — S{symbols}, V = {v}, M = {m}\n"
    );
    let mut rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut cells = vec![format!("{rate:.4}")];
        for (di, _) in DISCIPLINES.iter().enumerate() {
            let model_cell = model_reports[di].estimates[ri].latency_cell();
            let sim_cell = sim_reports
                .as_ref()
                .map_or_else(|| "-".to_string(), |r| r[di].estimates[ri].latency_ci_cell());
            cells.push(format!("{model_cell} / {sim_cell}"));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "traffic rate (λ_g)",
                "Enhanced-Nbc (model/sim)",
                "Nbc (model/sim)",
                "NHop (model/sim)"
            ],
            &rows
        )
    );
    println!("Each cell is `analytical model latency / simulated latency ± 95% CI` in cycles.");
    let mut run_report = RunReport::from_sweeps(&model_reports);
    if let Some(sim_reports) = &sim_reports {
        log_replicate_consumption(sim_reports);
        run_report.extend_from_sweeps(sim_reports);
    }
    let path = experiments_dir().join("model_ablation.csv");
    match run_report.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
