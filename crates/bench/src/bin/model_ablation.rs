//! Extension study D: the analytical model applied to the other routing
//! schemes the paper mentions ("the modelling approach used here can be
//! equally applied for other routing schemes after few changes") — plain
//! negative-hop (NHop), negative-hop with bonus cards (Nbc) and Enhanced-Nbc
//! — side by side with the simulated latencies of the same algorithms, so the
//! analytical ablation can be checked against the simulated one
//! (`routing_comparison`).
//!
//! ```text
//! cargo run --release -p star-bench --bin model_ablation -- [--n 5] [--v 6]
//!     [--m 32] [--points N] [--budget quick|standard|thorough] [--seed S]
//!     [--threads T] [--no-sim]
//! ```

use star_bench::{arg_present, arg_value, budget_from_args, experiments_dir, threads_from_args};
use star_workloads::{
    markdown_table, write_csv, Discipline, ModelBackend, Scenario, SimBackend, SweepReport,
    SweepRunner, SweepSpec,
};

const DISCIPLINES: [Discipline; 3] = [Discipline::EnhancedNbc, Discipline::Nbc, Discipline::NHop];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(424_242);
    let with_sim = !arg_present(&args, "--no-sim");
    let budget = budget_from_args(&args);
    let runner = SweepRunner::with_threads(threads_from_args(&args));
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    let sweeps: Vec<SweepSpec> = DISCIPLINES
        .iter()
        .map(|&d| {
            let scenario = Scenario::star(symbols)
                .with_discipline(d)
                .with_virtual_channels(v)
                .with_message_length(m);
            SweepSpec::new(d.name(), scenario, rates.clone())
        })
        .collect();
    let model_reports = runner.run(&ModelBackend::new(), &sweeps);
    let sim_reports: Option<Vec<SweepReport>> =
        with_sim.then(|| runner.run(&SimBackend::new(budget, seed), &sweeps));

    println!(
        "# Analytical-model ablation over routing disciplines — S{symbols}, V = {v}, M = {m}\n"
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut cells = vec![format!("{rate:.4}")];
        for (di, discipline) in DISCIPLINES.iter().enumerate() {
            let model_cell = model_reports[di].estimates[ri].latency_cell();
            let sim_cell = sim_reports
                .as_ref()
                .map_or_else(|| "-".to_string(), |r| r[di].estimates[ri].latency_cell());
            csv_rows.push(format!("{},{rate},{model_cell},{sim_cell}", discipline.name()));
            cells.push(format!("{model_cell} / {sim_cell}"));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "traffic rate (λ_g)",
                "Enhanced-Nbc (model/sim)",
                "Nbc (model/sim)",
                "NHop (model/sim)"
            ],
            &rows
        )
    );
    println!("Each cell is `analytical model latency / simulated latency` in cycles.");
    let path = experiments_dir().join("model_ablation.csv");
    match write_csv(&path, "discipline,traffic_rate,model_latency,sim_latency", &csv_rows) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
