//! Extension study D: the analytical model applied to the other routing
//! schemes the paper mentions ("the modelling approach used here can be
//! equally applied for other routing schemes after few changes") — plain
//! negative-hop (NHop), negative-hop with bonus cards (Nbc) and Enhanced-Nbc
//! — side by side with the simulated latencies of the same algorithms, so the
//! analytical ablation can be checked against the simulated one
//! (`routing_comparison`).
//!
//! ```text
//! cargo run --release -p star-bench --bin model_ablation -- [--n 5] [--v 6]
//!     [--m 32] [--points N] [--budget quick|standard|thorough] [--seed S] [--no-sim]
//! ```

use star_bench::{arg_present, arg_value, budget_from_args, experiments_dir, simulate_star};
use star_core::{AnalyticalModel, ModelConfig, RoutingDiscipline};
use star_workloads::{markdown_table, write_csv};

const DISCIPLINES: [(RoutingDiscipline, &str); 3] = [
    (RoutingDiscipline::EnhancedNbc, "enhanced-nbc"),
    (RoutingDiscipline::Nbc, "nbc"),
    (RoutingDiscipline::NHop, "nhop"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(424_242);
    let with_sim = !arg_present(&args, "--no-sim");
    let budget = budget_from_args(&args);
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    println!(
        "# Analytical-model ablation over routing disciplines — S{symbols}, V = {v}, M = {m}\n"
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &rate in &rates {
        let mut cells = vec![format!("{rate:.4}")];
        for &(discipline, name) in &DISCIPLINES {
            let model = AnalyticalModel::new(
                ModelConfig::builder()
                    .symbols(symbols)
                    .virtual_channels(v)
                    .message_length(m)
                    .traffic_rate(rate)
                    .discipline(discipline)
                    .build(),
            )
            .solve();
            let model_cell = if model.saturated {
                "saturated".to_string()
            } else {
                format!("{:.1}", model.mean_latency)
            };
            let sim_cell = if with_sim {
                let report = simulate_star(symbols, name, v, m, rate, budget, seed);
                if report.saturated {
                    "saturated".to_string()
                } else {
                    format!("{:.1}", report.mean_message_latency)
                }
            } else {
                "-".to_string()
            };
            csv_rows.push(format!("{name},{rate},{model_cell},{sim_cell}"));
            cells.push(format!("{model_cell} / {sim_cell}"));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "traffic rate (λ_g)",
                "Enhanced-Nbc (model/sim)",
                "Nbc (model/sim)",
                "NHop (model/sim)"
            ],
            &rows
        )
    );
    println!("Each cell is `analytical model latency / simulated latency` in cycles.");
    let path = experiments_dir().join("model_ablation.csv");
    match write_csv(&path, "discipline,traffic_rate,model_latency,sim_latency", &csv_rows) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
