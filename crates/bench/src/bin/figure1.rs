//! Regenerates Figure 1 of the paper: mean message latency vs traffic
//! generation rate for `S5` with `V = 6, 9, 12` virtual channels and message
//! lengths `M = 32, 64` flits — one curve from the analytical model and one
//! from the flit-level simulator (mean ± 95% CI over `--replicates`
//! independently seeded replicates), both driven through the unified
//! `Evaluator`/`SweepRunner` API.
//!
//! ```text
//! cargo run --release -p star-bench --bin figure1 -- [--v 6|9|12] [--m 32|64]
//!     [--points N] [--budget quick|standard|thorough]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T]
//! ```
//!
//! Prints a Markdown table and an ASCII plot per curve and writes
//! `target/experiments/<curve>.csv` (with `simulated_ci95`/`sim_replicates`
//! columns).

use star_bench::{
    arg_value, budget_from_args, experiments_dir, replicated_scenario, run_figure1_curve,
    sim_backend_from_args, threads_from_args,
};
use star_core::validation::mean_absolute_relative_error;
use star_core::ValidationRow;
use star_workloads::{ascii_plot, figure1_sweeps, markdown_table, write_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let v_filter: Option<usize> = arg_value(&args, "--v").and_then(|s| s.parse().ok());
    let m_filter: Option<usize> = arg_value(&args, "--m").and_then(|s| s.parse().ok());
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(6);
    let sim_backend = sim_backend_from_args(&args);
    let budget = budget_from_args(&args);
    let threads = threads_from_args(&args);

    let sweeps: Vec<_> = figure1_sweeps(points)
        .into_iter()
        .filter(|s| v_filter.is_none_or(|v| s.scenario.virtual_channels == v))
        .filter(|s| m_filter.is_none_or(|m| s.scenario.message_length == m))
        .map(|mut sweep| {
            sweep.scenario = replicated_scenario(sweep.scenario, &args, 20_060_425);
            sweep
        })
        .collect();
    if sweeps.is_empty() {
        eprintln!("no experiment matches the given filters");
        std::process::exit(1);
    }

    println!(
        "# Figure 1 — S5, Enhanced-Nbc, model vs simulation (budget {budget:?}, \
         {} replicate(s), seed base {})\n",
        sweeps[0].scenario.replicates, sweeps[0].scenario.seed_base
    );
    for sweep in sweeps {
        println!(
            "## {} (V = {}, M = {} flits)\n",
            sweep.id, sweep.scenario.virtual_channels, sweep.scenario.message_length
        );
        let rows = run_figure1_curve(&sweep, &sim_backend, threads);
        print_curve(&sweep.id, &sweep.rates, &rows);
        let csv_rows: Vec<String> = rows.iter().map(ValidationRow::to_csv_row).collect();
        let path = experiments_dir().join(format!("{}.csv", sweep.id));
        match write_csv(&path, &ValidationRow::csv_header(), &csv_rows) {
            Ok(()) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

fn print_curve(id: &str, rates: &[f64], rows: &[ValidationRow]) {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.4}", r.traffic_rate),
                r.model_latency.map_or("saturated".into(), |v| format!("{v:.1}")),
                r.simulated_latency.map_or("saturated".into(), |v| {
                    if r.simulated_ci95 > 0.0 {
                        format!("{v:.1} ± {:.1}", r.simulated_ci95)
                    } else {
                        format!("{v:.1}")
                    }
                }),
                r.relative_error().map_or("-".into(), |e| format!("{:.1}%", e * 100.0)),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["traffic rate (λ_g)", "model latency", "sim latency (±95% CI)", "model error"],
            &table_rows
        )
    );
    if let Some(mare) = mean_absolute_relative_error(rows) {
        println!("mean absolute relative error below saturation: {:.1}%\n", mare * 100.0);
    }
    let model_series: Vec<f64> =
        rows.iter().map(|r| r.model_latency.unwrap_or(f64::INFINITY)).collect();
    let sim_series: Vec<f64> =
        rows.iter().map(|r| r.simulated_latency.unwrap_or(f64::INFINITY)).collect();
    println!(
        "{}",
        ascii_plot(
            &format!("{id}: latency vs traffic rate"),
            rates,
            &[("model", model_series), ("simulation", sim_series)],
            60,
            16,
        )
    );
}
