//! Regenerates Figure 1 of the paper: mean message latency vs traffic
//! generation rate for `S5` with `V = 6, 9, 12` virtual channels and message
//! lengths `M = 32, 64` flits — one curve from the analytical model and one
//! from the flit-level simulator (mean ± 95% CI over `--replicates`
//! independently seeded replicates), both driven through the unified
//! `Evaluator`/`SweepRunner` API.
//!
//! ```text
//! cargo run --release -p star-bench --bin figure1 -- [--v 6|9|12] [--m 32|64]
//!     [--topology star|hypercube|torus|ring] [--points N]
//!     [--budget quick|standard|thorough]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N]
//! ```
//!
//! `--topology` replays the same `V × M` grid on another family at its
//! smoke size (`Q7`/`T8`/`R8`) — not a figure the paper has, but the same
//! model-vs-sim cross-validation the figure performs, on a topology the
//! closed-form star model never covered.  The curve ids (and so the CSV
//! names) gain a `-<family>` suffix so the star figure is never
//! overwritten.
//!
//! Prints a Markdown table and an ASCII plot per curve and writes
//! `target/experiments/<curve>.csv` (with `simulated_ci95`/`sim_replicates`
//! columns).  Under `--shard K/N` each curve file becomes the partial
//! `<curve>.shardKofN.csv` covering this shard's slice of the simulated
//! points (the model curve is recomputed in full so its warm-start chain
//! matches the unsharded run); `cargo xtask merge-shards` restores the
//! unsharded bytes.

use star_bench::cli::HarnessArgs;
use star_bench::{log_replicate_consumption, pair_into_validation_rows};
use star_core::validation::mean_absolute_relative_error;
use star_core::ValidationRow;
use star_workloads::{
    ascii_plot, figure1_sweeps, markdown_table, rate_indices, ModelBackend, Scenario, TopologyKind,
};

fn main() {
    let cli = HarnessArgs::parse();
    let v_filter: Option<usize> = cli.value("--v").and_then(|s| s.parse().ok());
    let m_filter: Option<usize> = cli.value("--m").and_then(|s| s.parse().ok());
    let kind = cli.topology_kind(TopologyKind::Star);
    let points = cli.usize_or("--points", 6);
    let sim_backend = cli.sim_backend();

    // one shared topology value for all six curves; the star grid is the
    // paper's, any other family replays it at the family's smoke size
    let topology = kind.topology(kind.default_size());
    let sweeps: Vec<_> = figure1_sweeps(points)
        .into_iter()
        .filter(|s| v_filter.is_none_or(|v| s.scenario.virtual_channels == v))
        .filter(|s| m_filter.is_none_or(|m| s.scenario.message_length == m))
        .map(|mut sweep| {
            if kind != TopologyKind::Star {
                sweep.scenario = Scenario::on(std::sync::Arc::clone(&topology))
                    .with_discipline(sweep.scenario.discipline)
                    .with_virtual_channels(sweep.scenario.virtual_channels)
                    .with_message_length(sweep.scenario.message_length);
                sweep.id = format!("{}-{}", sweep.id, kind.name());
            }
            sweep.scenario = cli.replicated(sweep.scenario, 20_060_425);
            sweep
        })
        .collect();
    if sweeps.is_empty() {
        eprintln!("no experiment matches the given filters");
        std::process::exit(1);
    }

    println!(
        "# Figure 1 — {}, Enhanced-Nbc, model vs simulation (budget {:?}, \
         {} replicate(s), seed base {})\n",
        sweeps[0].scenario.network_label(),
        cli.budget(),
        sweeps[0].scenario.replicates,
        sweeps[0].scenario.seed_base
    );
    // both passes slice the same flat point list, so model and simulator
    // estimates stay paired per rate in sharded runs too
    let model_reports = cli.run_pass(&ModelBackend::new(), &sweeps);
    let sim_reports = cli.run_pass(&sim_backend, &sweeps);
    log_replicate_consumption(&sim_reports);
    for ((sweep, model), sim) in sweeps.iter().zip(&model_reports).zip(&sim_reports) {
        println!(
            "## {} (V = {}, M = {} flits)\n",
            sweep.id, sweep.scenario.virtual_channels, sweep.scenario.message_length
        );
        let rows = pair_into_validation_rows(model, sim);
        let rates = model.rates();
        if rows.is_empty() {
            println!("(no points of this curve in shard {})\n", cli.shard.expect("sharded"));
        } else {
            print_curve(&sweep.id, &rates, &rows);
        }
        let indexed: Vec<(usize, String)> = rate_indices(&sweep.rates, model)
            .into_iter()
            .zip(rows.iter().map(ValidationRow::to_csv_row))
            .collect();
        // the curve's full description, identical in every shard of one run
        let mut run = star_exec::RunFingerprint::new();
        run.add_str(&sweep.id);
        run.add_str(&sweep.scenario.label());
        run.add_u64(sweep.scenario.seed_base);
        for &rate in &sweep.rates {
            run.add_f64(rate);
        }
        match cli.write_indexed_csv(&sweep.id, &ValidationRow::csv_header(), run, &indexed) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", sweep.id),
        }
    }
}

fn print_curve(id: &str, rates: &[f64], rows: &[ValidationRow]) {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.4}", r.traffic_rate),
                r.model_latency.map_or("saturated".into(), |v| format!("{v:.1}")),
                r.simulated_latency.map_or("saturated".into(), |v| {
                    if r.simulated_ci95 > 0.0 {
                        format!("{v:.1} ± {:.1}", r.simulated_ci95)
                    } else {
                        format!("{v:.1}")
                    }
                }),
                r.relative_error().map_or("-".into(), |e| format!("{:.1}%", e * 100.0)),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["traffic rate (λ_g)", "model latency", "sim latency (±95% CI)", "model error"],
            &table_rows
        )
    );
    if let Some(mare) = mean_absolute_relative_error(rows) {
        println!("mean absolute relative error below saturation: {:.1}%\n", mare * 100.0);
    }
    let model_series: Vec<f64> =
        rows.iter().map(|r| r.model_latency.unwrap_or(f64::INFINITY)).collect();
    let sim_series: Vec<f64> =
        rows.iter().map(|r| r.simulated_latency.unwrap_or(f64::INFINITY)).collect();
    println!(
        "{}",
        ascii_plot(
            &format!("{id}: latency vs traffic rate"),
            rates,
            &[("model", model_series), ("simulation", sim_series)],
            60,
            16,
        )
    );
}
