//! Extension study B (the paper's stated future work): latency of the star
//! graph against other topology families running the same adaptive routing
//! scheme — scenarios differing only in their topology value, answered by
//! the same backend.  The default compares three ways: star, the hypercube
//! with at least as many nodes, and the k-ary 2-cube (torus) — the
//! star/hypercube/torus parity figure the paper never had.
//!
//! ```text
//! cargo run --release -p star-bench --bin star_vs_hypercube --
//!     [--backend sim|model] [--topology star,hypercube,torus,ring]
//!     [--n 5 | --n 6,7,8] [--torus-k 12,16] [--ring-k 16] [--v V] [--m 32]
//!     [--budget quick|standard|thorough] [--points N] [--check-band PCT]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N]
//! ```
//!
//! With `--backend sim` (the default) every requested family goes through
//! the flit-level simulator at smoke scale (`S5`/`Q7` node-matched, plus
//! `T8`/`R8` at their family default sizes): every operating point runs
//! `--replicates` independently seeded replicates (seeds derived from
//! `--seed-base`) and is reported as mean ± Student-t 95% CI, with the
//! (point × replicate) work items sharded across `--threads` pool workers —
//! output is byte-identical for any thread count.  `--ci-target 0.05`
//! instead keeps adding replicate batches per point until the relative CI
//! half-width drops below 5% (or `--max-replicates` is hit).
//! `--check-band 25` additionally answers every simulated point with the
//! analytical model and exits non-zero if any below-saturation point within
//! the validated light/moderate-load regime (≤ 25% channel utilisation — the
//! documented over-prediction grows beyond any enforced band past it)
//! disagrees by more than 25% — the model-vs-sim smoke gate `cargo xtask ci`
//! runs on the torus.
//!
//! With `--backend model` the analytical model answers every side and **no
//! simulator runs at all**: the star sizes default to `S6`/`S7`/`S8` with
//! their matched cubes `Q10`/`Q13`/`Q16` (720 → 65 536 nodes) — the
//! model-only regime the paper argues analytical models exist for — with
//! each star/cube pair swept up to just below the earlier of the two
//! model-predicted saturation knees.  The model default is `V = 10` because
//! `Q16`'s negative-hop scheme needs `⌊16/2⌋ + 1 = 9` escape levels and
//! Enhanced-Nbc at least one adaptive channel on top (this also covers
//! `S8`'s 6-level minimum).  Tori sweep at fixed sides (default
//! `--torus-k 12,16`, each to 95% of its own knee) rather than node-matched
//! sizes: the torus matching `S7` would be `T72` (38 virtual-channel floor)
//! and `S8`'s would be `T202`, whose `u128` path counts overflow — see
//! REPRODUCING.md.  A torus/ring side whose diameter needs more virtual
//! channels than `--v` is raised to its floor with a note on stderr.  Model
//! rows report a CI of zero width, keeping the CSV schema identical across
//! backends; all families land in one combined `star_vs_hypercube.csv`.
//!
//! Under `--shard K/N` the run evaluates only its slice of the operating
//! points (simulator pass; the model pass is recomputed in full so the
//! warm-start chain matches an unsharded run) and writes the partial
//! `star_vs_hypercube.shardKofN.csv` that `cargo xtask merge-shards`
//! reassembles byte-identically.

use star_bench::cli::HarnessArgs;
use star_bench::{experiments_dir, log_replicate_consumption, model_saturation_rate};
use star_core::{ModelDiscipline, ModelParams};
use star_graph::Hypercube;
use star_workloads::{
    ascii_plot, markdown_table, Evaluator, ModelBackend, ReportSink, Scenario, SweepSpec,
    TopologyKind,
};

/// Parses a comma-separated `--flag 12,16` size list.
fn sizes_arg(cli: &HarnessArgs, flag: &str, default: &[usize]) -> Vec<usize> {
    match cli.value(flag) {
        Some(s) => match s.split(',').map(str::parse).collect() {
            Ok(sizes) => sizes,
            Err(_) => {
                eprintln!("invalid {flag} {s:?}: expected sizes like 5 or 6,7");
                std::process::exit(2);
            }
        },
        None => default.to_vec(),
    }
}

/// Evaluates one group of sweeps sharing a rate grid, prints its table/plot,
/// optionally gates model-vs-sim agreement, and feeds the shared sink.
#[allow(clippy::too_many_arguments)]
fn run_group(
    cli: &HarnessArgs,
    evaluator: &dyn Evaluator,
    sink: &mut ReportSink,
    heading: &str,
    sweeps: &[SweepSpec],
    rates: &[f64],
    check_band: Option<f64>,
) {
    let reports = cli.run_pass(evaluator, sweeps);
    println!("# {heading}\n");
    if cli.print_tables() {
        let mut rows = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut row = vec![format!("{rate:.5}")];
            row.extend(reports.iter().map(|r| r.estimates[ri].latency_ci_cell()));
            rows.push(row);
        }
        let columns: Vec<String> =
            reports.iter().map(|r| format!("{} latency (±95% CI)", r.id)).collect();
        let mut header: Vec<&str> = vec!["traffic rate (λ_g)"];
        header.extend(columns.iter().map(String::as_str));
        println!("{}", markdown_table(&header, &rows));
        let curves: Vec<(&str, Vec<f64>)> =
            reports.iter().map(|r| (r.id.as_str(), r.latency_curve())).collect();
        println!("{}", ascii_plot("latency vs offered load", rates, &curves, 60, 16));
    } else {
        println!("(sharded run: pairing table omitted — merge the shard CSVs)\n");
    }
    log_replicate_consumption(&reports);
    if let Some(band) = check_band {
        let model_reports = cli.run_pass(&ModelBackend::new(), sweeps);
        for (model_report, sim_report) in model_reports.iter().zip(&reports) {
            let topology = sim_report.scenario.topology();
            let utilisation_scale = topology.mean_distance()
                * sim_report.scenario.message_length as f64
                / topology.degree() as f64;
            for (model, sim) in model_report.estimates.iter().zip(&sim_report.estimates) {
                if model.saturated || sim.saturated {
                    continue;
                }
                // the tolerance bands are validated at light/moderate load;
                // past ~25% channel utilisation the model's documented
                // over-prediction grows beyond any enforced band
                let utilisation = model.point.traffic_rate * utilisation_scale;
                if utilisation > 0.25 {
                    println!(
                        "[band] {} λ_g={:.5}: skipped ({:.0}% utilisation is beyond \
                         the moderate-load regime the bands cover)",
                        sim_report.id,
                        model.point.traffic_rate,
                        utilisation * 100.0,
                    );
                    continue;
                }
                let err = (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency;
                println!(
                    "[band] {} λ_g={:.5}: model {:.2} vs sim {:.2} → {:.1}% (band {band}%)",
                    sim_report.id,
                    model.point.traffic_rate,
                    model.mean_latency,
                    sim.mean_latency,
                    err * 100.0,
                );
                assert!(
                    err <= band / 100.0,
                    "{} λ_g={:.5}: model {:.2} vs sim {:.2} differ by {:.1}% (> {band}%)",
                    sim_report.id,
                    model.point.traffic_rate,
                    model.mean_latency,
                    sim.mean_latency,
                    err * 100.0,
                );
            }
        }
    }
    sink.extend_pass(sweeps, &reports);
}

fn main() {
    let cli = HarnessArgs::parse();
    let model_only = match cli.value("--backend").as_deref() {
        Some("model") => true,
        None | Some("sim") => false,
        Some(other) => {
            eprintln!("unknown backend {other:?}: expected \"sim\" or \"model\"");
            std::process::exit(2);
        }
    };
    let families =
        cli.topology_kinds(&[TopologyKind::Star, TopologyKind::Hypercube, TopologyKind::Torus]);
    let want = |kind: TopologyKind| families.contains(&kind);
    // model-only runs scale to the sizes the simulator cannot reach
    let default_sizes: &[usize] = if model_only { &[6, 7, 8] } else { &[5] };
    let sizes = sizes_arg(&cli, "--n", default_sizes);
    let torus_sides = sizes_arg(&cli, "--torus-k", if model_only { &[12, 16] } else { &[8] });
    let ring_sides = sizes_arg(&cli, "--ring-k", if model_only { &[16] } else { &[8] });
    let v = cli.usize_or("--v", if model_only { 10 } else { 6 });
    let m = cli.usize_or("--m", 32);
    let points = cli.usize_or("--points", if model_only { 8 } else { 5 });
    let check_band = if model_only {
        None
    } else {
        cli.value("--check-band").and_then(|s| s.parse::<f64>().ok())
    };
    let model_backend = ModelBackend::new();
    let sim_backend = cli.sim_backend();
    let evaluator: &dyn Evaluator = if model_only { &model_backend } else { &sim_backend };
    let sim_max_rate = 0.012 * 32.0 / m as f64;
    let backend_note = if model_only {
        ", no simulator invocation".to_string()
    } else {
        format!(", budget {:?}, {} replicate(s)", sim_backend.budget, cli.replicates())
    };

    let mut sink = cli.report_sink();

    // the node-matched star/hypercube pairs, one group per star size
    if want(TopologyKind::Star) || want(TopologyKind::Hypercube) {
        for &symbols in &sizes {
            let star = cli.replicated(
                Scenario::star(symbols).with_virtual_channels(v).with_message_length(m),
                7_771,
            );
            let mut group: Vec<Scenario> = Vec::new();
            if want(TopologyKind::Star) {
                group.push(star.clone());
            }
            if want(TopologyKind::Hypercube) {
                let dims = Hypercube::at_least(star.topology().node_count()).dims();
                group.push(cli.replicated(
                    Scenario::hypercube(dims).with_virtual_channels(v).with_message_length(m),
                    7_771,
                ));
            }
            let rates: Vec<f64> = if model_only {
                // sweep to just below the earliest knee of the group so every
                // curve stays mostly finite and the divergence near
                // saturation is visible
                let sat = group
                    .iter()
                    .map(|s| model_saturation_rate(s, 0.02))
                    .fold(f64::INFINITY, f64::min);
                (1..=points).map(|i| 0.95 * sat * i as f64 / points as f64).collect()
            } else {
                (1..=points).map(|i| sim_max_rate * i as f64 / points as f64).collect()
            };
            let names: Vec<String> = group
                .iter()
                .map(|s| format!("{} ({} nodes)", s.network_label(), s.topology().node_count()))
                .collect();
            let heading = format!(
                "{} — Enhanced-Nbc, V = {v}, M = {m} ({} backend{backend_note})",
                names.join(" vs "),
                evaluator.name(),
            );
            let sweeps: Vec<SweepSpec> = group
                .into_iter()
                .map(|s| SweepSpec::new(s.network_label(), s, rates.clone()))
                .collect();
            run_group(&cli, evaluator, &mut sink, &heading, &sweeps, &rates, check_band);
        }
    }

    // the tori and rings sweep at fixed sides with their own rate grids —
    // node-matching them to the large stars is infeasible (see the module
    // docs), so each side runs to 95% of its own predicted knee instead
    for (kind, sides) in [(TopologyKind::Torus, &torus_sides), (TopologyKind::Ring, &ring_sides)] {
        if !want(kind) {
            continue;
        }
        for &side in sides {
            let mut scenario = kind.scenario(side).with_message_length(m).with_virtual_channels(v);
            let floor = ModelParams::min_virtual_channels(
                ModelDiscipline::EnhancedNbc,
                scenario.topology().diameter(),
            );
            if v < floor {
                eprintln!(
                    "[v-floor] {} needs V >= {floor} for Enhanced-Nbc; raising from {v}",
                    scenario.network_label()
                );
                scenario = scenario.with_virtual_channels(floor);
            }
            let scenario = cli.replicated(scenario, 7_771);
            let rates: Vec<f64> = if model_only {
                let sat = model_saturation_rate(&scenario, 0.02);
                (1..=points).map(|i| 0.95 * sat * i as f64 / points as f64).collect()
            } else {
                (1..=points).map(|i| sim_max_rate * i as f64 / points as f64).collect()
            };
            let heading = format!(
                "{} ({} nodes) — Enhanced-Nbc, V = {}, M = {m} ({} backend{backend_note})",
                scenario.network_label(),
                scenario.topology().node_count(),
                scenario.virtual_channels,
                evaluator.name(),
            );
            let sweeps = [SweepSpec::new(scenario.network_label(), scenario, rates.clone())];
            run_group(&cli, evaluator, &mut sink, &heading, &sweeps, &rates, check_band);
        }
    }

    match sink.write_csv(&experiments_dir(), "star_vs_hypercube") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write star_vs_hypercube: {e}"),
    }
}
