//! Extension study B (the paper's stated future work): latency of the star
//! graph against the hypercube with at least as many nodes, both running the
//! same adaptive routing scheme — two [`Scenario`]s differing only in their
//! network kind, answered by the same backend.
//!
//! ```text
//! cargo run --release -p star-bench --bin star_vs_hypercube --
//!     [--backend sim|model] [--n 5 | --n 6,7] [--v V] [--m 32]
//!     [--budget quick|standard|thorough] [--points N] [--seed S]
//!     [--threads T]
//! ```
//!
//! With `--backend sim` (the default) both topologies go through the
//! flit-level simulator, which caps the comparison at sizes the simulator
//! can reach (`S5`/`Q7` by default).  With `--backend model` the analytical
//! model answers both sides and **no simulator runs at all**: the default
//! pairs become `S6`/`Q10` (720 vs 1 024 nodes) and `S7`/`Q13` (5 040 vs
//! 8 192 nodes) — the model-only regime the paper argues analytical models
//! exist for — with the rate grid swept up to just below the earlier of the
//! two model-predicted saturation knees.  The model default is `V = 8`
//! because `Q13`'s negative-hop scheme needs `⌊13/2⌋ + 1 = 7` escape levels
//! and Enhanced-Nbc at least one adaptive channel on top.

use star_bench::{
    arg_value, budget_from_args, experiments_dir, model_saturation_rate, threads_from_args,
};
use star_graph::Hypercube;
use star_workloads::{
    ascii_plot, markdown_table, write_csv, Evaluator, ModelBackend, PointEstimate, Scenario,
    SimBackend, SweepRunner, SweepSpec,
};

/// The latency cell written to the CSV: the raw (possibly partial)
/// measurement for simulator estimates, the model latency (empty when
/// saturated) for model estimates.
fn csv_latency(estimate: &PointEstimate) -> String {
    match estimate.sim_report() {
        Some(report) => format!("{:.4}", report.mean_message_latency),
        None => estimate.latency().map_or_else(String::new, |l| format!("{l:.4}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model_only = match arg_value(&args, "--backend").as_deref() {
        Some("model") => true,
        None | Some("sim") => false,
        Some(other) => {
            eprintln!("unknown backend {other:?}: expected \"sim\" or \"model\"");
            std::process::exit(2);
        }
    };
    // model-only runs scale to the sizes the simulator cannot reach
    let default_sizes: &[usize] = if model_only { &[6, 7] } else { &[5] };
    let sizes: Vec<usize> = match arg_value(&args, "--n") {
        Some(s) => match s.split(',').map(str::parse).collect() {
            Ok(sizes) => sizes,
            Err(_) => {
                eprintln!("invalid --n {s:?}: expected star sizes like 5 or 6,7");
                std::process::exit(2);
            }
        },
        None => default_sizes.to_vec(),
    };
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(if model_only {
        8
    } else {
        6
    });
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if model_only { 8 } else { 5 });
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(7_771);
    let budget = budget_from_args(&args);
    let runner = SweepRunner::with_threads(threads_from_args(&args));
    let model_backend = ModelBackend::new();
    let sim_backend = SimBackend::new(budget, seed);
    let evaluator: &dyn Evaluator = if model_only { &model_backend } else { &sim_backend };

    let mut csv_rows = Vec::new();
    for &symbols in &sizes {
        let star = Scenario::star(symbols).with_virtual_channels(v).with_message_length(m);
        let dims = Hypercube::at_least(star.topology().node_count()).dims();
        let cube = Scenario::hypercube(dims).with_virtual_channels(v).with_message_length(m);
        let rates: Vec<f64> = if model_only {
            // sweep to just below the earlier knee so both curves stay
            // mostly finite and the divergence near saturation is visible
            let sat = model_saturation_rate(&star, 0.02).min(model_saturation_rate(&cube, 0.02));
            (1..=points).map(|i| 0.95 * sat * i as f64 / points as f64).collect()
        } else {
            let max_rate = 0.012 * 32.0 / m as f64;
            (1..=points).map(|i| max_rate * i as f64 / points as f64).collect()
        };

        let sweeps = [
            SweepSpec::new(star.network_label(), star, rates.clone()),
            SweepSpec::new(cube.network_label(), cube, rates.clone()),
        ];
        let reports = runner.run(evaluator, &sweeps);
        let (star_report, cube_report) = (&reports[0], &reports[1]);

        let backend_note = if model_only {
            ", no simulator invocation".to_string()
        } else {
            format!(", budget {budget:?}")
        };
        println!(
            "# {} ({} nodes) vs {} ({} nodes) — Enhanced-Nbc, V = {v}, M = {m} \
             ({} backend{backend_note})\n",
            star_report.id,
            star.topology().node_count(),
            cube_report.id,
            cube.topology().node_count(),
            evaluator.name(),
        );
        let mut rows = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let s = &star_report.estimates[ri];
            let c = &cube_report.estimates[ri];
            rows.push(vec![format!("{rate:.5}"), s.latency_cell(), c.latency_cell()]);
            csv_rows.push(format!(
                "{}/{},{rate},{},{},{},{}",
                star_report.id,
                cube_report.id,
                s.saturated,
                csv_latency(s),
                c.saturated,
                csv_latency(c)
            ));
        }
        let star_col = format!("{} latency", star_report.id);
        let cube_col = format!("{} latency", cube_report.id);
        println!(
            "{}",
            markdown_table(&["traffic rate (λ_g)", star_col.as_str(), cube_col.as_str()], &rows)
        );
        println!(
            "{}",
            ascii_plot(
                "star vs hypercube latency",
                &rates,
                &[
                    (star_report.id.as_str(), star_report.latency_curve()),
                    (cube_report.id.as_str(), cube_report.latency_curve()),
                ],
                60,
                16,
            )
        );
    }
    let path = experiments_dir().join("star_vs_hypercube.csv");
    match write_csv(
        &path,
        "pair,traffic_rate,star_saturated,star_latency,cube_saturated,cube_latency",
        &csv_rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
