//! Extension study B (the paper's stated future work): latency of the star
//! graph against the hypercube with at least as many nodes, both running the
//! same adaptive routing scheme in the same simulator.
//!
//! ```text
//! cargo run --release -p star-bench --bin star_vs_hypercube -- [--n 5] [--v 6]
//!     [--m 32] [--budget quick|standard|thorough] [--points N] [--seed S]
//! ```

use std::sync::Arc;

use star_bench::{arg_value, budget_from_args, experiments_dir};
use star_graph::{Hypercube, StarGraph, Topology};
use star_routing::EnhancedNbc;
use star_sim::{Simulation, TrafficPattern};
use star_workloads::{ascii_plot, markdown_table, write_csv, SimBudget};

fn simulate(
    topology: Arc<dyn Topology>,
    v: usize,
    m: usize,
    rate: f64,
    budget: SimBudget,
    seed: u64,
) -> (bool, f64) {
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), v));
    let config = budget.apply(m, rate, seed);
    let report = Simulation::new(topology, routing, config, TrafficPattern::Uniform).run();
    (report.saturated, report.mean_message_latency)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(7_771);
    let budget = budget_from_args(&args);

    let star = Arc::new(StarGraph::new(symbols));
    let cube = Arc::new(Hypercube::at_least(star.node_count()));
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    println!(
        "# {} ({} nodes) vs {} ({} nodes) — Enhanced-Nbc, V = {v}, M = {m} (budget {budget:?})\n",
        star.name(),
        star.node_count(),
        cube.name(),
        cube.node_count()
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut star_series = Vec::new();
    let mut cube_series = Vec::new();
    for &rate in &rates {
        let (s_sat, s_lat) = simulate(star.clone(), v, m, rate, budget, seed);
        let (c_sat, c_lat) = simulate(cube.clone(), v, m, rate, budget, seed);
        star_series.push(if s_sat { f64::INFINITY } else { s_lat });
        cube_series.push(if c_sat { f64::INFINITY } else { c_lat });
        rows.push(vec![
            format!("{rate:.4}"),
            if s_sat { "saturated".into() } else { format!("{s_lat:.1}") },
            if c_sat { "saturated".into() } else { format!("{c_lat:.1}") },
        ]);
        csv_rows.push(format!("{rate},{},{s_lat:.4},{},{c_lat:.4}", s_sat, c_sat));
    }
    let star_col = format!("{} latency", star.name());
    let cube_col = format!("{} latency", cube.name());
    let star_name = star.name();
    let cube_name = cube.name();
    println!(
        "{}",
        markdown_table(&["traffic rate (λ_g)", star_col.as_str(), cube_col.as_str()], &rows)
    );
    println!(
        "{}",
        ascii_plot(
            "star vs hypercube latency",
            &rates,
            &[(star_name.as_str(), star_series), (cube_name.as_str(), cube_series)],
            60,
            16,
        )
    );
    let path = experiments_dir().join("star_vs_hypercube.csv");
    match write_csv(
        &path,
        "traffic_rate,star_saturated,star_latency,cube_saturated,cube_latency",
        &csv_rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
