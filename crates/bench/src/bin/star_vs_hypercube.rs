//! Extension study B (the paper's stated future work): latency of the star
//! graph against the hypercube with at least as many nodes, both running the
//! same adaptive routing scheme — two [`Scenario`]s differing only in their
//! network kind, answered by the same backend.
//!
//! ```text
//! cargo run --release -p star-bench --bin star_vs_hypercube --
//!     [--backend sim|model] [--n 5 | --n 6,7] [--v V] [--m 32]
//!     [--budget quick|standard|thorough] [--points N]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N]
//! ```
//!
//! With `--backend sim` (the default) both topologies go through the
//! flit-level simulator: every operating point runs `--replicates`
//! independently seeded replicates (seeds derived from `--seed-base`) and is
//! reported as mean ± Student-t 95% CI, with the (point × replicate) work
//! items sharded across `--threads` pool workers — output is byte-identical
//! for any thread count.  `--ci-target 0.05` instead keeps adding replicate
//! batches per point until the relative CI half-width drops below 5% (or
//! `--max-replicates` is hit), logging the per-point consumption to stderr.
//!
//! With `--backend model` the analytical model answers both sides and **no
//! simulator runs at all**: the default pairs become `S6`/`Q10` (720 vs
//! 1 024 nodes) and `S7`/`Q13` (5 040 vs 8 192 nodes) — the model-only
//! regime the paper argues analytical models exist for — with the rate grid
//! swept up to just below the earlier of the two model-predicted saturation
//! knees.  The model default is `V = 8` because `Q13`'s negative-hop scheme
//! needs `⌊13/2⌋ + 1 = 7` escape levels and Enhanced-Nbc at least one
//! adaptive channel on top.  Model rows report a CI of zero width, keeping
//! the CSV schema identical across backends.
//!
//! Under `--shard K/N` the run evaluates only its slice of the operating
//! points (simulator pass; the model pass is recomputed in full so the
//! warm-start chain matches an unsharded run) and writes the partial
//! `star_vs_hypercube.shardKofN.csv` that `cargo xtask merge-shards`
//! reassembles byte-identically.

use star_bench::cli::HarnessArgs;
use star_bench::{experiments_dir, log_replicate_consumption, model_saturation_rate};
use star_graph::Hypercube;
use star_workloads::{ascii_plot, markdown_table, Evaluator, ModelBackend, Scenario, SweepSpec};

fn main() {
    let cli = HarnessArgs::parse();
    let model_only = match cli.value("--backend").as_deref() {
        Some("model") => true,
        None | Some("sim") => false,
        Some(other) => {
            eprintln!("unknown backend {other:?}: expected \"sim\" or \"model\"");
            std::process::exit(2);
        }
    };
    // model-only runs scale to the sizes the simulator cannot reach
    let default_sizes: &[usize] = if model_only { &[6, 7] } else { &[5] };
    let sizes: Vec<usize> = match cli.value("--n") {
        Some(s) => match s.split(',').map(str::parse).collect() {
            Ok(sizes) => sizes,
            Err(_) => {
                eprintln!("invalid --n {s:?}: expected star sizes like 5 or 6,7");
                std::process::exit(2);
            }
        },
        None => default_sizes.to_vec(),
    };
    let v = cli.usize_or("--v", if model_only { 8 } else { 6 });
    let m = cli.usize_or("--m", 32);
    let points = cli.usize_or("--points", if model_only { 8 } else { 5 });
    let model_backend = ModelBackend::new();
    let sim_backend = cli.sim_backend();
    let evaluator: &dyn Evaluator = if model_only { &model_backend } else { &sim_backend };

    let mut sink = cli.report_sink();
    for &symbols in &sizes {
        let star = cli.replicated(
            Scenario::star(symbols).with_virtual_channels(v).with_message_length(m),
            7_771,
        );
        let dims = Hypercube::at_least(star.topology().node_count()).dims();
        let cube = Scenario { network: star_workloads::NetworkKind::Hypercube, size: dims, ..star };
        let rates: Vec<f64> = if model_only {
            // sweep to just below the earlier knee so both curves stay
            // mostly finite and the divergence near saturation is visible
            let sat = model_saturation_rate(&star, 0.02).min(model_saturation_rate(&cube, 0.02));
            (1..=points).map(|i| 0.95 * sat * i as f64 / points as f64).collect()
        } else {
            let max_rate = 0.012 * 32.0 / m as f64;
            (1..=points).map(|i| max_rate * i as f64 / points as f64).collect()
        };

        let sweeps = [
            SweepSpec::new(star.network_label(), star, rates.clone()),
            SweepSpec::new(cube.network_label(), cube, rates.clone()),
        ];
        let reports = cli.run_pass(evaluator, &sweeps);
        let (star_report, cube_report) = (&reports[0], &reports[1]);

        let backend_note = if model_only {
            ", no simulator invocation".to_string()
        } else {
            format!(
                ", budget {:?}, {} replicate(s), seed base {}",
                sim_backend.budget, star.replicates, star.seed_base
            )
        };
        println!(
            "# {} ({} nodes) vs {} ({} nodes) — Enhanced-Nbc, V = {v}, M = {m} \
             ({} backend{backend_note})\n",
            star_report.id,
            star.topology().node_count(),
            cube_report.id,
            cube.topology().node_count(),
            evaluator.name(),
        );
        if cli.print_tables() {
            let mut rows = Vec::new();
            for (ri, &rate) in rates.iter().enumerate() {
                let s = &star_report.estimates[ri];
                let c = &cube_report.estimates[ri];
                rows.push(vec![format!("{rate:.5}"), s.latency_ci_cell(), c.latency_ci_cell()]);
            }
            let star_col = format!("{} latency (±95% CI)", star_report.id);
            let cube_col = format!("{} latency (±95% CI)", cube_report.id);
            println!(
                "{}",
                markdown_table(
                    &["traffic rate (λ_g)", star_col.as_str(), cube_col.as_str()],
                    &rows
                )
            );
            println!(
                "{}",
                ascii_plot(
                    "star vs hypercube latency",
                    &rates,
                    &[
                        (star_report.id.as_str(), star_report.latency_curve()),
                        (cube_report.id.as_str(), cube_report.latency_curve()),
                    ],
                    60,
                    16,
                )
            );
        } else {
            println!("(sharded run: star/cube pairing table omitted — merge the shard CSVs)\n");
        }
        log_replicate_consumption(&reports);
        sink.extend_pass(&sweeps, &reports);
    }
    match sink.write_csv(&experiments_dir(), "star_vs_hypercube") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write star_vs_hypercube: {e}"),
    }
}
