//! Extension study B (the paper's stated future work): latency of the star
//! graph against the hypercube with at least as many nodes, both running the
//! same adaptive routing scheme — two [`Scenario`]s differing only in their
//! network kind, answered by the same simulator backend.
//!
//! ```text
//! cargo run --release -p star-bench --bin star_vs_hypercube -- [--n 5] [--v 6]
//!     [--m 32] [--budget quick|standard|thorough] [--points N] [--seed S]
//!     [--threads T]
//! ```

use star_bench::{arg_value, budget_from_args, experiments_dir, threads_from_args};
use star_graph::Hypercube;
use star_workloads::{
    ascii_plot, markdown_table, write_csv, Scenario, SimBackend, SweepRunner, SweepSpec,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(7_771);
    let budget = budget_from_args(&args);
    let runner = SweepRunner::with_threads(threads_from_args(&args));

    let star = Scenario::star(symbols).with_virtual_channels(v).with_message_length(m);
    let dims = Hypercube::at_least(star.topology().node_count()).dims();
    let cube = Scenario::hypercube(dims).with_virtual_channels(v).with_message_length(m);
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    let sweeps = [
        SweepSpec::new(star.network_label(), star, rates.clone()),
        SweepSpec::new(cube.network_label(), cube, rates.clone()),
    ];
    let reports = runner.run(&SimBackend::new(budget, seed), &sweeps);
    let (star_report, cube_report) = (&reports[0], &reports[1]);

    println!(
        "# {} ({} nodes) vs {} ({} nodes) — Enhanced-Nbc, V = {v}, M = {m} (budget {budget:?})\n",
        star_report.id,
        star.topology().node_count(),
        cube_report.id,
        cube.topology().node_count()
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let s = &star_report.estimates[ri];
        let c = &cube_report.estimates[ri];
        rows.push(vec![format!("{rate:.4}"), s.latency_cell(), c.latency_cell()]);
        // the CSV keeps the raw (possibly partial) measurements for diagnosis
        let raw = |e: &star_workloads::PointEstimate| {
            e.sim_report().expect("sim backend yields sim reports").mean_message_latency
        };
        csv_rows.push(format!(
            "{rate},{},{:.4},{},{:.4}",
            s.saturated,
            raw(s),
            c.saturated,
            raw(c)
        ));
    }
    let star_col = format!("{} latency", star_report.id);
    let cube_col = format!("{} latency", cube_report.id);
    println!(
        "{}",
        markdown_table(&["traffic rate (λ_g)", star_col.as_str(), cube_col.as_str()], &rows)
    );
    println!(
        "{}",
        ascii_plot(
            "star vs hypercube latency",
            &rates,
            &[
                (star_report.id.as_str(), star_report.latency_curve()),
                (cube_report.id.as_str(), cube_report.latency_curve()),
            ],
            60,
            16,
        )
    );
    let path = experiments_dir().join("star_vs_hypercube.csv");
    match write_csv(
        &path,
        "traffic_rate,star_saturated,star_latency,cube_saturated,cube_latency",
        &csv_rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
