//! Regenerates the topological comparison quoted in Section 2 of the paper:
//! the star graph against the hypercube with at least as many nodes — node
//! count, degree, diameter, channel count and mean distance (the `d̄` of
//! Eq. 2).
//!
//! ```text
//! cargo run --release -p star-bench --bin properties_table -- [--max-n N]
//! ```
//!
//! This table is purely combinatorial (no model solve, no simulation), so it
//! is the one harness binary without the `--replicates`/`--seed-base`
//! replication flags — there is no stochastic quantity to put a confidence
//! interval on.

use star_bench::{arg_value, experiments_dir};
use star_graph::{Hypercube, StarGraph, TopologyProperties};
use star_workloads::{markdown_table, write_csv, NetworkKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_n: usize = arg_value(&args, "--max-n").and_then(|s| s.parse().ok()).unwrap_or(7);
    let max_n = max_n.clamp(3, StarGraph::MAX_TABLED_SYMBOLS);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for n in 3..=max_n {
        let star = NetworkKind::Star.topology(n);
        let cube = Hypercube::at_least(star.node_count());
        for props in [TopologyProperties::of(star.as_ref()), TopologyProperties::of(&cube)] {
            rows.push(vec![
                props.name.clone(),
                props.nodes.to_string(),
                props.degree.to_string(),
                props.diameter.to_string(),
                props.channels.to_string(),
                format!("{:.4}", props.mean_distance),
            ]);
            csv_rows.push(format!(
                "{},{},{},{},{},{:.6}",
                props.name,
                props.nodes,
                props.degree,
                props.diameter,
                props.channels,
                props.mean_distance
            ));
        }
    }

    println!("# Star graph vs hypercube — topological properties (paper §2)\n");
    println!(
        "{}",
        markdown_table(
            &["network", "nodes", "degree", "diameter", "channels", "mean distance"],
            &rows
        )
    );
    let path = experiments_dir().join("properties_table.csv");
    match write_csv(&path, "network,nodes,degree,diameter,channels,mean_distance", &csv_rows) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
