//! Regenerates the topological comparison quoted in Section 2 of the paper:
//! the star graph against the hypercube with at least as many nodes — node
//! count, degree, diameter, channel count and mean distance (the `d̄` of
//! Eq. 2).
//!
//! ```text
//! cargo run --release -p star-bench --bin properties_table -- [--max-n N]
//!     [--topology star,hypercube,torus,ring] [--shard K/N]
//! ```
//!
//! `--topology` selects the families to table (default the paper's star +
//! matched hypercube; torus rows cover sides 4–16, ring rows 4–32 nodes).
//!
//! This table is purely combinatorial (no model solve, no simulation), so it
//! is the one harness binary without the `--replicates`/`--seed-base`
//! replication flags — there is no stochastic quantity to put a confidence
//! interval on.  It still accepts `--shard K/N` (slicing its network-row
//! list) so the full harness surface shares one sharding story; the work
//! saved is of course negligible.

use std::sync::Arc;

use star_bench::cli::HarnessArgs;
use star_graph::{Hypercube, StarGraph, Topology, TopologyProperties};
use star_workloads::{markdown_table, TopologyKind};

fn main() {
    let cli = HarnessArgs::parse();
    let max_n = cli.usize_or("--max-n", 7);
    let max_n = max_n.clamp(3, StarGraph::MAX_TABLED_SYMBOLS);
    let families = cli.topology_kinds(&[TopologyKind::Star, TopologyKind::Hypercube]);
    let want = |kind: TopologyKind| families.contains(&kind);

    let mut topologies: Vec<Arc<dyn Topology>> = Vec::new();
    if want(TopologyKind::Star) || want(TopologyKind::Hypercube) {
        for n in 3..=max_n {
            let star = TopologyKind::Star.topology(n);
            let cube = Hypercube::at_least(star.node_count());
            if want(TopologyKind::Star) {
                topologies.push(star);
            }
            if want(TopologyKind::Hypercube) {
                topologies.push(Arc::new(cube));
            }
        }
    }
    if want(TopologyKind::Torus) {
        for side in [4usize, 8, 12, 16] {
            topologies.push(TopologyKind::Torus.topology(side));
        }
    }
    if want(TopologyKind::Ring) {
        for nodes in [4usize, 8, 16, 32] {
            topologies.push(TopologyKind::Ring.topology(nodes));
        }
    }

    let mut rows = Vec::new();
    let mut csv_rows: Vec<(usize, String)> = Vec::new();
    for (flat, topology) in topologies.iter().enumerate() {
        if !cli.shard.is_none_or(|shard| shard.owns(flat)) {
            continue;
        }
        let props = TopologyProperties::of(topology.as_ref());
        rows.push(vec![
            props.name.clone(),
            props.nodes.to_string(),
            props.degree.to_string(),
            props.diameter.to_string(),
            props.channels.to_string(),
            format!("{:.4}", props.mean_distance),
        ]);
        csv_rows.push((
            flat,
            format!(
                "{},{},{},{},{},{:.6}",
                props.name,
                props.nodes,
                props.degree,
                props.diameter,
                props.channels,
                props.mean_distance
            ),
        ));
    }

    println!("# Topological properties across families (paper §2)\n");
    if cli.print_tables() {
        println!(
            "{}",
            markdown_table(
                &["network", "nodes", "degree", "diameter", "channels", "mean distance"],
                &rows
            )
        );
    } else {
        println!("(sharded run: table omitted — merge the shard CSVs)\n");
    }
    let mut run = star_exec::RunFingerprint::new();
    run.add_u64(max_n as u64);
    for family in &families {
        run.add_str(family.name());
    }
    match cli.write_indexed_csv(
        "properties_table",
        "network,nodes,degree,diameter,channels,mean_distance",
        run,
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write properties_table: {e}"),
    }
}
