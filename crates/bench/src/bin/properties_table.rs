//! Regenerates the topological comparison quoted in Section 2 of the paper:
//! the star graph against the hypercube with at least as many nodes — node
//! count, degree, diameter, channel count and mean distance (the `d̄` of
//! Eq. 2).
//!
//! ```text
//! cargo run --release -p star-bench --bin properties_table -- [--max-n N]
//!     [--shard K/N]
//! ```
//!
//! This table is purely combinatorial (no model solve, no simulation), so it
//! is the one harness binary without the `--replicates`/`--seed-base`
//! replication flags — there is no stochastic quantity to put a confidence
//! interval on.  It still accepts `--shard K/N` (slicing its network-row
//! list) so the full harness surface shares one sharding story; the work
//! saved is of course negligible.

use star_bench::cli::HarnessArgs;
use star_graph::{Hypercube, StarGraph, TopologyProperties};
use star_workloads::{markdown_table, NetworkKind};

fn main() {
    let cli = HarnessArgs::parse();
    let max_n = cli.usize_or("--max-n", 7);
    let max_n = max_n.clamp(3, StarGraph::MAX_TABLED_SYMBOLS);

    let mut rows = Vec::new();
    let mut csv_rows: Vec<(usize, String)> = Vec::new();
    let mut flat = 0usize;
    for n in 3..=max_n {
        let star = NetworkKind::Star.topology(n);
        let cube = Hypercube::at_least(star.node_count());
        for props in [TopologyProperties::of(star.as_ref()), TopologyProperties::of(&cube)] {
            let owned = cli.shard.is_none_or(|shard| shard.owns(flat));
            if owned {
                rows.push(vec![
                    props.name.clone(),
                    props.nodes.to_string(),
                    props.degree.to_string(),
                    props.diameter.to_string(),
                    props.channels.to_string(),
                    format!("{:.4}", props.mean_distance),
                ]);
                csv_rows.push((
                    flat,
                    format!(
                        "{},{},{},{},{},{:.6}",
                        props.name,
                        props.nodes,
                        props.degree,
                        props.diameter,
                        props.channels,
                        props.mean_distance
                    ),
                ));
            }
            flat += 1;
        }
    }

    println!("# Star graph vs hypercube — topological properties (paper §2)\n");
    if cli.print_tables() {
        println!(
            "{}",
            markdown_table(
                &["network", "nodes", "degree", "diameter", "channels", "mean distance"],
                &rows
            )
        );
    } else {
        println!("(sharded run: table omitted — merge the shard CSVs)\n");
    }
    let mut run = star_exec::RunFingerprint::new();
    run.add_u64(max_n as u64);
    match cli.write_indexed_csv(
        "properties_table",
        "network,nodes,degree,diameter,channels,mean_distance",
        run,
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write properties_table: {e}"),
    }
}
