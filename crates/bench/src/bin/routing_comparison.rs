//! Extension study A: simulated latency of the routing algorithms the paper
//! builds on — plain negative-hop (NHop), negative-hop with bonus cards
//! (Nbc), Enhanced-Nbc, and a deterministic minimal baseline — on the same
//! network, all driven through the simulator backend of the unified
//! `Evaluator` API.  This reproduces the comparison (from the authors'
//! earlier HPC-Asia'05 study) that motivates the model's focus on
//! Enhanced-Nbc.
//!
//! ```text
//! cargo run --release -p star-bench --bin routing_comparison --
//!     [--topology star|hypercube|torus|ring] [--n SIZE] [--v 6]
//!     [--m 32] [--budget quick|standard|thorough] [--points N]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N]
//! ```
//!
//! `--topology` runs the same four-discipline comparison on another family
//! (the bonus-card schemes are topology-generic); `--n` then selects that
//! family's size (symbols / dimensions / torus side / ring nodes, default
//! the family's smoke size).  A `--v` below the family's Enhanced-Nbc
//! escape-level floor is raised with a note on stderr.

use star_bench::cli::HarnessArgs;
use star_bench::{experiments_dir, log_replicate_consumption};
use star_core::{ModelDiscipline, ModelParams};
use star_workloads::{ascii_plot, markdown_table, Discipline, SweepSpec, TopologyKind};

fn main() {
    let cli = HarnessArgs::parse();
    let kind = cli.topology_kind(TopologyKind::Star);
    let size = cli.usize_or("--n", kind.default_size());
    let mut v = cli.usize_or("--v", 6);
    let m = cli.usize_or("--m", 32);
    let points = cli.usize_or("--points", 5);
    let backend = cli.sim_backend();
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    let base = kind.scenario(size).with_message_length(m);
    let floor =
        ModelParams::min_virtual_channels(ModelDiscipline::EnhancedNbc, base.topology().diameter());
    if v < floor {
        eprintln!(
            "[v-floor] {} needs V >= {floor} for Enhanced-Nbc; raising from {v}",
            base.network_label()
        );
        v = floor;
    }
    let sweeps: Vec<SweepSpec> = Discipline::ALL
        .iter()
        .map(|&d| {
            let scenario =
                cli.replicated(base.clone().with_discipline(d).with_virtual_channels(v), 1_993);
            SweepSpec::new(d.name(), scenario, rates.clone())
        })
        .collect();
    let reports = cli.run_pass(&backend, &sweeps);

    println!(
        "# Routing algorithm comparison — {}, V = {v}, M = {m} (budget {:?}, \
         {} replicate(s))\n",
        base.network_label(),
        backend.budget,
        sweeps[0].scenario.replicates
    );
    if cli.print_tables() {
        let mut table_rows = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut cells = vec![format!("{rate:.4}")];
            for report in &reports {
                cells.push(report.estimates[ri].latency_ci_cell());
            }
            table_rows.push(cells);
        }
        let mut header = vec!["traffic rate (λ_g)"];
        header.extend(reports.iter().map(|r| r.id.as_str()));
        println!("{}", markdown_table(&header, &table_rows));
        let series: Vec<(&str, Vec<f64>)> =
            reports.iter().map(|r| (r.id.as_str(), r.latency_curve())).collect();
        println!("{}", ascii_plot("mean message latency vs traffic rate", &rates, &series, 60, 16));
    } else {
        println!("(sharded run: cross-discipline table omitted — merge the shard CSVs)\n");
    }
    log_replicate_consumption(&reports);
    let mut sink = cli.report_sink();
    sink.extend_pass(&sweeps, &reports);
    match sink.write_csv(&experiments_dir(), "routing_comparison") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write routing_comparison: {e}"),
    }
}
