//! Extension study A: simulated latency of the routing algorithms the paper
//! builds on — plain negative-hop (NHop), negative-hop with bonus cards
//! (Nbc), Enhanced-Nbc, and a deterministic minimal baseline — on the same
//! network.  This reproduces the comparison (from the authors' earlier
//! HPC-Asia'05 study) that motivates the model's focus on Enhanced-Nbc.
//!
//! ```text
//! cargo run --release -p star-bench --bin routing_comparison -- [--n 5] [--v 6]
//!     [--m 32] [--budget quick|standard|thorough] [--points N] [--seed S]
//! ```

use star_bench::{arg_value, budget_from_args, experiments_dir, simulate_star};
use star_workloads::{ascii_plot, markdown_table, write_csv};

const ALGORITHMS: [&str; 4] = ["enhanced-nbc", "nbc", "nhop", "deterministic"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(1_993);
    let budget = budget_from_args(&args);
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    println!("# Routing algorithm comparison — S{symbols}, V = {v}, M = {m} (budget {budget:?})\n");
    let mut table_rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut series: Vec<(&str, Vec<f64>)> = ALGORITHMS.iter().map(|&a| (a, Vec::new())).collect();
    for &rate in &rates {
        let mut cells = vec![format!("{rate:.4}")];
        for (ai, &algo) in ALGORITHMS.iter().enumerate() {
            let report = simulate_star(symbols, algo, v, m, rate, budget, seed);
            let cell = if report.saturated {
                series[ai].1.push(f64::INFINITY);
                "saturated".to_string()
            } else {
                series[ai].1.push(report.mean_message_latency);
                format!("{:.1}", report.mean_message_latency)
            };
            csv_rows.push(format!(
                "{algo},{rate},{},{:.4},{:.6}",
                report.saturated, report.mean_message_latency, report.blocking_probability
            ));
            cells.push(cell);
        }
        table_rows.push(cells);
    }

    let mut header = vec!["traffic rate (λ_g)"];
    header.extend(ALGORITHMS);
    println!("{}", markdown_table(&header, &table_rows));
    println!(
        "{}",
        ascii_plot(
            "mean message latency vs traffic rate",
            &rates,
            &series.iter().map(|(n, s)| (*n, s.clone())).collect::<Vec<_>>(),
            60,
            16,
        )
    );
    let path = experiments_dir().join("routing_comparison.csv");
    match write_csv(
        &path,
        "algorithm,traffic_rate,saturated,mean_latency,blocking_probability",
        &csv_rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
