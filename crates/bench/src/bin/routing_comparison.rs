//! Extension study A: simulated latency of the routing algorithms the paper
//! builds on — plain negative-hop (NHop), negative-hop with bonus cards
//! (Nbc), Enhanced-Nbc, and a deterministic minimal baseline — on the same
//! network, all driven through the simulator backend of the unified
//! `Evaluator` API.  This reproduces the comparison (from the authors'
//! earlier HPC-Asia'05 study) that motivates the model's focus on
//! Enhanced-Nbc.
//!
//! ```text
//! cargo run --release -p star-bench --bin routing_comparison -- [--n 5] [--v 6]
//!     [--m 32] [--budget quick|standard|thorough] [--points N]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T]
//! ```

use star_bench::{
    arg_value, experiments_dir, log_replicate_consumption, replicated_scenario,
    sim_backend_from_args, threads_from_args,
};
use star_workloads::{
    ascii_plot, markdown_table, Discipline, RunReport, Scenario, SweepRunner, SweepSpec,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols: usize = arg_value(&args, "--n").and_then(|s| s.parse().ok()).unwrap_or(5);
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let points: usize = arg_value(&args, "--points").and_then(|s| s.parse().ok()).unwrap_or(5);
    let backend = sim_backend_from_args(&args);
    let runner = SweepRunner::with_threads(threads_from_args(&args));
    let max_rate = 0.012 * 32.0 / m as f64;
    let rates: Vec<f64> = (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();

    let sweeps: Vec<SweepSpec> = Discipline::ALL
        .iter()
        .map(|&d| {
            let scenario = replicated_scenario(
                Scenario::star(symbols)
                    .with_discipline(d)
                    .with_virtual_channels(v)
                    .with_message_length(m),
                &args,
                1_993,
            );
            SweepSpec::new(d.name(), scenario, rates.clone())
        })
        .collect();
    let reports = runner.run(&backend, &sweeps);

    println!(
        "# Routing algorithm comparison — S{symbols}, V = {v}, M = {m} (budget {:?}, \
         {} replicate(s))\n",
        backend.budget, sweeps[0].scenario.replicates
    );
    let mut table_rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut cells = vec![format!("{rate:.4}")];
        for report in &reports {
            cells.push(report.estimates[ri].latency_ci_cell());
        }
        table_rows.push(cells);
    }

    let mut header = vec!["traffic rate (λ_g)"];
    header.extend(reports.iter().map(|r| r.id.as_str()));
    println!("{}", markdown_table(&header, &table_rows));
    let series: Vec<(&str, Vec<f64>)> =
        reports.iter().map(|r| (r.id.as_str(), r.latency_curve())).collect();
    println!("{}", ascii_plot("mean message latency vs traffic rate", &rates, &series, 60, 16));
    log_replicate_consumption(&reports);
    let path = experiments_dir().join("routing_comparison.csv");
    match RunReport::from_sweeps(&reports).write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
