//! Extension study C: model accuracy and scalability across network sizes,
//! on every topology family the workspace ships.
//!
//! For every star size `S4`–`S8` the binary also evaluates the matched
//! hypercube (the smallest `Q_d` with at least as many nodes: `Q5`, `Q7`,
//! `Q10`, `Q13`, `Q16`), and the torus family sweeps fixed sides
//! `T8`/`T12`/`T16` (`--topology` picks any subset of
//! `star,hypercube,torus,ring`).  Small networks (≤ 200 nodes) run both
//! evaluation backends at a light and a moderate load so the model can be
//! cross-validated; the large ones (`S6`–`S8`, `Q10`–`Q16` and `T16`, up to
//! 65 536 nodes) run the analytical model alone — exactly the regime the
//! paper argues analytical models are for, where flit-level simulation
//! stops being practical.  The default is `V = 8` virtual channels;
//! networks whose diameter demands more escape levels (`Q13` is the first,
//! `Q16` needs 10) are raised to their per-network floor with a note on
//! stderr, and the table carries a `V` column so the raised rows are
//! visible.
//!
//! ```text
//! cargo run --release -p star-bench --bin size_sweep --
//!     [--topology star,hypercube,torus,ring] [--v 8] [--m 32]
//!     [--budget quick|standard|thorough]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N]
//! ```

use star_bench::cli::HarnessArgs;
use star_bench::{experiments_dir, log_replicate_consumption};
use star_core::{ModelDiscipline, ModelParams};
use star_graph::Hypercube;
use star_workloads::{markdown_table, ModelBackend, Scenario, SweepSpec, TopologyKind};

/// Largest network the flit-level simulator is asked to run (the model has
/// no such limit).
const MAX_SIM_NODES: usize = 200;

/// Applies `--v`, raised to the network's Enhanced-Nbc escape-level floor
/// where the diameter demands more.
fn with_v_floor(scenario: Scenario, v: usize) -> Scenario {
    let floor = ModelParams::min_virtual_channels(
        ModelDiscipline::EnhancedNbc,
        scenario.topology().diameter(),
    );
    if floor > v {
        eprintln!(
            "[v-floor] {} needs V >= {floor} for Enhanced-Nbc; raising from {v}",
            scenario.network_label()
        );
        scenario.with_virtual_channels(floor)
    } else {
        scenario.with_virtual_channels(v)
    }
}

fn main() {
    let cli = HarnessArgs::parse();
    let v = cli.usize_or("--v", 8);
    let m = cli.usize_or("--m", 32);
    let families =
        cli.topology_kinds(&[TopologyKind::Star, TopologyKind::Hypercube, TopologyKind::Torus]);
    let want = |kind: TopologyKind| families.contains(&kind);
    let backend = cli.sim_backend();
    let utilisations = [0.15, 0.35];

    // star sizes S4..S8 interleaved with their matched hypercubes, then the
    // fixed-side tori and rings; the load is scaled per network so the
    // target channel utilisation λ_c·M is comparable across sizes and
    // topologies (λ_g = u·degree/(d̄·M))
    let mut scenarios: Vec<Scenario> = Vec::new();
    if want(TopologyKind::Star) || want(TopologyKind::Hypercube) {
        for symbols in 4..=8usize {
            let star =
                cli.replicated(with_v_floor(Scenario::star(symbols).with_message_length(m), v), 11);
            let dims = Hypercube::at_least(star.topology().node_count()).dims();
            if want(TopologyKind::Star) {
                scenarios.push(star);
            }
            if want(TopologyKind::Hypercube) {
                scenarios.push(cli.replicated(
                    with_v_floor(Scenario::hypercube(dims).with_message_length(m), v),
                    11,
                ));
            }
        }
    }
    if want(TopologyKind::Torus) {
        for side in [8usize, 12, 16] {
            scenarios.push(
                cli.replicated(with_v_floor(Scenario::torus(side).with_message_length(m), v), 11),
            );
        }
    }
    if want(TopologyKind::Ring) {
        for nodes in [8usize, 16] {
            scenarios.push(
                cli.replicated(with_v_floor(Scenario::ring(nodes).with_message_length(m), v), 11),
            );
        }
    }
    let sweeps: Vec<SweepSpec> = scenarios
        .iter()
        .map(|scenario| {
            let topology = scenario.topology();
            let rates: Vec<f64> = utilisations
                .iter()
                .map(|u| u * topology.degree() as f64 / (topology.mean_distance() * m as f64))
                .collect();
            SweepSpec::new(scenario.network_label(), scenario.clone(), rates)
        })
        .collect();
    let model_reports = cli.run_pass(&ModelBackend::new(), &sweeps);
    let sim_sweeps: Vec<SweepSpec> = sweeps
        .iter()
        .filter(|s| s.scenario.topology().node_count() <= MAX_SIM_NODES)
        .cloned()
        .collect();
    let sim_reports = cli.run_pass(&backend, &sim_sweeps);

    println!(
        "# Model accuracy and scalability across network sizes and topologies \
         (V = {v} or the per-network floor, M = {m}, {} sim replicate(s))\n",
        scenarios[0].replicates
    );
    if cli.print_tables() {
        let mut rows = Vec::new();
        for (si, report) in model_reports.iter().enumerate() {
            for (ri, estimate) in report.estimates.iter().enumerate() {
                let model_cell = estimate.latency_cell();
                let sim_cell = sim_reports.iter().find(|r| r.id == report.id).map_or_else(
                    || "(model only)".to_string(),
                    |r| r.estimates[ri].latency_ci_cell(),
                );
                let utilisation = utilisations[ri];
                let rate = sweeps[si].rates[ri];
                rows.push(vec![
                    report.id.clone(),
                    format!("{}", report.scenario.topology().node_count()),
                    format!("{}", report.scenario.virtual_channels),
                    format!("{:.0}%", utilisation * 100.0),
                    format!("{rate:.5}"),
                    model_cell,
                    sim_cell,
                ]);
            }
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "network",
                    "nodes",
                    "V",
                    "target channel utilisation",
                    "traffic rate (λ_g)",
                    "model latency",
                    "sim latency (±95% CI)"
                ],
                &rows
            )
        );
    } else {
        println!("(sharded run: model/sim pairing table omitted — merge the shard CSVs)\n");
    }
    log_replicate_consumption(&sim_reports);
    let mut sink = cli.report_sink();
    sink.extend_pass(&sweeps, &model_reports);
    sink.extend_pass(&sim_sweeps, &sim_reports);
    match sink.write_csv(&experiments_dir(), "size_sweep") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write size_sweep: {e}"),
    }
}
