//! Extension study C: model accuracy and scalability across network sizes.
//!
//! For `S4` and `S5` the binary runs both evaluation backends at a light and
//! a moderate load; for `S6` and `S7` (720 and 5 040 nodes) it runs the model
//! alone — exactly the regime the paper argues analytical models are for,
//! where flit-level simulation stops being practical.
//!
//! ```text
//! cargo run --release -p star-bench --bin size_sweep --
//!     [--v 6] [--m 32] [--budget quick|standard|thorough] [--seed S]
//!     [--threads T]
//! ```

use star_bench::{arg_value, budget_from_args, experiments_dir, threads_from_args};
use star_workloads::{
    markdown_table, write_csv, Evaluator as _, ModelBackend, Scenario, SimBackend, SweepRunner,
    SweepSpec,
};

/// Largest star graph the flit-level simulator is asked to run.
const MAX_SIM_SYMBOLS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(11);
    let budget = budget_from_args(&args);
    let runner = SweepRunner::with_threads(threads_from_args(&args));
    let model = ModelBackend::new();
    let utilisations = [0.15, 0.35];

    // scale the load with the mean distance so the relative channel
    // utilisation is comparable across sizes; the zero-load probe supplies d̄
    let sweeps: Vec<SweepSpec> = (4..=7usize)
        .map(|symbols| {
            let scenario = Scenario::star(symbols).with_virtual_channels(v).with_message_length(m);
            let probe = model.evaluate(&scenario.at(0.0));
            let mean_distance =
                probe.model_result().expect("model probe yields a model result").mean_distance;
            let degree = (symbols - 1) as f64;
            let rates: Vec<f64> =
                utilisations.iter().map(|u| u * degree / (mean_distance * m as f64)).collect();
            SweepSpec::new(format!("S{symbols}"), scenario, rates)
        })
        .collect();
    let model_reports = runner.run(&model, &sweeps);
    let sim_sweeps: Vec<SweepSpec> =
        sweeps.iter().filter(|s| s.scenario.size <= MAX_SIM_SYMBOLS).cloned().collect();
    let sim_reports = runner.run(&SimBackend::new(budget, seed), &sim_sweeps);

    println!("# Model accuracy and scalability across network sizes (V = {v}, M = {m})\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (si, report) in model_reports.iter().enumerate() {
        for (ri, estimate) in report.estimates.iter().enumerate() {
            let model_cell = estimate.latency_cell();
            let sim_cell = sim_reports
                .iter()
                .find(|r| r.id == report.id)
                .map_or_else(|| "(model only)".to_string(), |r| r.estimates[ri].latency_cell());
            let utilisation = utilisations[ri];
            let rate = sweeps[si].rates[ri];
            rows.push(vec![
                report.id.clone(),
                format!("{:.0}%", utilisation * 100.0),
                format!("{rate:.5}"),
                model_cell.clone(),
                sim_cell.clone(),
            ]);
            csv_rows.push(format!("{},{utilisation},{rate},{model_cell},{sim_cell}", report.id));
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "network",
                "target channel utilisation",
                "traffic rate (λ_g)",
                "model latency",
                "sim latency"
            ],
            &rows
        )
    );
    let path = experiments_dir().join("size_sweep.csv");
    match write_csv(&path, "network,utilisation,traffic_rate,model_latency,sim_latency", &csv_rows)
    {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
