//! Extension study C: model accuracy and scalability across network sizes,
//! on both topology families.
//!
//! For every star size `S4`–`S7` the binary also evaluates the matched
//! hypercube (the smallest `Q_d` with at least as many nodes: `Q5`, `Q7`,
//! `Q10`, `Q13`).  Small networks (≤ 200 nodes) run both evaluation
//! backends at a light and a moderate load so the model can be
//! cross-validated; the large ones (`S6`/`S7` and `Q10`/`Q13`, up to 8 192
//! nodes) run the analytical model alone — exactly the regime the paper
//! argues analytical models are for, where flit-level simulation stops
//! being practical.  The default is `V = 8` virtual channels because
//! `Q13`'s negative-hop scheme needs 7 escape levels and Enhanced-Nbc one
//! adaptive channel on top; both topologies use the same `V` so the rows
//! stay comparable.
//!
//! ```text
//! cargo run --release -p star-bench --bin size_sweep --
//!     [--v 8] [--m 32] [--budget quick|standard|thorough]
//!     [--replicates R] [--seed-base S] [--ci-target REL [--max-replicates C]]
//!     [--threads T] [--shard K/N]
//! ```

use star_bench::cli::HarnessArgs;
use star_bench::{experiments_dir, log_replicate_consumption};
use star_graph::Hypercube;
use star_workloads::{markdown_table, ModelBackend, Scenario, SweepSpec};

/// Largest network the flit-level simulator is asked to run (the model has
/// no such limit).
const MAX_SIM_NODES: usize = 200;

fn main() {
    let cli = HarnessArgs::parse();
    let v = cli.usize_or("--v", 8);
    let m = cli.usize_or("--m", 32);
    let backend = cli.sim_backend();
    let utilisations = [0.15, 0.35];

    // star sizes S4..S7 interleaved with their matched hypercubes; the load
    // is scaled per network so the target channel utilisation λ_c·M is
    // comparable across sizes and topologies (λ_g = u·degree/(d̄·M))
    let scenarios: Vec<Scenario> = (4..=7usize)
        .flat_map(|symbols| {
            let star = cli.replicated(
                Scenario::star(symbols).with_virtual_channels(v).with_message_length(m),
                11,
            );
            let dims = Hypercube::at_least(star.topology().node_count()).dims();
            let cube =
                Scenario { network: star_workloads::NetworkKind::Hypercube, size: dims, ..star };
            [star, cube]
        })
        .collect();
    let sweeps: Vec<SweepSpec> = scenarios
        .iter()
        .map(|&scenario| {
            let topology = scenario.topology();
            let rates: Vec<f64> = utilisations
                .iter()
                .map(|u| u * topology.degree() as f64 / (topology.mean_distance() * m as f64))
                .collect();
            SweepSpec::new(scenario.network_label(), scenario, rates)
        })
        .collect();
    let model_reports = cli.run_pass(&ModelBackend::new(), &sweeps);
    let sim_sweeps: Vec<SweepSpec> = sweeps
        .iter()
        .filter(|s| s.scenario.topology().node_count() <= MAX_SIM_NODES)
        .cloned()
        .collect();
    let sim_reports = cli.run_pass(&backend, &sim_sweeps);

    println!(
        "# Model accuracy and scalability across network sizes and topologies \
         (V = {v}, M = {m}, {} sim replicate(s))\n",
        scenarios[0].replicates
    );
    if cli.print_tables() {
        let mut rows = Vec::new();
        for (si, report) in model_reports.iter().enumerate() {
            for (ri, estimate) in report.estimates.iter().enumerate() {
                let model_cell = estimate.latency_cell();
                let sim_cell = sim_reports.iter().find(|r| r.id == report.id).map_or_else(
                    || "(model only)".to_string(),
                    |r| r.estimates[ri].latency_ci_cell(),
                );
                let utilisation = utilisations[ri];
                let rate = sweeps[si].rates[ri];
                rows.push(vec![
                    report.id.clone(),
                    format!("{}", report.scenario.topology().node_count()),
                    format!("{:.0}%", utilisation * 100.0),
                    format!("{rate:.5}"),
                    model_cell,
                    sim_cell,
                ]);
            }
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "network",
                    "nodes",
                    "target channel utilisation",
                    "traffic rate (λ_g)",
                    "model latency",
                    "sim latency (±95% CI)"
                ],
                &rows
            )
        );
    } else {
        println!("(sharded run: model/sim pairing table omitted — merge the shard CSVs)\n");
    }
    log_replicate_consumption(&sim_reports);
    let mut sink = cli.report_sink();
    sink.extend_pass(&sweeps, &model_reports);
    sink.extend_pass(&sim_sweeps, &sim_reports);
    match sink.write_csv(&experiments_dir(), "size_sweep") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write size_sweep: {e}"),
    }
}
