//! Extension study C: model accuracy and scalability across network sizes.
//!
//! For `S4` and `S5` the binary runs both the analytical model and the
//! simulator at a light and a moderate load; for `S6` and `S7` (720 and 5 040
//! nodes) it runs the model alone — exactly the regime the paper argues
//! analytical models are for, where flit-level simulation stops being
//! practical.
//!
//! ```text
//! cargo run --release -p star-bench --bin size_sweep --
//!     [--v 6] [--m 32] [--budget quick|standard|thorough] [--seed S]
//! ```

use star_bench::{arg_value, budget_from_args, experiments_dir};
use star_core::{AnalyticalModel, ModelConfig};
use star_workloads::{markdown_table, run_sim_point, write_csv, ExperimentPoint};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let v: usize = arg_value(&args, "--v").and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = arg_value(&args, "--m").and_then(|s| s.parse().ok()).unwrap_or(32);
    let seed: u64 = arg_value(&args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(11);
    let budget = budget_from_args(&args);

    println!("# Model accuracy and scalability across network sizes (V = {v}, M = {m})\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for symbols in 4..=7usize {
        // scale the load with the mean distance so the relative utilisation is
        // comparable across sizes
        let probe = AnalyticalModel::new(
            ModelConfig::builder()
                .symbols(symbols)
                .virtual_channels(v)
                .message_length(m)
                .traffic_rate(0.0)
                .build(),
        )
        .solve();
        let degree = (symbols - 1) as f64;
        for &utilisation in &[0.15, 0.35] {
            let rate = utilisation * degree / (probe.mean_distance * m as f64);
            let model = AnalyticalModel::new(
                ModelConfig::builder()
                    .symbols(symbols)
                    .virtual_channels(v)
                    .message_length(m)
                    .traffic_rate(rate)
                    .build(),
            )
            .solve();
            let sim_cell = if symbols <= 5 {
                let report = run_sim_point(
                    ExperimentPoint {
                        symbols,
                        virtual_channels: v,
                        message_length: m,
                        traffic_rate: rate,
                    },
                    budget,
                    seed,
                );
                if report.saturated {
                    "saturated".to_string()
                } else {
                    format!("{:.1}", report.mean_message_latency)
                }
            } else {
                "(model only)".to_string()
            };
            let model_cell = if model.saturated {
                "saturated".to_string()
            } else {
                format!("{:.1}", model.mean_latency)
            };
            rows.push(vec![
                format!("S{symbols}"),
                format!("{:.0}%", utilisation * 100.0),
                format!("{rate:.5}"),
                model_cell.clone(),
                sim_cell.clone(),
            ]);
            csv_rows.push(format!("S{symbols},{utilisation},{rate},{model_cell},{sim_cell}"));
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "network",
                "target channel utilisation",
                "traffic rate (λ_g)",
                "model latency",
                "sim latency"
            ],
            &rows
        )
    );
    let path = experiments_dir().join("size_sweep.csv");
    match write_csv(&path, "network,utilisation,traffic_rate,model_latency,sim_latency", &csv_rows)
    {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
