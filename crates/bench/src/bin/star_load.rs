//! The `star-load` binary: replay a deterministic query stream against a
//! running `star-serve` daemon and report p50/p99 latency, throughput and
//! cache hit rate.
//!
//! ```text
//! star-load --addr HOST:PORT [--queries N] [--seed N] [--warm-fraction F]
//!           [--pipeline N] [--connections K] [--rates N] [--json PATH]
//!           [--shutdown]
//! ```
//!
//! With `--json PATH` the measurement is appended to the JSON trajectory
//! file (how `cargo xtask serve-bench` maintains `BENCH_serve.json`); with
//! `--shutdown` the daemon is asked to drain and exit afterwards.

use std::path::PathBuf;
use std::process::ExitCode;

use star_bench::loadgen::{append_trajectory, run_load, LoadConfig};

fn usage() -> &'static str {
    "usage: star-load --addr HOST:PORT [--queries N] [--seed N] [--warm-fraction F]\n\
     \x20                [--pipeline N] [--connections K] [--rates N] [--json PATH] [--shutdown]\n\
     \n\
     --addr HOST:PORT   the running star-serve daemon (required)\n\
     --queries N        total queries to issue (default 2000)\n\
     --seed N           stream seed (default 7)\n\
     --warm-fraction F  fraction of warm-mode queries in [0,1] (default 0.5)\n\
     --pipeline N       requests in flight per batch per connection (default 8)\n\
     --connections K    concurrent connections sharing the stream (default 1)\n\
     --rates N          distinct rates per configuration (default 24)\n\
     --json PATH        append the measurement to this trajectory file\n\
     --shutdown         ask the daemon to drain and exit afterwards"
}

fn parse_args(args: &[String]) -> Result<(LoadConfig, Option<PathBuf>), String> {
    let mut config = LoadConfig::default();
    let mut json: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.to_string(),
            "--queries" => {
                config.queries =
                    value("--queries")?.parse().map_err(|e| format!("--queries: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--warm-fraction" => {
                config.warm_fraction = value("--warm-fraction")?
                    .parse()
                    .map_err(|e| format!("--warm-fraction: {e}"))?;
                if !(0.0..=1.0).contains(&config.warm_fraction) {
                    return Err("--warm-fraction must be in [0, 1]".to_string());
                }
            }
            "--pipeline" => {
                config.pipeline =
                    value("--pipeline")?.parse().map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--connections" => {
                config.connections =
                    value("--connections")?.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--rates" => {
                config.rates = value("--rates")?.parse().map_err(|e| format!("--rates: {e}"))?;
            }
            "--json" => json = Some(PathBuf::from(value("--json")?)),
            "--shutdown" => config.shutdown = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if config.addr.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    Ok((config, json))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, json) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run_load(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("star-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.summary());
    if let Some(path) = json {
        let point = report.trajectory_point(&config);
        if let Err(e) = append_trajectory(&path, &point) {
            eprintln!("star-load: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("trajectory  appended to {}", path.display());
    }
    if report.errors > 0 {
        eprintln!("star-load: {} error response(s)", report.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
