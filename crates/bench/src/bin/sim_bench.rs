//! The `sim-bench` binary: the simulator flit-throughput benchmark and the
//! engine-equivalence smoke, behind `cargo xtask sim-bench` and the
//! `sim-equiv-smoke` step of `cargo xtask ci`.
//!
//! ```text
//! sim-bench [--messages N] [--seed N] [--points LIST] [--json PATH]
//! sim-bench --equiv
//! ```
//!
//! The default mode runs the pinned `light` operating point — `S5`,
//! Enhanced-NBC, `V = 6`, `M = 16`, ~10% channel utilisation — once per
//! engine ([`SimCore::Ticking`] and [`SimCore::EventDriven`]), checks the
//! two reports are byte-identical (the equivalence contract rides along on
//! every benchmark run), and reports wall-clock flits/sec per engine, the
//! event-over-ticking speedup, and the per-stage cycle-cost breakdown the
//! stage-skip counters afford (how many active cycles each pipeline stage
//! actually ran).  `--points light,moderate,heavy` sweeps the same pinned
//! scenario across several utilisations (10%/30%/45%) so the profile covers
//! the stage-skip spectrum, not just the idle-dominated end.  With
//! `--json PATH` one measurement object **per point** is appended to the
//! JSON trajectory file — how `cargo xtask sim-bench` maintains
//! `BENCH_sim.json` at the repository root.
//!
//! `--equiv` instead runs the CI smoke: a quick ticking-vs-event byte-compare
//! on every topology family (`S4`/`Q5`/`T6`/`R8`) asserting non-zero
//! stage-skip counters at light load, a parallel-replicate byte-compare
//! (`R = 3`, width 2 vs width 1), then one `S6` light-load point on the
//! event-driven default checked against the analytical model's 10%
//! light-load band.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use serde_json::Value;
use star_bench::loadgen::append_trajectory;
use star_graph::{Hypercube, Ring, StarGraph, Topology, Torus};
use star_routing::EnhancedNbc;
use star_sim::{
    ReplicateReport, ReplicateRun, SimConfig, SimCore, SimReport, StageSkips, TrafficPattern,
};
use star_workloads::{Discipline, Evaluator as _, ModelBackend, Scenario, SimBackend, SimBudget};

fn usage() -> &'static str {
    "usage: sim-bench [--messages N] [--seed N] [--points LIST] [--json PATH]\n\
     \x20      sim-bench --equiv\n\
     \n\
     --messages N   measured messages per engine in bench mode (default 20000)\n\
     --seed N       simulation seed (default 42)\n\
     --points LIST  comma-separated utilisation points to profile, from\n\
     \x20              light (10%), moderate (30%), heavy (45%); default light\n\
     --json PATH    append one measurement per point to this trajectory file\n\
     --equiv        run the engine-equivalence smoke instead of the benchmark"
}

/// One named utilisation point of the multi-point benchmark mode.  `light`
/// is the historical pinned point every committed `BENCH_sim.json` entry
/// measures, so its flits/sec stay comparable across the whole trajectory;
/// `moderate` and `heavy` profile the busier end of the stage-skip spectrum
/// (heavy sits near but below the `S5` adaptive saturation point).
#[derive(Clone, Copy, PartialEq)]
struct BenchPoint {
    name: &'static str,
    utilisation: f64,
}

const BENCH_POINTS: [BenchPoint; 3] = [
    BenchPoint { name: "light", utilisation: 0.10 },
    BenchPoint { name: "moderate", utilisation: 0.30 },
    BenchPoint { name: "heavy", utilisation: 0.45 },
];

fn bench_point(name: &str) -> Result<BenchPoint, String> {
    BENCH_POINTS
        .iter()
        .copied()
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown point `{name}` (expected light, moderate or heavy)"))
}

/// Knobs of the pinned benchmark scenario that the command line may override.
struct BenchConfig {
    messages: u64,
    seed: u64,
    points: Vec<BenchPoint>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self { messages: 20_000, seed: 42, points: vec![BENCH_POINTS[0]] }
    }
}

enum Mode {
    Bench(BenchConfig, Option<PathBuf>),
    Equiv,
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut config = BenchConfig::default();
    let mut json: Option<PathBuf> = None;
    let mut equiv = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--messages" => {
                config.messages =
                    value("--messages")?.parse().map_err(|e| format!("--messages: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--points" => {
                let list = value("--points")?;
                config.points = list
                    .split(',')
                    .map(str::trim)
                    .filter(|name| !name.is_empty())
                    .map(bench_point)
                    .collect::<Result<Vec<_>, _>>()?;
                if config.points.is_empty() {
                    return Err("--points needs at least one point".to_string());
                }
            }
            "--json" => json = Some(PathBuf::from(value("--json")?)),
            "--equiv" => equiv = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if equiv {
        if json.is_some() {
            return Err("--equiv does not write a trajectory (drop --json)".to_string());
        }
        return Ok(Mode::Equiv);
    }
    Ok(Mode::Bench(config, json))
}

/// The generation rate that targets channel utilisation `u` on `topology`
/// with `M`-flit messages (`λ_g = u·degree/(d̄·M)`).
fn rate_at_utilisation(topology: &dyn Topology, u: f64, m: usize) -> f64 {
    u * topology.degree() as f64 / (topology.mean_distance() * m as f64)
}

/// Runs the pinned benchmark scenario at one utilisation point on one
/// engine and times it.
fn timed_run(config: &BenchConfig, point: BenchPoint, core: SimCore) -> (SimReport, f64) {
    let topology: Arc<dyn Topology> = Arc::new(StarGraph::new(5));
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
    let rate = rate_at_utilisation(topology.as_ref(), point.utilisation, 16);
    let sim_config = SimConfig::builder()
        .message_length(16)
        .traffic_rate(rate)
        .warmup_cycles(2_000)
        .measured_messages(config.messages)
        .max_cycles(4_000_000)
        .seed(config.seed)
        .core(core)
        .build();
    let started = Instant::now();
    let report = ReplicateRun::new(topology, routing, sim_config, TrafficPattern::Uniform, 1)
        .run()
        .runs
        .remove(0);
    (report, started.elapsed().as_secs_f64())
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One engine's timing as a JSON object.
fn engine_point(seconds: f64, flits_per_sec: f64) -> Value {
    Value::Object(vec![
        ("seconds".to_string(), Value::from(round3(seconds))),
        ("flits_per_sec".to_string(), Value::from(flits_per_sec.round())),
    ])
}

/// The stage-skip counters as a JSON object.
fn skips_json(skips: &StageSkips) -> Value {
    Value::Object(vec![
        ("generation".to_string(), Value::from(skips.generation)),
        ("injection".to_string(), Value::from(skips.injection)),
        ("routing".to_string(), Value::from(skips.routing)),
        ("switching".to_string(), Value::from(skips.switching)),
        ("staged".to_string(), Value::from(skips.staged)),
    ])
}

/// Prints the per-stage cycle-cost breakdown the skip counters afford: of
/// the cycles where *anything* happened, how many each stage actually ran.
fn print_stage_breakdown(report: &SimReport) {
    let active = report.active_cycles;
    let skips = &report.stage_skips;
    println!("stages      active cycles {active} (of {} total)", report.cycles);
    for (stage, skipped) in [
        ("generation", skips.generation),
        ("injection", skips.injection),
        ("routing", skips.routing),
        ("switching", skips.switching),
        ("staged", skips.staged),
    ] {
        let ran = active - skipped;
        let pct = if active > 0 { ran as f64 / active as f64 * 100.0 } else { 0.0 };
        println!("  {stage:<10}  ran {ran:>10}  skipped {skipped:>10}  ({pct:5.1}% of active)");
    }
}

fn bench(config: &BenchConfig, json: Option<&PathBuf>) -> Result<(), String> {
    for (i, &point) in config.points.iter().enumerate() {
        if i > 0 {
            println!();
        }
        bench_one(config, point, json)?;
    }
    Ok(())
}

/// Benchmarks both engines at one utilisation point, prints the profile and
/// appends one trajectory object.
fn bench_one(
    config: &BenchConfig,
    point: BenchPoint,
    json: Option<&PathBuf>,
) -> Result<(), String> {
    let (ticking, ticking_secs) = timed_run(config, point, SimCore::Ticking);
    let (event, event_secs) = timed_run(config, point, SimCore::EventDriven);
    if ticking != event {
        return Err(format!(
            "engines diverged on the {} benchmark point (seed {}):\n  ticking: {ticking:?}\n  \
             event:   {event:?}",
            point.name, config.seed
        ));
    }
    if event.saturated || event.deadlock_detected {
        return Err(format!("the {} benchmark point must run below saturation", point.name));
    }
    let ticking_fps = ticking.flit_transfers as f64 / ticking_secs;
    let event_fps = event.flit_transfers as f64 / event_secs;
    let speedup = ticking_secs / event_secs;
    println!(
        "point       {} ({:.0}% util): {} / {} / V{} / M{} @ rate {:.6} (seed {})",
        point.name,
        point.utilisation * 100.0,
        event.topology,
        event.routing,
        event.virtual_channels,
        event.message_length,
        event.offered_rate,
        config.seed
    );
    println!(
        "cycles      {} ({} flit transfers, byte-identical engines)",
        event.cycles, event.flit_transfers
    );
    print_stage_breakdown(&event);
    println!("ticking     {ticking_secs:.3}s  ({ticking_fps:.0} flits/sec)");
    println!("event       {event_secs:.3}s  ({event_fps:.0} flits/sec)");
    println!("speedup     {speedup:.2}x event over ticking");
    if let Some(path) = json {
        let entry = Value::Object(vec![
            (
                "config".to_string(),
                Value::Object(vec![
                    ("topology".to_string(), Value::from(event.topology.clone())),
                    ("routing".to_string(), Value::from(event.routing.clone())),
                    ("virtual_channels".to_string(), Value::from(event.virtual_channels)),
                    ("message_length".to_string(), Value::from(event.message_length)),
                    ("point".to_string(), Value::from(point.name)),
                    ("utilisation".to_string(), Value::from(point.utilisation)),
                    ("rate".to_string(), Value::from(event.offered_rate)),
                    ("messages".to_string(), Value::from(config.messages)),
                    ("seed".to_string(), Value::from(config.seed)),
                ]),
            ),
            ("cycles".to_string(), Value::from(event.cycles)),
            ("flits".to_string(), Value::from(event.flit_transfers)),
            ("mean_latency".to_string(), Value::from(round3(event.mean_message_latency))),
            ("active_cycles".to_string(), Value::from(event.active_cycles)),
            ("stage_skips".to_string(), skips_json(&event.stage_skips)),
            ("ticking".to_string(), engine_point(ticking_secs, ticking_fps)),
            ("event".to_string(), engine_point(event_secs, event_fps)),
            ("speedup".to_string(), Value::from(round3(speedup))),
        ]);
        append_trajectory(path, &entry).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("trajectory  appended to {}", path.display());
    }
    Ok(())
}

/// Replicates per compared point in `--equiv` mode — more than one so
/// replicate-seed derivation is part of the smoke.
const EQUIV_REPLICATES: usize = 2;

/// The replicate fan-out for one quick operating point on one engine.
fn equiv_fanout(
    topology: &Arc<dyn Topology>,
    rate: f64,
    seed: u64,
    core: SimCore,
    replicates: usize,
) -> ReplicateRun {
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), 6));
    let config = SimConfig::builder()
        .message_length(16)
        .traffic_rate(rate)
        .warmup_cycles(1_000)
        .measured_messages(1_000)
        .max_cycles(200_000)
        .seed(seed)
        .core(core)
        .build();
    ReplicateRun::new(Arc::clone(topology), routing, config, TrafficPattern::Uniform, replicates)
}

/// Runs one quick operating point on one engine.
fn equiv_run(topology: &Arc<dyn Topology>, rate: f64, seed: u64, core: SimCore) -> ReplicateReport {
    equiv_fanout(topology, rate, seed, core, EQUIV_REPLICATES).run()
}

/// The CI equivalence smoke: byte-identical engines on every topology
/// family, then one larger light-load point on the event-driven default
/// cross-checked against the analytical model.
fn equiv() -> Result<(), String> {
    let started = Instant::now();
    let cases: Vec<(&str, Arc<dyn Topology>, f64, u64)> = vec![
        ("S4", Arc::new(StarGraph::new(4)), 0.010, 9101),
        ("Q5", Arc::new(Hypercube::new(5)), 0.010, 9102),
        ("T6", Arc::new(Torus::new(6)), 0.008, 9103),
        ("R8", Arc::new(Ring::new(8)), 0.010, 9104),
    ];
    for (label, topology, rate, seed) in &cases {
        let ticking = equiv_run(topology, *rate, *seed, SimCore::Ticking);
        let event = equiv_run(topology, *rate, *seed, SimCore::EventDriven);
        if ticking != event {
            return Err(format!(
                "{label}: engines diverged at rate {rate}, seed {seed}\n  ticking: \
                 {ticking:?}\n  event:   {event:?}"
            ));
        }
        if event.saturated || event.deadlock_detected {
            return Err(format!("{label}: the smoke point must run below saturation"));
        }
        // At light load most cycles have work in *some* stage but not all of
        // them, so the stage-skip counters must be present and counting;
        // all-zero skips would mean the stage-activity accounting went dead.
        for (i, run) in event.runs.iter().enumerate() {
            if run.active_cycles == 0 {
                return Err(format!("{label}: replicate {i} reports no active cycles"));
            }
            if run.stage_skips.total() == 0 {
                return Err(format!(
                    "{label}: replicate {i} reports zero stage skips at light load \
                     (active cycles {}, skip accounting looks dead)",
                    run.active_cycles
                ));
            }
        }
        println!(
            "==> sim-equiv: {label} byte-identical across engines ({EQUIV_REPLICATES} replicates, \
             {} stage skips over {} active cycles)",
            event.runs[0].stage_skips.total(),
            event.runs[0].active_cycles
        );
    }
    // parallel replicate fan-out: R = 3 across two pool workers must fold to
    // exactly the width-1 (inline) bytes
    {
        let topology: Arc<dyn Topology> = Arc::new(Ring::new(8));
        let fanout = equiv_fanout(&topology, 0.010, 9105, SimCore::EventDriven, 3);
        let serial = fanout.run_parallel(1);
        let parallel = fanout.run_parallel(2);
        if serial != parallel {
            return Err(format!(
                "R8: parallel replicate fan-out diverged from the serial fold\n  width 1: \
                 {serial:?}\n  width 2: {parallel:?}"
            ));
        }
        println!("==> sim-equiv: R8 parallel replicates (R=3, width 2) byte-identical to width 1");
    }
    // one size class above the historical validation ceiling, affordable in
    // the CI budget only because the event-driven default skips idle channels
    let scenario = Scenario::star(6)
        .with_message_length(16)
        .with_discipline(Discipline::EnhancedNbc)
        .with_seed_base(601);
    if scenario.core != SimCore::EventDriven {
        return Err("the default simulator core must be event-driven".to_string());
    }
    let rate = rate_at_utilisation(scenario.topology().as_ref(), 0.03, 16);
    let point = scenario.at(rate);
    let m = ModelBackend::new().evaluate(&point);
    let s = SimBackend::new(SimBudget::Quick).evaluate(&point);
    if m.saturated || s.saturated {
        return Err("the S6 light-load point must not saturate".to_string());
    }
    let err = (m.mean_latency - s.mean_latency).abs() / s.mean_latency;
    if err >= 0.10 {
        return Err(format!(
            "S6 light load on the event-driven default: model {} vs sim {} ({:.1}%, band 10%)",
            m.mean_latency,
            s.mean_latency,
            err * 100.0
        ));
    }
    println!(
        "==> sim-equiv: S6 event-driven vs model within the 10% band ({:.1}%), {:.1}s total",
        err * 100.0,
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match parse_args(&args) {
        Ok(mode) => mode,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match mode {
        Mode::Bench(config, json) => bench(&config, json.as_ref()),
        Mode::Equiv => equiv(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sim-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
