//! Topology-generic evaluation scenarios.
//!
//! The paper's whole evaluation is "the same operating point, answered twice"
//! — once by the analytical model and once by the flit-level simulator.  A
//! [`Scenario`] names everything both backends need to agree on (network kind
//! and size, routing discipline, virtual channels, message length, traffic
//! pattern); an [`OperatingPoint`] pins a scenario to one traffic generation
//! rate.  Every harness binary, example and test builds these instead of the
//! old star-only `ExperimentPoint`, so model and simulator stay swappable.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_core::{
    ConfigError, HypercubeConfig, HypercubeConfigError, HypercubeRouting, ModelConfig,
    RoutingDiscipline,
};
use star_graph::{Hypercube, StarGraph, Topology};
use star_routing::{DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm};
use star_sim::TrafficPattern;

/// Which network family a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NetworkKind {
    /// The star graph `S_n` (`size` is the number of symbols `n`).
    #[default]
    Star,
    /// The binary hypercube `Q_d` (`size` is the dimension `d`).
    Hypercube,
}

impl NetworkKind {
    /// Instantiates the topology of this kind at the given size.
    ///
    /// # Panics
    /// Panics if the size is out of range for the topology family.
    #[must_use]
    pub fn topology(self, size: usize) -> Arc<dyn Topology> {
        match self {
            NetworkKind::Star => Arc::new(StarGraph::new(size)),
            NetworkKind::Hypercube => Arc::new(Hypercube::new(size)),
        }
    }

    /// The conventional name of the network at the given size
    /// (`"S5"`, `"Q7"`, …).
    #[must_use]
    pub fn label(self, size: usize) -> String {
        match self {
            NetworkKind::Star => format!("S{size}"),
            NetworkKind::Hypercube => format!("Q{size}"),
        }
    }
}

/// Routing discipline of a scenario: the three schemes the analytical model
/// covers plus the deterministic minimal baseline the simulator also
/// implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Discipline {
    /// The paper's algorithm (escape levels + fully adaptive class-a
    /// channels, bonus cards).
    #[default]
    EnhancedNbc,
    /// Negative-hop with bonus cards over all `V` virtual channels.
    Nbc,
    /// Plain negative-hop.
    NHop,
    /// Deterministic minimal routing (simulator-only baseline; the analytical
    /// model does not cover it).
    Deterministic,
}

impl Discipline {
    /// All disciplines, in the order the comparison studies report them.
    pub const ALL: [Discipline; 4] =
        [Discipline::EnhancedNbc, Discipline::Nbc, Discipline::NHop, Discipline::Deterministic];

    /// The kebab-case name used on CLIs and in CSV columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Discipline::EnhancedNbc => "enhanced-nbc",
            Discipline::Nbc => "nbc",
            Discipline::NHop => "nhop",
            Discipline::Deterministic => "deterministic",
        }
    }

    /// Parses the kebab-case CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == name)
    }

    /// The analytical-model discipline, when the star model covers this
    /// scheme.
    #[must_use]
    pub fn model_discipline(self) -> Option<RoutingDiscipline> {
        match self {
            Discipline::EnhancedNbc => Some(RoutingDiscipline::EnhancedNbc),
            Discipline::Nbc => Some(RoutingDiscipline::Nbc),
            Discipline::NHop => Some(RoutingDiscipline::NHop),
            Discipline::Deterministic => None,
        }
    }

    /// The hypercube-model routing scheme for this discipline.  All four
    /// disciplines are covered: on `Q_d` the deterministic baseline (lowest
    /// profitable port first) *is* dimension-order routing, which the
    /// hypercube model evaluates with `f = 1` alternative ports per hop.
    #[must_use]
    pub fn hypercube_routing(self) -> HypercubeRouting {
        match self {
            Discipline::EnhancedNbc => HypercubeRouting::EnhancedNbc,
            Discipline::Nbc => HypercubeRouting::Nbc,
            Discipline::NHop => HypercubeRouting::NHop,
            Discipline::Deterministic => HypercubeRouting::DimensionOrder,
        }
    }

    /// Instantiates the routing algorithm for a topology.
    ///
    /// # Panics
    /// Panics if the topology cannot support the requested virtual-channel
    /// count for this discipline.
    #[must_use]
    pub fn routing(
        self,
        topology: &dyn Topology,
        virtual_channels: usize,
    ) -> Arc<dyn RoutingAlgorithm> {
        match self {
            Discipline::EnhancedNbc => {
                Arc::new(EnhancedNbc::for_topology(topology, virtual_channels))
            }
            Discipline::Nbc => Arc::new(Nbc::for_topology(topology, virtual_channels)),
            Discipline::NHop => Arc::new(NHop::for_topology(topology, virtual_channels)),
            Discipline::Deterministic => {
                Arc::new(DeterministicMinimal::for_topology(topology, virtual_channels))
            }
        }
    }
}

/// Everything an evaluation backend needs to know about an experiment except
/// the traffic rate: the network, the routing discipline, the message shape
/// and the replication policy.  Pin a rate with [`Scenario::at`] to get an
/// [`OperatingPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Network family.
    pub network: NetworkKind,
    /// Network size (`n` for `S_n`, `d` for `Q_d`).
    pub size: usize,
    /// Routing discipline.
    pub discipline: Discipline,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: usize,
    /// Destination selection pattern of the generated traffic.
    pub pattern: TrafficPattern,
    /// Number of independently seeded replicates a stochastic backend runs
    /// per operating point (a deterministic backend such as the analytical
    /// model ignores this and reports a zero-width confidence interval).
    /// `1` is still a replicate — its seed is derived from `seed_base`, not
    /// used verbatim.
    pub replicates: usize,
    /// Base seed the per-replicate seeds are deterministically derived from
    /// (`star_queueing::replicate_seed(seed_base, replicate_index)`).
    pub seed_base: u64,
}

impl Scenario {
    /// A star-graph scenario at the paper's defaults (Enhanced-Nbc, `V = 6`,
    /// `M = 32`, uniform traffic, one replicate off seed base 0).
    #[must_use]
    pub fn star(symbols: usize) -> Self {
        Self {
            network: NetworkKind::Star,
            size: symbols,
            discipline: Discipline::EnhancedNbc,
            virtual_channels: 6,
            message_length: 32,
            pattern: TrafficPattern::Uniform,
            replicates: 1,
            seed_base: 0,
        }
    }

    /// A hypercube scenario with the same defaults.
    #[must_use]
    pub fn hypercube(dims: usize) -> Self {
        Self { network: NetworkKind::Hypercube, size: dims, ..Self::star(dims) }
    }

    /// Sets the routing discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: Discipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Sets the number of virtual channels per physical channel.
    #[must_use]
    pub fn with_virtual_channels(mut self, v: usize) -> Self {
        self.virtual_channels = v;
        self
    }

    /// Sets the message length in flits.
    #[must_use]
    pub fn with_message_length(mut self, m: usize) -> Self {
        self.message_length = m;
        self
    }

    /// Sets the traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the number of independently seeded replicates per operating
    /// point.
    ///
    /// # Panics
    /// Panics if `replicates` is zero.
    #[must_use]
    pub fn with_replicates(mut self, replicates: usize) -> Self {
        assert!(replicates >= 1, "need at least one replicate");
        self.replicates = replicates;
        self
    }

    /// Sets the base seed replicate seeds are derived from.
    #[must_use]
    pub fn with_seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }

    /// The conventional network name (`"S5"`, `"Q7"`, …).
    #[must_use]
    pub fn network_label(&self) -> String {
        self.network.label(self.size)
    }

    /// A short identifier for reports:
    /// `"S5/enhanced-nbc/V6/M32"`, with an `"/R8"` suffix when more than
    /// one replicate is requested.
    #[must_use]
    pub fn label(&self) -> String {
        let replicate_suffix =
            if self.replicates > 1 { format!("/R{}", self.replicates) } else { String::new() };
        format!(
            "{}/{}/V{}/M{}{}",
            self.network_label(),
            self.discipline.name(),
            self.virtual_channels,
            self.message_length,
            replicate_suffix
        )
    }

    /// Instantiates the topology.
    ///
    /// # Panics
    /// Panics if the size is out of range for the network family.
    #[must_use]
    pub fn topology(&self) -> Arc<dyn Topology> {
        self.network.topology(self.size)
    }

    /// Instantiates the routing algorithm on this scenario's topology.
    ///
    /// # Panics
    /// Panics if the virtual-channel count is too small for the discipline on
    /// this topology.
    #[must_use]
    pub fn routing(&self) -> Arc<dyn RoutingAlgorithm> {
        self.discipline.routing(self.topology().as_ref(), self.virtual_channels)
    }

    /// The star analytical-model configuration at the given traffic rate,
    /// when the star model covers this scenario (star network, one of the
    /// three modelled disciplines, uniform traffic — the paper's
    /// assumptions).  Scenarios outside the star model's reach (hypercube,
    /// deterministic routing, non-uniform traffic) yield `Ok(None)`;
    /// hypercube scenarios are answered by
    /// [`Self::hypercube_model_config`] instead.
    ///
    /// # Errors
    /// Returns the [`ConfigError`] when the scenario is in the model's reach
    /// but its parameters are out of range.
    pub fn model_config(&self, traffic_rate: f64) -> Result<Option<ModelConfig>, ConfigError> {
        let Some(discipline) = self.discipline.model_discipline() else {
            return Ok(None);
        };
        if self.network != NetworkKind::Star || self.pattern != TrafficPattern::Uniform {
            return Ok(None);
        }
        ModelConfig::builder()
            .symbols(self.size)
            .virtual_channels(self.virtual_channels)
            .message_length(self.message_length)
            .traffic_rate(traffic_rate)
            .discipline(discipline)
            .try_build()
            .map(Some)
    }

    /// The hypercube analytical-model configuration at the given traffic
    /// rate, when the hypercube model covers this scenario (hypercube
    /// network, uniform traffic; all four disciplines map — deterministic
    /// routing is dimension-order on `Q_d`).  Star and non-uniform scenarios
    /// yield `Ok(None)`.
    ///
    /// # Errors
    /// Returns the [`HypercubeConfigError`] when the scenario is in the
    /// model's reach but its parameters are out of range (e.g. too few
    /// virtual channels for the cube's escape-level minimum).
    pub fn hypercube_model_config(
        &self,
        traffic_rate: f64,
    ) -> Result<Option<HypercubeConfig>, HypercubeConfigError> {
        if self.network != NetworkKind::Hypercube || self.pattern != TrafficPattern::Uniform {
            return Ok(None);
        }
        HypercubeConfig::builder()
            .dims(self.size)
            .virtual_channels(self.virtual_channels)
            .message_length(self.message_length)
            .traffic_rate(traffic_rate)
            .routing(self.discipline.hypercube_routing())
            .try_build()
            .map(Some)
    }

    /// Pins the scenario to one traffic generation rate.
    #[must_use]
    pub fn at(&self, traffic_rate: f64) -> OperatingPoint {
        OperatingPoint { scenario: *self, traffic_rate }
    }

    /// One operating point per rate, in order.
    #[must_use]
    pub fn sweep(&self, rates: &[f64]) -> Vec<OperatingPoint> {
        rates.iter().map(|&r| self.at(r)).collect()
    }
}

/// One scenario at one traffic generation rate — the unit both evaluation
/// backends answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The scenario being evaluated.
    pub scenario: Scenario,
    /// Traffic generation rate `λ_g` (messages/node/cycle).
    pub traffic_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_scenario_defaults_match_the_paper() {
        let s = Scenario::star(5);
        assert_eq!(s.network_label(), "S5");
        assert_eq!(s.virtual_channels, 6);
        assert_eq!(s.message_length, 32);
        assert_eq!(s.discipline, Discipline::EnhancedNbc);
        assert_eq!(s.label(), "S5/enhanced-nbc/V6/M32");
        assert_eq!(s.topology().node_count(), 120);
    }

    #[test]
    fn hypercube_scenario_builds_the_cube() {
        let s = Scenario::hypercube(7).with_message_length(64);
        assert_eq!(s.network_label(), "Q7");
        assert_eq!(s.topology().node_count(), 128);
        assert_eq!(s.message_length, 64);
        // the star model does not cover it, the hypercube model does
        assert_eq!(s.model_config(0.001), Ok(None));
        let cfg = s.hypercube_model_config(0.001).unwrap().unwrap();
        assert_eq!(cfg.dims, 7);
        assert_eq!(cfg.message_length, 64);
        assert_eq!(cfg.routing, HypercubeRouting::EnhancedNbc);
    }

    #[test]
    fn hypercube_model_config_maps_every_discipline() {
        for (discipline, routing) in [
            (Discipline::EnhancedNbc, HypercubeRouting::EnhancedNbc),
            (Discipline::Nbc, HypercubeRouting::Nbc),
            (Discipline::NHop, HypercubeRouting::NHop),
            (Discipline::Deterministic, HypercubeRouting::DimensionOrder),
        ] {
            let s = Scenario::hypercube(5).with_discipline(discipline);
            let cfg = s.hypercube_model_config(0.002).unwrap().unwrap();
            assert_eq!(cfg.routing, routing);
        }
        // star scenarios are outside the hypercube model's reach...
        assert_eq!(Scenario::star(5).hypercube_model_config(0.002), Ok(None));
        // ...and out-of-range parameters surface as errors, not None
        assert!(Scenario::hypercube(10).hypercube_model_config(0.002).is_err());
    }

    #[test]
    fn model_config_covers_modelled_disciplines_only() {
        let s = Scenario::star(5);
        let cfg = s.model_config(0.004).unwrap().unwrap();
        assert_eq!(cfg.symbols, 5);
        assert_eq!(cfg.traffic_rate, 0.004);
        assert_eq!(cfg.discipline, RoutingDiscipline::EnhancedNbc);
        let det = s.with_discipline(Discipline::Deterministic);
        assert_eq!(det.model_config(0.004), Ok(None));
        let invalid = s.with_virtual_channels(4);
        assert!(invalid.model_config(0.004).is_err());
    }

    #[test]
    fn replication_knobs_default_to_one_replicate_off_seed_zero() {
        let s = Scenario::star(5);
        assert_eq!(s.replicates, 1);
        assert_eq!(s.seed_base, 0);
        let r = s.with_replicates(8).with_seed_base(0xC0FFEE);
        assert_eq!(r.replicates, 8);
        assert_eq!(r.seed_base, 0xC0FFEE);
        // replication shows in the label only when it fans out
        assert_eq!(s.label(), "S5/enhanced-nbc/V6/M32");
        assert_eq!(r.label(), "S5/enhanced-nbc/V6/M32/R8");
        // the hypercube constructor inherits the same defaults
        assert_eq!(Scenario::hypercube(6).replicates, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = Scenario::star(5).with_replicates(0);
    }

    #[test]
    fn discipline_names_round_trip() {
        for d in Discipline::ALL {
            assert_eq!(Discipline::parse(d.name()), Some(d));
        }
        assert_eq!(Discipline::parse("xy"), None);
    }

    #[test]
    fn every_discipline_builds_routing_on_both_topologies() {
        for scenario in [Scenario::star(4), Scenario::hypercube(4)] {
            for d in Discipline::ALL {
                let routing = scenario.with_discipline(d).routing();
                assert_eq!(routing.virtual_channels(), 6);
            }
        }
    }

    #[test]
    fn sweep_produces_one_point_per_rate_in_order() {
        let s = Scenario::star(5);
        let points = s.sweep(&[0.001, 0.002, 0.003]);
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0].traffic_rate < w[1].traffic_rate));
        assert!(points.iter().all(|p| p.scenario == s));
    }
}
