//! Topology-generic evaluation scenarios.
//!
//! The paper's whole evaluation is "the same operating point, answered twice"
//! — once by the analytical model and once by the flit-level simulator.  A
//! [`Scenario`] names everything both backends need to agree on — the
//! topology **as a value** (`Arc<dyn Topology>`), routing discipline, virtual
//! channels, message length, traffic pattern — and an [`OperatingPoint`] pins
//! a scenario to one traffic generation rate.  Every harness binary, example
//! and test builds these, so model and simulator stay swappable.
//!
//! Topologies are plugged in, not enumerated: [`Scenario::on`] accepts any
//! [`Topology`] implementation, and the family constructors
//! ([`Scenario::star`], [`Scenario::hypercube`], [`Scenario::torus`],
//! [`Scenario::ring`]) are thin wrappers over it.  [`TopologyKind`] exists
//! only where a *name* must round-trip through a CLI flag
//! (`--topology star|hypercube|torus|ring`); nothing in the evaluation path
//! matches on it.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_core::{ModelDiscipline, ModelParams, ModelParamsError};
use star_graph::{Hypercube, Ring, StarGraph, Topology, Torus};
use star_routing::{DeterministicMinimal, EnhancedNbc, NHop, Nbc, RoutingAlgorithm};
use star_sim::{SimCore, TrafficPattern};

/// The topology families with a CLI name — the `--topology` flag of the
/// harness binaries parses into this.
///
/// This enum is a *naming* convenience only: scenarios carry an
/// `Arc<dyn Topology>` value ([`Scenario::on`]), so a topology outside this
/// list plugs into the whole evaluation stack without touching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The star graph `S_n` (`size` is the number of symbols `n`).
    #[default]
    Star,
    /// The binary hypercube `Q_d` (`size` is the dimension `d`).
    Hypercube,
    /// The k-ary 2-cube `T_k` (`size` is the side length `k`, even).
    Torus,
    /// The even cycle `R_k` (`size` is the node count `k`).
    Ring,
}

impl TopologyKind {
    /// Every named family, in CLI/report order.
    pub const ALL: [TopologyKind; 4] =
        [TopologyKind::Star, TopologyKind::Hypercube, TopologyKind::Torus, TopologyKind::Ring];

    /// Instantiates the topology of this family at the given size.
    ///
    /// # Panics
    /// Panics if the size is out of range for the topology family.
    #[must_use]
    pub fn topology(self, size: usize) -> Arc<dyn Topology> {
        match self {
            TopologyKind::Star => Arc::new(StarGraph::new(size)),
            TopologyKind::Hypercube => Arc::new(Hypercube::new(size)),
            TopologyKind::Torus => Arc::new(Torus::new(size)),
            TopologyKind::Ring => Arc::new(Ring::new(size)),
        }
    }

    /// The conventional name of the network at the given size
    /// (`"S5"`, `"Q7"`, `"T8"`, `"R8"`).
    #[must_use]
    pub fn label(self, size: usize) -> String {
        match self {
            TopologyKind::Star => format!("S{size}"),
            TopologyKind::Hypercube => format!("Q{size}"),
            TopologyKind::Torus => format!("T{size}"),
            TopologyKind::Ring => format!("R{size}"),
        }
    }

    /// The kebab-case name used by the `--topology` CLI flag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Star => "star",
            TopologyKind::Hypercube => "hypercube",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
        }
    }

    /// Parses the kebab-case CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The family's conventional smoke-test size (`S5`, `Q7`, `T8`, `R8`) —
    /// what a harness binary evaluates when `--topology` is given without an
    /// explicit size.
    #[must_use]
    pub fn default_size(self) -> usize {
        match self {
            TopologyKind::Star => 5,
            TopologyKind::Hypercube => 7,
            TopologyKind::Torus | TopologyKind::Ring => 8,
        }
    }

    /// A scenario on this family at the given size, with the paper's default
    /// knobs — shorthand for [`Scenario::on`]`(self.topology(size))`.
    ///
    /// # Panics
    /// Panics if the size is out of range for the topology family.
    #[must_use]
    pub fn scenario(self, size: usize) -> Scenario {
        Scenario::on(self.topology(size))
    }
}

/// The old name of [`TopologyKind`], kept for one release so downstream code
/// migrates gradually.
#[deprecated(note = "renamed to TopologyKind; scenarios now carry an Arc<dyn Topology> — \
            construct them with Scenario::on or the per-family constructors")]
pub type NetworkKind = TopologyKind;

/// Routing discipline of a scenario: the three schemes the analytical model
/// covers plus the deterministic minimal baseline the simulator also
/// implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Discipline {
    /// The paper's algorithm (escape levels + fully adaptive class-a
    /// channels, bonus cards).
    #[default]
    EnhancedNbc,
    /// Negative-hop with bonus cards over all `V` virtual channels.
    Nbc,
    /// Plain negative-hop.
    NHop,
    /// Deterministic minimal routing (the analytical model covers it on
    /// every topology except the star, where the closed form has no
    /// deterministic variant).
    Deterministic,
}

impl Discipline {
    /// All disciplines, in the order the comparison studies report them.
    pub const ALL: [Discipline; 4] =
        [Discipline::EnhancedNbc, Discipline::Nbc, Discipline::NHop, Discipline::Deterministic];

    /// The kebab-case name used on CLIs and in CSV columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Discipline::EnhancedNbc => "enhanced-nbc",
            Discipline::Nbc => "nbc",
            Discipline::NHop => "nhop",
            Discipline::Deterministic => "deterministic",
        }
    }

    /// Parses the kebab-case CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == name)
    }

    /// The unified analytical-model discipline.  All four map;
    /// [`ModelDiscipline`] itself knows which closed-form models cover which
    /// scheme (the star model skips `Deterministic`).
    #[must_use]
    pub fn model_discipline(self) -> ModelDiscipline {
        match self {
            Discipline::EnhancedNbc => ModelDiscipline::EnhancedNbc,
            Discipline::Nbc => ModelDiscipline::Nbc,
            Discipline::NHop => ModelDiscipline::NHop,
            Discipline::Deterministic => ModelDiscipline::Deterministic,
        }
    }

    /// Instantiates the routing algorithm for a topology.
    ///
    /// # Panics
    /// Panics if the topology cannot support the requested virtual-channel
    /// count for this discipline.
    #[must_use]
    pub fn routing(
        self,
        topology: &dyn Topology,
        virtual_channels: usize,
    ) -> Arc<dyn RoutingAlgorithm> {
        match self {
            Discipline::EnhancedNbc => {
                Arc::new(EnhancedNbc::for_topology(topology, virtual_channels))
            }
            Discipline::Nbc => Arc::new(Nbc::for_topology(topology, virtual_channels)),
            Discipline::NHop => Arc::new(NHop::for_topology(topology, virtual_channels)),
            Discipline::Deterministic => {
                Arc::new(DeterministicMinimal::for_topology(topology, virtual_channels))
            }
        }
    }
}

/// Everything an evaluation backend needs to know about an experiment except
/// the traffic rate: the topology (held as a shared value), the routing
/// discipline, the message shape and the replication policy.  Pin a rate with
/// [`Scenario::at`] to get an [`OperatingPoint`].
///
/// Cloning a scenario is cheap — the topology is behind an `Arc`, so clones
/// share one instance (and one neighbour table).
#[derive(Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The network, as a value.  Private so every scenario is guaranteed to
    /// hold a live topology; read it back with [`Self::topology`].
    topology: Arc<dyn Topology>,
    /// Routing discipline.
    pub discipline: Discipline,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: usize,
    /// Destination selection pattern of the generated traffic.
    pub pattern: TrafficPattern,
    /// Number of independently seeded replicates a stochastic backend runs
    /// per operating point (a deterministic backend such as the analytical
    /// model ignores this and reports a zero-width confidence interval).
    /// `1` is still a replicate — its seed is derived from `seed_base`, not
    /// used verbatim.
    pub replicates: usize,
    /// Base seed the per-replicate seeds are deterministically derived from
    /// (`star_queueing::replicate_seed(seed_base, replicate_index)`).
    pub seed_base: u64,
    /// Simulator engine the simulation backend runs (the analytical backend
    /// ignores this).  Results are engine-invariant — the equivalence suite
    /// pins both engines byte-identical — so this is a wall-clock knob, not
    /// an experimental one.
    pub core: SimCore,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("topology", &self.topology.name())
            .field("discipline", &self.discipline)
            .field("virtual_channels", &self.virtual_channels)
            .field("message_length", &self.message_length)
            .field("pattern", &self.pattern)
            .field("replicates", &self.replicates)
            .field("seed_base", &self.seed_base)
            .field("core", &self.core)
            .finish()
    }
}

impl PartialEq for Scenario {
    /// Two scenarios are equal when they describe the same experiment: the
    /// topology is compared by name (`"S5"`, `"T8"`, …), which the
    /// [`Topology`] contract makes unique per family and size.
    fn eq(&self, other: &Self) -> bool {
        self.topology.name() == other.topology.name()
            && self.discipline == other.discipline
            && self.virtual_channels == other.virtual_channels
            && self.message_length == other.message_length
            && self.pattern == other.pattern
            && self.replicates == other.replicates
            && self.seed_base == other.seed_base
            && self.core == other.core
    }
}

impl Scenario {
    /// A scenario on any topology value, at the paper's defaults
    /// (Enhanced-Nbc, `V = 6`, `M = 32`, uniform traffic, one replicate off
    /// seed base 0).  This is the primitive constructor every family
    /// shorthand delegates to — hand it anything that implements
    /// [`Topology`].
    #[must_use]
    pub fn on(topology: Arc<dyn Topology>) -> Self {
        Self {
            topology,
            discipline: Discipline::EnhancedNbc,
            virtual_channels: 6,
            message_length: 32,
            pattern: TrafficPattern::Uniform,
            replicates: 1,
            seed_base: 0,
            core: SimCore::default(),
        }
    }

    /// A star-graph scenario `S_n`.
    ///
    /// # Panics
    /// Panics if `symbols` is out of the tabled range.
    #[must_use]
    pub fn star(symbols: usize) -> Self {
        Self::on(Arc::new(StarGraph::new(symbols)))
    }

    /// A hypercube scenario `Q_d` with the same defaults.
    ///
    /// # Panics
    /// Panics if `dims` is out of range.
    #[must_use]
    pub fn hypercube(dims: usize) -> Self {
        Self::on(Arc::new(Hypercube::new(dims)))
    }

    /// A k-ary 2-cube (torus) scenario `T_k` with the same defaults.
    ///
    /// # Panics
    /// Panics unless `side` is even and at least 4.
    #[must_use]
    pub fn torus(side: usize) -> Self {
        Self::on(Arc::new(Torus::new(side)))
    }

    /// A ring scenario `R_k` with the same defaults.
    ///
    /// # Panics
    /// Panics unless `nodes` is even and at least 4.
    #[must_use]
    pub fn ring(nodes: usize) -> Self {
        Self::on(Arc::new(Ring::new(nodes)))
    }

    /// Sets the routing discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: Discipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Sets the number of virtual channels per physical channel.
    #[must_use]
    pub fn with_virtual_channels(mut self, v: usize) -> Self {
        self.virtual_channels = v;
        self
    }

    /// Sets the message length in flits.
    #[must_use]
    pub fn with_message_length(mut self, m: usize) -> Self {
        self.message_length = m;
        self
    }

    /// Sets the traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the number of independently seeded replicates per operating
    /// point.
    ///
    /// # Panics
    /// Panics if `replicates` is zero.
    #[must_use]
    pub fn with_replicates(mut self, replicates: usize) -> Self {
        assert!(replicates >= 1, "need at least one replicate");
        self.replicates = replicates;
        self
    }

    /// Sets the base seed replicate seeds are derived from.
    #[must_use]
    pub fn with_seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }

    /// Sets the simulator engine the simulation backend runs.
    #[must_use]
    pub fn with_core(mut self, core: SimCore) -> Self {
        self.core = core;
        self
    }

    /// The conventional network name (`"S5"`, `"Q7"`, `"T8"`, `"R8"`, …) —
    /// the topology's own [`Topology::name`].
    #[must_use]
    pub fn network_label(&self) -> String {
        self.topology.name()
    }

    /// A short identifier for reports:
    /// `"S5/enhanced-nbc/V6/M32"`, with an `"/R8"` suffix when more than
    /// one replicate is requested and a `"/ticking"` suffix when the legacy
    /// engine is selected (engine choice never changes results, so only the
    /// non-default is called out).
    #[must_use]
    pub fn label(&self) -> String {
        let replicate_suffix =
            if self.replicates > 1 { format!("/R{}", self.replicates) } else { String::new() };
        let core_suffix = if self.core == SimCore::Ticking {
            format!("/{}", self.core.name())
        } else {
            String::new()
        };
        format!(
            "{}/{}/V{}/M{}{}{}",
            self.network_label(),
            self.discipline.name(),
            self.virtual_channels,
            self.message_length,
            replicate_suffix,
            core_suffix
        )
    }

    /// The scenario's topology (a shared handle — cloning the `Arc` is
    /// cheap, the underlying tables are built once per scenario family).
    #[must_use]
    pub fn topology(&self) -> Arc<dyn Topology> {
        Arc::clone(&self.topology)
    }

    /// Instantiates the routing algorithm on this scenario's topology.
    ///
    /// # Panics
    /// Panics if the virtual-channel count is too small for the discipline on
    /// this topology.
    #[must_use]
    pub fn routing(&self) -> Arc<dyn RoutingAlgorithm> {
        self.discipline.routing(self.topology.as_ref(), self.virtual_channels)
    }

    /// The unified analytical-model parameters at the given traffic rate,
    /// when the model covers this scenario, validated against this
    /// scenario's topology.  One surface replaces the old per-topology
    /// `model_config` / `hypercube_model_config` pair:
    ///
    /// * `Ok(Some(params))` — the model covers the scenario; pair the
    ///   parameters with [`Self::topology`] (closed-form star/hypercube
    ///   solvers or the generic spectrum model — the backend picks).
    /// * `Ok(None)` — outside the model's reach by *kind*, not by range:
    ///   non-uniform traffic, or deterministic routing on the star graph
    ///   (the closed form has no deterministic variant and the star's
    ///   generic spectrum is reserved as the adaptive oracle).
    ///
    /// # Errors
    /// Returns the [`ModelParamsError`] when the scenario is in the model's
    /// reach but its parameters are out of range (too few virtual channels
    /// for the topology's escape-level minimum, zero-length messages, …).
    /// Star and hypercube scenarios keep their closed-form validators' exact
    /// errors.
    pub fn model_params(&self, traffic_rate: f64) -> Result<Option<ModelParams>, ModelParamsError> {
        if self.pattern != TrafficPattern::Uniform {
            return Ok(None);
        }
        let params = ModelParams {
            virtual_channels: self.virtual_channels,
            message_length: self.message_length,
            traffic_rate,
            discipline: self.discipline.model_discipline(),
        };
        let topology = self.topology.as_ref();
        if params.discipline == ModelDiscipline::Deterministic
            && topology.as_any().downcast_ref::<StarGraph>().is_some()
        {
            return Ok(None);
        }
        params.validate_for(topology).map(|()| Some(params))
    }

    /// Pins the scenario to one traffic generation rate.
    #[must_use]
    pub fn at(&self, traffic_rate: f64) -> OperatingPoint {
        OperatingPoint { scenario: self.clone(), traffic_rate }
    }

    /// One operating point per rate, in order.
    #[must_use]
    pub fn sweep(&self, rates: &[f64]) -> Vec<OperatingPoint> {
        rates.iter().map(|&r| self.at(r)).collect()
    }
}

/// One scenario at one traffic generation rate — the unit both evaluation
/// backends answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The scenario being evaluated.
    pub scenario: Scenario,
    /// Traffic generation rate `λ_g` (messages/node/cycle).
    pub traffic_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_scenario_defaults_match_the_paper() {
        let s = Scenario::star(5);
        assert_eq!(s.network_label(), "S5");
        assert_eq!(s.virtual_channels, 6);
        assert_eq!(s.message_length, 32);
        assert_eq!(s.discipline, Discipline::EnhancedNbc);
        assert_eq!(s.label(), "S5/enhanced-nbc/V6/M32");
        assert_eq!(s.topology().node_count(), 120);
    }

    #[test]
    fn family_constructors_are_thin_wrappers_over_on() {
        for (scenario, label, nodes) in [
            (Scenario::star(5), "S5", 120),
            (Scenario::hypercube(7), "Q7", 128),
            (Scenario::torus(8), "T8", 64),
            (Scenario::ring(8), "R8", 8),
        ] {
            assert_eq!(scenario.network_label(), label);
            assert_eq!(scenario.topology().node_count(), nodes);
            // the same scenario built through the primitive constructor
            let direct = Scenario::on(scenario.topology());
            assert_eq!(direct, scenario);
            assert_eq!(direct.virtual_channels, 6);
            assert_eq!(direct.message_length, 32);
        }
    }

    #[test]
    fn scenarios_share_one_topology_instance_across_clones() {
        let s = Scenario::torus(8);
        let t1 = s.topology();
        let point = s.at(0.004);
        let t2 = point.scenario.topology();
        assert!(Arc::ptr_eq(&t1, &t2), "clones must share the Arc, not rebuild tables");
    }

    #[test]
    fn topology_kind_round_trips_names_and_builds_all_families() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(kind.name()), Some(kind));
            let size = kind.default_size();
            let scenario = kind.scenario(size);
            assert_eq!(scenario.network_label(), kind.label(size));
            assert_eq!(scenario.topology().name(), kind.label(size));
        }
        assert_eq!(TopologyKind::parse("mesh"), None);
        assert_eq!(TopologyKind::Torus.label(8), "T8");
        assert_eq!(TopologyKind::Ring.default_size(), 8);
    }

    #[test]
    fn hypercube_scenario_builds_the_cube() {
        let s = Scenario::hypercube(7).with_message_length(64);
        assert_eq!(s.network_label(), "Q7");
        assert_eq!(s.topology().node_count(), 128);
        assert_eq!(s.message_length, 64);
        let params = s.model_params(0.001).unwrap().unwrap();
        assert_eq!(params.message_length, 64);
        assert_eq!(params.discipline, ModelDiscipline::EnhancedNbc);
    }

    #[test]
    fn model_params_maps_every_discipline_off_the_star() {
        for discipline in Discipline::ALL {
            for scenario in [Scenario::hypercube(5), Scenario::torus(6), Scenario::ring(8)] {
                let scenario = scenario.with_discipline(discipline);
                let params = scenario.model_params(0.002).unwrap().unwrap();
                assert_eq!(params.discipline, discipline.model_discipline());
                assert!((params.traffic_rate - 0.002).abs() < 1e-15);
            }
        }
        // out-of-range parameters surface as errors, not None — with the
        // closed-form validator's own error on the hypercube
        assert!(matches!(
            Scenario::hypercube(10).model_params(0.002),
            Err(ModelParamsError::Hypercube(_))
        ));
        // …and the generic validator's on the torus
        assert!(matches!(
            Scenario::torus(12).model_params(0.002),
            Err(ModelParamsError::TooFewVirtualChannels { .. })
        ));
    }

    #[test]
    fn model_params_covers_modelled_star_disciplines_only() {
        let s = Scenario::star(5);
        let params = s.model_params(0.004).unwrap().unwrap();
        assert_eq!(params.virtual_channels, 6);
        assert!((params.traffic_rate - 0.004).abs() < 1e-15);
        assert_eq!(params.discipline, ModelDiscipline::EnhancedNbc);
        // the closed-form star model has no deterministic variant
        let det = s.clone().with_discipline(Discipline::Deterministic);
        assert_eq!(det.model_params(0.004), Ok(None));
        // star errors come from the star validator
        let invalid = s.with_virtual_channels(4);
        assert!(matches!(invalid.model_params(0.004), Err(ModelParamsError::Star(_))));
        // non-uniform traffic is outside the model on every topology
        let hot = TrafficPattern::HotSpot { node: 0, fraction: 0.2 };
        assert_eq!(Scenario::torus(8).with_pattern(hot).model_params(0.004), Ok(None));
    }

    #[test]
    fn replication_knobs_default_to_one_replicate_off_seed_zero() {
        let s = Scenario::star(5);
        assert_eq!(s.replicates, 1);
        assert_eq!(s.seed_base, 0);
        let r = s.clone().with_replicates(8).with_seed_base(0xC0FFEE);
        assert_eq!(r.replicates, 8);
        assert_eq!(r.seed_base, 0xC0FFEE);
        // replication shows in the label only when it fans out
        assert_eq!(s.label(), "S5/enhanced-nbc/V6/M32");
        assert_eq!(r.label(), "S5/enhanced-nbc/V6/M32/R8");
        // every family constructor inherits the same defaults
        assert_eq!(Scenario::hypercube(6).replicates, 1);
        assert_eq!(Scenario::torus(6).replicates, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = Scenario::star(5).with_replicates(0);
    }

    #[test]
    fn core_defaults_to_event_driven_and_only_ticking_shows_in_the_label() {
        let s = Scenario::star(5);
        assert_eq!(s.core, SimCore::EventDriven);
        assert_eq!(s.label(), "S5/enhanced-nbc/V6/M32");
        let ticking = s.clone().with_core(SimCore::Ticking);
        assert_eq!(ticking.label(), "S5/enhanced-nbc/V6/M32/ticking");
        assert_ne!(s, ticking, "engine choice distinguishes scenarios");
        assert_eq!(ticking.clone().with_replicates(4).label(), "S5/enhanced-nbc/V6/M32/R4/ticking");
    }

    #[test]
    fn discipline_names_round_trip() {
        for d in Discipline::ALL {
            assert_eq!(Discipline::parse(d.name()), Some(d));
        }
        assert_eq!(Discipline::parse("xy"), None);
    }

    #[test]
    fn every_discipline_builds_routing_on_every_family() {
        for scenario in
            [Scenario::star(4), Scenario::hypercube(4), Scenario::torus(4), Scenario::ring(8)]
        {
            for d in Discipline::ALL {
                let routing = scenario.clone().with_discipline(d).routing();
                assert_eq!(routing.virtual_channels(), 6);
            }
        }
    }

    #[test]
    fn debug_and_equality_see_through_the_topology_arc() {
        let a = Scenario::torus(8);
        let b = Scenario::torus(8);
        let c = Scenario::torus(10);
        assert_eq!(a, b, "equal experiments compare equal across distinct Arcs");
        assert_ne!(a, c);
        assert_ne!(a, a.clone().with_virtual_channels(9));
        let debug = format!("{a:?}");
        assert!(debug.contains("\"T8\""), "debug prints the topology name: {debug}");
    }

    #[test]
    fn sweep_produces_one_point_per_rate_in_order() {
        let s = Scenario::star(5);
        let points = s.sweep(&[0.001, 0.002, 0.003]);
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0].traffic_rate < w[1].traffic_rate));
        assert!(points.iter().all(|p| p.scenario == s));
    }
}
