//! The operating points of the paper's evaluation, as [`SweepSpec`]s.
//!
//! Figure 1 of the paper plots the mean message latency of `S5` (120 nodes)
//! against the traffic generation rate for `V = 6, 9, 12` virtual channels
//! and message lengths `M = 32, 64` flits, with one curve from the analytical
//! model and one from the flit-level simulator.  [`figure1_sweeps`]
//! enumerates exactly those sweeps; feed them to a
//! [`SweepRunner`](crate::SweepRunner) with a
//! [`ModelBackend`](crate::ModelBackend) and/or a
//! [`SimBackend`](crate::SimBackend) to regenerate the figure.

use crate::scenario::Scenario;
use crate::sweep_runner::SweepSpec;

/// The six curves of the paper's Figure 1: `V ∈ {6, 9, 12}` × `M ∈ {32, 64}`
/// on `S5`, swept from light load toward saturation.  The traffic axis of the
/// published figure runs to 0.015-0.02 messages/node/cycle; the sweep uses the
/// same span with `points` samples per curve.
#[must_use]
pub fn figure1_sweeps(points: usize) -> Vec<SweepSpec> {
    assert!(points >= 2, "need at least two points per curve");
    let mut out = Vec::new();
    for &(v, label) in &[(6usize, 'a'), (9, 'b'), (12, 'c')] {
        for &m in &[32usize, 64] {
            // longer messages saturate earlier, so give them a shorter axis,
            // mirroring how the published curves bunch against saturation
            let max_rate = match (v, m) {
                (_, 64) => 0.011,
                (6, _) => 0.018,
                (9, _) => 0.020,
                _ => 0.022,
            };
            let rates: Vec<f64> =
                (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();
            out.push(SweepSpec::new(
                format!("fig1{label}-M{m}"),
                Scenario::star(5).with_virtual_channels(v).with_message_length(m),
                rates,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluator as _, ModelBackend};
    use crate::scenario::Discipline;

    #[test]
    fn figure1_has_six_curves_covering_the_paper_configurations() {
        let sweeps = figure1_sweeps(8);
        assert_eq!(sweeps.len(), 6);
        for sweep in &sweeps {
            assert_eq!(sweep.scenario.network_label(), "S5");
            assert_eq!(sweep.scenario.topology().node_count(), 120);
            assert_eq!(sweep.scenario.discipline, Discipline::EnhancedNbc);
            assert_eq!(sweep.rates.len(), 8);
            assert!([6, 9, 12].contains(&sweep.scenario.virtual_channels));
            assert!([32, 64].contains(&sweep.scenario.message_length));
            assert!(sweep.rates.windows(2).all(|w| w[1] > w[0]));
        }
        let ids: Vec<&str> = sweeps.iter().map(|s| s.id.as_str()).collect();
        assert!(ids.contains(&"fig1a-M32"));
        assert!(ids.contains(&"fig1c-M64"));
    }

    #[test]
    fn model_backend_solves_every_curve_at_its_lightest_load() {
        let backend = ModelBackend::new();
        for sweep in figure1_sweeps(4) {
            let estimate = backend.evaluate(&sweep.scenario.at(sweep.rates[0]));
            assert!(!estimate.saturated, "{} must not saturate at its lightest load", sweep.id);
            assert!(
                estimate.mean_latency > sweep.scenario.message_length as f64,
                "{} latency must exceed the message length",
                sweep.id
            );
        }
    }
}
