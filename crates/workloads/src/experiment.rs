//! Experiment definitions: the operating points of the paper's evaluation.
//!
//! Figure 1 of the paper plots the mean message latency of `S5` (120 nodes)
//! against the traffic generation rate for `V = 6, 9, 12` virtual channels and
//! message lengths `M = 32, 64` flits, with one curve from the analytical
//! model and one from the flit-level simulator.  [`figure1_experiments`]
//! enumerates exactly those operating points; [`run_model_point`] and
//! [`run_sim_point`] evaluate one point with the model and the simulator
//! respectively, so harness binaries can parallelise them as they wish.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_core::{AnalyticalModel, ModelConfig, ModelResult};
use star_graph::StarGraph;
use star_routing::EnhancedNbc;
use star_sim::{SimReport, Simulation, TrafficPattern};

use crate::budget::SimBudget;

/// One sub-figure of Figure 1: a network size, a virtual-channel count and a
/// message length, swept over traffic generation rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Experiment {
    /// Identifier used in reports (e.g. `"fig1a-M32"`).
    pub id: String,
    /// Star-graph size `n` (the paper uses `n = 5`).
    pub symbols: usize,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: usize,
    /// Traffic generation rates to evaluate.
    pub rates: Vec<f64>,
}

/// One operating point of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Star-graph size `n`.
    pub symbols: usize,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: usize,
    /// Traffic generation rate `λ_g`.
    pub traffic_rate: f64,
}

impl Figure1Experiment {
    /// The operating points of this experiment.
    #[must_use]
    pub fn points(&self) -> Vec<ExperimentPoint> {
        self.rates
            .iter()
            .map(|&traffic_rate| ExperimentPoint {
                symbols: self.symbols,
                virtual_channels: self.virtual_channels,
                message_length: self.message_length,
                traffic_rate,
            })
            .collect()
    }
}

/// The six curves of the paper's Figure 1: `V ∈ {6, 9, 12}` × `M ∈ {32, 64}`
/// on `S5`, swept from light load toward saturation.  The traffic axis of the
/// published figure runs to 0.015-0.02 messages/node/cycle; the sweep uses the
/// same span with `points` samples per curve.
#[must_use]
pub fn figure1_experiments(points: usize) -> Vec<Figure1Experiment> {
    assert!(points >= 2, "need at least two points per curve");
    let mut out = Vec::new();
    for &(v, label) in &[(6usize, 'a'), (9, 'b'), (12, 'c')] {
        for &m in &[32usize, 64] {
            // longer messages saturate earlier, so give them a shorter axis,
            // mirroring how the published curves bunch against saturation
            let max_rate = match (v, m) {
                (_, 64) => 0.011,
                (6, _) => 0.018,
                (9, _) => 0.020,
                _ => 0.022,
            };
            let rates: Vec<f64> =
                (1..=points).map(|i| max_rate * i as f64 / points as f64).collect();
            out.push(Figure1Experiment {
                id: format!("fig1{label}-M{m}"),
                symbols: 5,
                virtual_channels: v,
                message_length: m,
                rates,
            });
        }
    }
    out
}

/// Evaluates the analytical model at one operating point.
#[must_use]
pub fn run_model_point(point: ExperimentPoint) -> ModelResult {
    let config = ModelConfig::builder()
        .symbols(point.symbols)
        .virtual_channels(point.virtual_channels)
        .message_length(point.message_length)
        .traffic_rate(point.traffic_rate)
        .build();
    AnalyticalModel::new(config).solve()
}

/// Runs the flit-level simulator at one operating point with the given effort
/// budget, using Enhanced-Nbc routing and uniform traffic (the paper's
/// validation setup).
#[must_use]
pub fn run_sim_point(point: ExperimentPoint, budget: SimBudget, seed: u64) -> SimReport {
    let topology = Arc::new(StarGraph::new(point.symbols));
    let routing = Arc::new(EnhancedNbc::for_topology(topology.as_ref(), point.virtual_channels));
    let config = budget.apply(point.message_length, point.traffic_rate, seed);
    Simulation::new(topology, routing, config, TrafficPattern::Uniform).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_six_curves_covering_the_paper_configurations() {
        let experiments = figure1_experiments(8);
        assert_eq!(experiments.len(), 6);
        for exp in &experiments {
            assert_eq!(exp.symbols, 5);
            assert_eq!(exp.rates.len(), 8);
            assert!([6, 9, 12].contains(&exp.virtual_channels));
            assert!([32, 64].contains(&exp.message_length));
            assert!(exp.rates.windows(2).all(|w| w[1] > w[0]));
            assert_eq!(exp.points().len(), 8);
        }
        let ids: Vec<&str> = experiments.iter().map(|e| e.id.as_str()).collect();
        assert!(ids.contains(&"fig1a-M32"));
        assert!(ids.contains(&"fig1c-M64"));
    }

    #[test]
    fn model_point_runs_for_every_curve_at_light_load() {
        for exp in figure1_experiments(4) {
            let point = exp.points()[0];
            let result = run_model_point(point);
            assert!(!result.saturated, "{} must not saturate at its lightest load", exp.id);
            assert!(result.mean_latency > point.message_length as f64);
        }
    }

    #[test]
    fn sim_point_quick_budget_matches_model_at_light_load() {
        // One cheap end-to-end sanity check: at light load the model and the
        // simulator agree within a loose tolerance (the integration tests and
        // the benchmark harness check this more thoroughly).
        let point = ExperimentPoint {
            symbols: 4,
            virtual_channels: 6,
            message_length: 16,
            traffic_rate: 0.004,
        };
        let model = run_model_point(point);
        let sim = run_sim_point(point, SimBudget::Quick, 1);
        assert!(!model.saturated);
        assert!(!sim.saturated);
        let err = (model.mean_latency - sim.mean_message_latency).abs() / sim.mean_message_latency;
        assert!(
            err < 0.25,
            "model {} vs sim {} differ by {err}",
            model.mean_latency,
            sim.mean_message_latency
        );
    }
}
