//! Simulation effort presets.
//!
//! Regenerating the paper's figures needs long steady-state runs; tests and
//! examples need something that finishes in seconds.  A [`SimBudget`] bundles
//! the warm-up length, the number of measured messages and the cycle ceiling
//! so the two uses share all other configuration.

use serde::{Deserialize, Serialize};
use star_sim::SimConfig;

/// How much simulation effort to spend per operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimBudget {
    /// A few thousand messages — seconds per point, adequate for smoke tests
    /// and examples.
    Quick,
    /// The default used by the benchmark harness to regenerate the figures.
    Standard,
    /// Long runs for publication-quality confidence intervals.
    Thorough,
}

impl SimBudget {
    /// Warm-up cycles before measurement starts.
    #[must_use]
    pub fn warmup_cycles(self) -> u64 {
        match self {
            SimBudget::Quick => 3_000,
            SimBudget::Standard => 20_000,
            SimBudget::Thorough => 50_000,
        }
    }

    /// Number of measured messages to collect.
    #[must_use]
    pub fn measured_messages(self) -> u64 {
        match self {
            SimBudget::Quick => 5_000,
            SimBudget::Standard => 30_000,
            SimBudget::Thorough => 120_000,
        }
    }

    /// Hard cycle ceiling (reaching it marks the point as saturated).
    #[must_use]
    pub fn max_cycles(self) -> u64 {
        match self {
            SimBudget::Quick => 300_000,
            SimBudget::Standard => 1_500_000,
            SimBudget::Thorough => 6_000_000,
        }
    }

    /// Applies the budget to a simulation configuration builder, returning the
    /// completed configuration.
    #[must_use]
    pub fn apply(self, message_length: usize, traffic_rate: f64, seed: u64) -> SimConfig {
        SimConfig::builder()
            .message_length(message_length)
            .traffic_rate(traffic_rate)
            .warmup_cycles(self.warmup_cycles())
            .measured_messages(self.measured_messages())
            .max_cycles(self.max_cycles())
            .seed(seed)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_ordered() {
        assert!(SimBudget::Quick.measured_messages() < SimBudget::Standard.measured_messages());
        assert!(SimBudget::Standard.measured_messages() < SimBudget::Thorough.measured_messages());
        assert!(SimBudget::Quick.max_cycles() < SimBudget::Thorough.max_cycles());
    }

    #[test]
    fn apply_builds_a_valid_config() {
        let cfg = SimBudget::Quick.apply(32, 0.004, 9);
        assert_eq!(cfg.message_length, 32);
        assert_eq!(cfg.traffic_rate, 0.004);
        assert_eq!(cfg.warmup_cycles, 3_000);
        assert_eq!(cfg.measured_messages, 5_000);
        assert_eq!(cfg.seed, 9);
        cfg.validate();
    }
}
