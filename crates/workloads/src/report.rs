//! Report emitters: CSV, Markdown tables and quick ASCII plots.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Writes rows as a CSV file (header first), creating parent directories as
/// needed.
///
/// # Errors
/// Returns any I/O error from creating directories or writing the file.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::with_capacity(
        header.len() + rows.iter().map(String::len).sum::<usize>() + rows.len() * 2,
    );
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(row);
        out.push('\n');
    }
    fs::write(path, out)
}

/// Renders a Markdown table from a header and rows of cells.
///
/// # Panics
/// Panics if any row has a different number of cells than the header.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(out, "|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match the header");
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// A quick ASCII plot of one or more named series against a shared x axis,
/// used by the examples and the harness binaries so that latency curves can be
/// eyeballed without leaving the terminal.
///
/// Points with non-finite y values (saturated operating points) are drawn as
/// `x` at the top of the plot.
#[must_use]
pub fn ascii_plot(
    title: &str,
    x: &[f64],
    series: &[(&str, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "plot must be at least 16x4");
    assert!(!x.is_empty(), "need at least one x value");
    for (name, ys) in series {
        assert_eq!(ys.len(), x.len(), "series {name} length must match x");
    }
    let finite_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter())
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let finite_min = series
        .iter()
        .flat_map(|(_, ys)| ys.iter())
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let (lo, hi) = if finite_min.is_finite() && finite_max.is_finite() && finite_max > finite_min {
        (finite_min, finite_max)
    } else {
        (0.0, 1.0)
    };
    let x_lo = x.iter().copied().fold(f64::INFINITY, f64::min);
    let x_hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let markers = ['*', 'o', '+', '#', '@', '%'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let marker = markers[si % markers.len()];
        for (xi, &y) in ys.iter().enumerate() {
            let col = if x_hi > x_lo {
                (((x[xi] - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize
            } else {
                0
            };
            let row = if y.is_finite() {
                let frac = ((y - lo) / (hi - lo)).clamp(0.0, 1.0);
                height - 1 - (frac * (height - 1) as f64).round() as usize
            } else {
                0
            };
            grid[row.min(height - 1)][col.min(width - 1)] =
                if y.is_finite() { marker } else { 'x' };
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", markers[i % markers.len()]))
        .collect();
    let _ = writeln!(
        out,
        "  [{}]   y: {:.1} .. {:.1}   x: {:.4} .. {:.4}",
        legend.join("  "),
        lo,
        hi,
        x_lo,
        x_hi
    );
    for row in grid {
        let _ = writeln!(out, "  |{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "  +{}", "-".repeat(width));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let table = markdown_table(
            &["rate", "model", "sim"],
            &[
                vec!["0.004".into(), "40.1".into(), "41.0".into()],
                vec!["0.008".into(), "55.3".into(), "58.2".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| rate"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn markdown_table_rejects_ragged_rows() {
        let _ = markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn ascii_plot_contains_markers_and_legend() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let plot = ascii_plot(
            "latency",
            &x,
            &[("model", vec![1.0, 2.0, 4.0, f64::INFINITY]), ("sim", vec![1.1, 2.2, 4.5, 9.0])],
            40,
            10,
        );
        assert!(plot.contains("latency"));
        assert!(plot.contains("* model"));
        assert!(plot.contains("o sim"));
        assert!(plot.contains('x'), "saturated points are drawn as x");
        assert!(plot.lines().count() >= 12);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("star-workloads-test");
        let path = dir.join("nested/out.csv");
        write_csv(&path, "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_plot_handles_flat_series() {
        let plot = ascii_plot("flat", &[0.0, 1.0], &[("s", vec![5.0, 5.0])], 20, 5);
        assert!(plot.contains('*'));
    }
}
