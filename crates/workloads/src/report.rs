//! Report emitters: the unified cross-backend [`RunReport`] CSV schema,
//! the shard-aware [`ReportSink`] every harness binary writes through,
//! plain CSV writing, Markdown tables and quick ASCII plots.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use star_exec::ShardSpec;

use crate::evaluator::PointEstimate;
use crate::sweep_runner::{SweepReport, SweepSpec};

/// One row of the unified run-report schema: one backend's answer to one
/// operating point, in the same shape whichever backend produced it.
///
/// Model rows carry a single degenerate replicate with a zero-width
/// confidence interval; simulator rows carry the across-replicate mean and
/// Student-t 95% half-width.  Keeping one schema is what lets a harness
/// concatenate model and simulator rows into one CSV and diff them
/// downstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRow {
    /// Identifier of the sweep the row belongs to.
    pub sweep: String,
    /// Scenario label (`"S5/enhanced-nbc/V6/M32/R8"`).
    pub scenario: String,
    /// Backend that produced the estimate (`"model"` / `"sim"`).
    pub backend: String,
    /// Traffic generation rate `λ_g`.
    pub traffic_rate: f64,
    /// Total replicates run for the estimate (1 for the model's degenerate
    /// replicate).  On a saturated point the CI columns summarise only the
    /// subset that produced a finite measurement, which may be smaller.
    pub replicates: u64,
    /// Seed base the replicate seeds were derived from.
    pub seed_base: u64,
    /// Whether the point was declared saturated.
    pub saturated: bool,
    /// Across-replicate mean message latency (`None` beyond saturation).
    pub mean_latency: Option<f64>,
    /// Student-t 95% confidence half-width of the mean latency (0 for
    /// deterministic backends and single replicates).
    pub latency_ci95: f64,
    /// Relative half-width `ci95 / mean`.
    pub latency_rel_ci95: f64,
}

impl RunRow {
    /// Builds the row for one estimate of one sweep.
    #[must_use]
    pub fn new(sweep: &str, estimate: &PointEstimate) -> Self {
        let scenario = &estimate.point.scenario;
        Self {
            sweep: sweep.to_string(),
            scenario: scenario.label(),
            backend: estimate.backend.clone(),
            traffic_rate: estimate.point.traffic_rate,
            replicates: estimate.replicates(),
            seed_base: scenario.seed_base,
            saturated: estimate.saturated,
            mean_latency: estimate.latency(),
            latency_ci95: estimate.latency_ci95(),
            latency_rel_ci95: estimate.latency_rel_ci95(),
        }
    }

    /// The row in CSV form (empty latency field beyond saturation).
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{:.4},{:.6}",
            self.sweep,
            self.scenario,
            self.backend,
            self.traffic_rate,
            self.replicates,
            self.seed_base,
            self.saturated,
            self.mean_latency.map_or(String::new(), |l| format!("{l:.4}")),
            self.latency_ci95,
            self.latency_rel_ci95,
        )
    }
}

/// The unified report of one harness run: every (sweep, point, backend)
/// estimate flattened into [`RunRow`]s sharing one CSV schema.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// The rows, in (sweep, rate) order per contributing backend.
    pub rows: Vec<RunRow>,
}

impl RunReport {
    /// An empty report to extend incrementally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Flattens sweep reports (from any backend) into rows, appending to the
    /// existing ones — call once per backend to combine both into one CSV.
    pub fn extend_from_sweeps(&mut self, reports: &[SweepReport]) {
        for report in reports {
            self.rows.extend(report.estimates.iter().map(|e| RunRow::new(&report.id, e)));
        }
    }

    /// Builds a report from one backend's sweep reports.
    #[must_use]
    pub fn from_sweeps(reports: &[SweepReport]) -> Self {
        let mut out = Self::new();
        out.extend_from_sweeps(reports);
        out
    }

    /// The CSV header every harness binary writes.
    #[must_use]
    pub fn csv_header() -> &'static str {
        "sweep,scenario,backend,traffic_rate,replicates,seed_base,saturated,\
         mean_latency,latency_ci95,latency_rel_ci95"
    }

    /// The rows in CSV form.
    #[must_use]
    pub fn csv_rows(&self) -> Vec<String> {
        self.rows.iter().map(RunRow::to_csv_row).collect()
    }

    /// Writes the report as a CSV file, creating parent directories.
    ///
    /// # Errors
    /// Returns any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        write_csv(path, Self::csv_header(), &self.csv_rows())
    }
}

/// Accumulates a harness run's [`RunRow`]s — shard-aware — and writes the
/// CSV: the unsharded `<base>.csv` when no shard is set, or the partial
/// `<base>.shardKofN.csv` (each row prefixed with its index in the
/// unsharded CSV) that `cargo xtask merge-shards` reassembles.
///
/// The sink is fed one **pass** at a time: a backend's sweep reports
/// together with the *full* (unsharded) sweep list the pass was sharded
/// from.  From the full list it recovers each estimate's rate index, and
/// hence each row's index in the CSV an unsharded run would write — that
/// index is what makes the partials mergeable back into byte-identical
/// output (see [`star_exec::shard`]).  Without a shard the sink degrades to
/// exactly [`RunReport::extend_from_sweeps`] + [`RunReport::write_csv`].
///
/// Partial headers are stamped with a [`star_exec::RunFingerprint`] folded
/// over the *full* run description (shard count, every pass's sweep ids,
/// scenario labels, seed bases and rate grids) — identical in every shard
/// of one run, different for any other run — so `merge-shards` rejects
/// partials that were produced with different flags or from different
/// experiments.
#[derive(Debug, Clone, Default)]
pub struct ReportSink {
    shard: Option<ShardSpec>,
    report: RunReport,
    /// Per-row index in the unsharded CSV (parallel to `report.rows`).
    indices: Vec<usize>,
    /// Rows the unsharded run would have emitted across the passes so far.
    full_rows: usize,
    /// Identity of the full run, folded from every pass's description.
    fingerprint: star_exec::RunFingerprint,
}

impl ReportSink {
    /// A sink for an unsharded (`None`) or sharded run.
    #[must_use]
    pub fn new(shard: Option<ShardSpec>) -> Self {
        let mut sink = Self { shard, ..Self::default() };
        // the fingerprint covers the shard *count* but not the index, so
        // all N partials of one run stamp identically
        sink.fingerprint.add_u64(shard.map_or(0, |s| s.count as u64));
        sink
    }

    /// The rows accumulated so far (this shard's only, when sharded).
    #[must_use]
    pub fn rows(&self) -> &[RunRow] {
        &self.report.rows
    }

    /// Adds one backend pass.  `full` is the unsharded sweep list of the
    /// pass and `reports` the results actually computed — identical to
    /// `full` in shape for unsharded runs, or produced from
    /// [`crate::shard_sweeps`]`(shard, &full)` for sharded ones (one report
    /// per full sweep, covering an ordered subset of its rates).
    ///
    /// # Panics
    /// Panics if `reports` does not align with `full` (different sweep
    /// count or order, or an estimate whose rate the full sweep lacks).
    pub fn extend_pass(&mut self, full: &[SweepSpec], reports: &[SweepReport]) {
        assert_eq!(full.len(), reports.len(), "one report per full sweep");
        let mut offset = self.full_rows;
        for (spec, report) in full.iter().zip(reports) {
            assert_eq!(spec.id, report.id, "reports must align with the full sweep list");
            // fold the pass's full description — shared by every shard of
            // one run — into the run identity
            self.fingerprint.add_str(&spec.id);
            self.fingerprint.add_str(&spec.scenario.label());
            self.fingerprint.add_u64(spec.scenario.seed_base);
            for &rate in &spec.rates {
                self.fingerprint.add_f64(rate);
            }
            for (estimate, rate_index) in
                report.estimates.iter().zip(crate::sweep_runner::rate_indices(&spec.rates, report))
            {
                self.indices.push(offset + rate_index);
                self.report.rows.push(RunRow::new(&report.id, estimate));
            }
            offset += spec.rates.len();
        }
        self.full_rows = offset;
    }

    /// The output file name for a run whose unsharded CSV would be
    /// `<base>.csv`.
    #[must_use]
    pub fn file_name(&self, base: &str) -> String {
        match self.shard {
            Some(shard) => shard.file_name(base),
            None => format!("{base}.csv"),
        }
    }

    /// Writes the CSV into `dir` (the full [`RunReport`] schema, or the
    /// index-prefixed partial when sharded) and returns the path written.
    ///
    /// # Errors
    /// Returns any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, dir: &Path, base: &str) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name(base));
        match self.shard {
            None => self.report.write_csv(&path)?,
            Some(_) => {
                let indexed: Vec<(usize, String)> =
                    self.indices.iter().copied().zip(self.report.csv_rows()).collect();
                let mut fingerprint = self.fingerprint;
                fingerprint.add_str(base);
                write_csv(
                    &path,
                    &star_exec::shard::partial_header(RunReport::csv_header(), fingerprint),
                    &star_exec::shard::partial_rows(&indexed),
                )?;
            }
        }
        Ok(path)
    }
}

/// Writes rows as a CSV file (header first), creating parent directories as
/// needed.
///
/// # Errors
/// Returns any I/O error from creating directories or writing the file.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::with_capacity(
        header.len() + rows.iter().map(String::len).sum::<usize>() + rows.len() * 2,
    );
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(row);
        out.push('\n');
    }
    fs::write(path, out)
}

/// Renders a Markdown table from a header and rows of cells.
///
/// # Panics
/// Panics if any row has a different number of cells than the header.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(out, "|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match the header");
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// A quick ASCII plot of one or more named series against a shared x axis,
/// used by the examples and the harness binaries so that latency curves can be
/// eyeballed without leaving the terminal.
///
/// Points with non-finite y values (saturated operating points) are drawn as
/// `x` at the top of the plot.
#[must_use]
pub fn ascii_plot(
    title: &str,
    x: &[f64],
    series: &[(&str, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "plot must be at least 16x4");
    assert!(!x.is_empty(), "need at least one x value");
    for (name, ys) in series {
        assert_eq!(ys.len(), x.len(), "series {name} length must match x");
    }
    let finite_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter())
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let finite_min = series
        .iter()
        .flat_map(|(_, ys)| ys.iter())
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let (lo, hi) = if finite_min.is_finite() && finite_max.is_finite() && finite_max > finite_min {
        (finite_min, finite_max)
    } else {
        (0.0, 1.0)
    };
    let x_lo = x.iter().copied().fold(f64::INFINITY, f64::min);
    let x_hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let markers = ['*', 'o', '+', '#', '@', '%'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let marker = markers[si % markers.len()];
        for (xi, &y) in ys.iter().enumerate() {
            let col = if x_hi > x_lo {
                (((x[xi] - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize
            } else {
                0
            };
            let row = if y.is_finite() {
                let frac = ((y - lo) / (hi - lo)).clamp(0.0, 1.0);
                height - 1 - (frac * (height - 1) as f64).round() as usize
            } else {
                0
            };
            grid[row.min(height - 1)][col.min(width - 1)] =
                if y.is_finite() { marker } else { 'x' };
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", markers[i % markers.len()]))
        .collect();
    let _ = writeln!(
        out,
        "  [{}]   y: {:.1} .. {:.1}   x: {:.4} .. {:.4}",
        legend.join("  "),
        lo,
        hi,
        x_lo,
        x_hi
    );
    for row in grid {
        let _ = writeln!(out, "  |{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "  +{}", "-".repeat(width));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let table = markdown_table(
            &["rate", "model", "sim"],
            &[
                vec!["0.004".into(), "40.1".into(), "41.0".into()],
                vec!["0.008".into(), "55.3".into(), "58.2".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| rate"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn markdown_table_rejects_ragged_rows() {
        let _ = markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn ascii_plot_contains_markers_and_legend() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let plot = ascii_plot(
            "latency",
            &x,
            &[("model", vec![1.0, 2.0, 4.0, f64::INFINITY]), ("sim", vec![1.1, 2.2, 4.5, 9.0])],
            40,
            10,
        );
        assert!(plot.contains("latency"));
        assert!(plot.contains("* model"));
        assert!(plot.contains("o sim"));
        assert!(plot.contains('x'), "saturated points are drawn as x");
        assert!(plot.lines().count() >= 12);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("star-workloads-test");
        let path = dir.join("nested/out.csv");
        write_csv(&path, "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_plot_handles_flat_series() {
        let plot = ascii_plot("flat", &[0.0, 1.0], &[("s", vec![5.0, 5.0])], 20, 5);
        assert!(plot.contains('*'));
    }

    #[test]
    fn sharded_partials_merge_into_the_unsharded_csv() {
        use crate::evaluator::{ModelBackend, SimBackend};
        use crate::scenario::Scenario;
        use crate::sweep_runner::{SweepRunner, SweepSpec};
        use crate::SimBudget;

        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(3);
        let full = vec![
            SweepSpec::new("a", scenario.clone(), vec![0.002, 0.004]),
            SweepSpec::new("b", scenario.with_virtual_channels(9), vec![0.002, 0.004]),
        ];
        let runner = SweepRunner::with_threads(2);
        let model = ModelBackend::new();
        let sim = SimBackend::new(SimBudget::Quick);
        let dir = std::env::temp_dir().join("star-workloads-shard-roundtrip");

        // the unsharded reference: a model pass and a sim pass
        let mut reference = ReportSink::new(None);
        reference.extend_pass(&full, &runner.run_pass(&model, None, &full));
        reference.extend_pass(&full, &runner.run_pass(&sim, None, &full));
        assert_eq!(reference.rows().len(), 8);
        let ref_path = reference.write_csv(&dir, "roundtrip").unwrap();
        assert!(ref_path.ends_with("roundtrip.csv"));

        // three shards of the same run, each writing a partial CSV
        let partials: Vec<String> = (1..=3)
            .map(|k| {
                let shard = star_exec::ShardSpec::parse(&format!("{k}/3")).unwrap();
                let mut sink = ReportSink::new(Some(shard));
                sink.extend_pass(&full, &runner.run_pass(&model, Some(shard), &full));
                sink.extend_pass(&full, &runner.run_pass(&sim, Some(shard), &full));
                let path = sink.write_csv(&dir, "roundtrip").unwrap();
                assert!(path.to_string_lossy().contains(&format!("shard{k}of3")));
                std::fs::read_to_string(path).unwrap()
            })
            .collect();

        let merged = star_exec::merge_shard_csvs(&partials).unwrap();
        assert_eq!(
            merged,
            std::fs::read_to_string(&ref_path).unwrap(),
            "merged shards must reproduce the unsharded CSV byte for byte"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_report_shares_one_schema_across_backends() {
        use crate::evaluator::{ModelBackend, SimBackend};
        use crate::scenario::Scenario;
        use crate::sweep_runner::{SweepRunner, SweepSpec};
        use crate::SimBudget;

        let scenario =
            Scenario::star(4).with_message_length(16).with_replicates(2).with_seed_base(3);
        let sweep = SweepSpec::new("s4", scenario, vec![0.003]);
        let runner = SweepRunner::with_threads(1);
        let mut report = RunReport::new();
        report.extend_from_sweeps(&[runner.run_one(&ModelBackend::new(), &sweep)]);
        report.extend_from_sweeps(&[runner.run_one(&SimBackend::new(SimBudget::Quick), &sweep)]);

        assert_eq!(report.rows.len(), 2);
        let (model, sim) = (&report.rows[0], &report.rows[1]);
        assert_eq!(model.backend, "model");
        assert_eq!(sim.backend, "sim");
        // one schema: the model row is a degenerate replicate with zero CI
        assert_eq!(model.replicates, 1);
        assert_eq!(model.latency_ci95, 0.0);
        assert_eq!(sim.replicates, 2);
        assert!(sim.latency_ci95 > 0.0);
        assert_eq!(model.scenario, sim.scenario);
        // every row has the header's field count
        let fields = RunReport::csv_header().split(',').count();
        for row in report.csv_rows() {
            assert_eq!(row.split(',').count(), fields, "row {row}");
        }
        // a saturated model point leaves the latency field empty
        let sat = runner.run_one(
            &ModelBackend::new(),
            &SweepSpec::new("sat", Scenario::star(4).with_message_length(16), vec![0.5]),
        );
        let sat_row = RunRow::new("sat", &sat.estimates[0]);
        assert!(sat_row.saturated);
        assert!(sat_row.to_csv_row().contains(",true,,"));
    }
}
