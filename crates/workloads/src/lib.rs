//! # star-workloads
//!
//! The unified evaluation layer of the star-wormhole workspace:
//!
//! * [`scenario`] — topology-generic [`Scenario`]/[`OperatingPoint`] types
//!   naming what both evaluation backends must agree on (network kind and
//!   size, routing discipline, `V`, `M`, traffic pattern, rate);
//! * [`evaluator`] — the [`Evaluator`] trait with its common
//!   [`PointEstimate`] output, implemented by the analytical model
//!   ([`ModelBackend`], warm-started across sweeps) and the flit-level
//!   simulator ([`SimBackend`]), so any harness can swap backends or run
//!   both and diff them;
//! * [`sweep_runner`] — the [`SweepRunner`] that owns the sweep loop every
//!   binary used to hand-roll, sharding independent points/sweeps across
//!   scoped threads with deterministic output order;
//! * [`experiment`] — the paper's Figure-1 sweeps as [`SweepSpec`]s;
//! * [`budget`] — simulation effort presets (quick smoke runs for CI,
//!   full-fidelity runs for regenerating the figures);
//! * [`report`] — CSV / Markdown / ASCII-plot emitters used by the benchmark
//!   harness binaries and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod evaluator;
pub mod experiment;
pub mod report;
pub mod scenario;
pub mod sweep_runner;

pub use budget::SimBudget;
pub use evaluator::{EstimateDetail, Evaluator, ModelBackend, PointEstimate, SimBackend};
pub use experiment::figure1_sweeps;
pub use report::{ascii_plot, markdown_table, write_csv};
pub use scenario::{Discipline, NetworkKind, OperatingPoint, Scenario};
pub use sweep_runner::{SweepReport, SweepRunner, SweepSpec};
