//! # star-workloads
//!
//! The unified evaluation layer of the star-wormhole workspace:
//!
//! * [`scenario`] — topology-generic [`Scenario`]/[`OperatingPoint`] types
//!   naming what both evaluation backends must agree on (the topology as an
//!   `Arc<dyn Topology>` value, routing discipline, `V`, `M`, traffic
//!   pattern, rate, and the replication policy: `replicates` × `seed_base`),
//!   plus the [`TopologyKind`] names the `--topology` CLI flag parses into;
//! * [`evaluator`] — the [`Evaluator`] trait with its common
//!   [`PointEstimate`] output, implemented by the analytical model
//!   ([`ModelBackend`], covering star **and** hypercube scenarios,
//!   warm-started across sweeps) and the flit-level simulator
//!   ([`SimBackend`], fanning each point out to independently seeded
//!   replicates, optionally until a [`CiTarget`] is met), so any harness
//!   can swap backends or run both and diff them;
//! * [`sweep_runner`] — the [`SweepRunner`] that owns the sweep loop every
//!   binary used to hand-roll, sharding independent (point × replicate)
//!   work items across the persistent workers of the shared
//!   [`star_exec::ExecPool`] with deterministic output order, plus
//!   [`shard_sweeps`] for slicing one run across processes (`--shard K/N`);
//! * [`experiment`] — the paper's Figure-1 sweeps as [`SweepSpec`]s;
//! * [`budget`] — simulation effort presets (quick smoke runs for CI,
//!   full-fidelity runs for regenerating the figures);
//! * [`report`] — the unified cross-backend [`RunReport`] CSV schema, the
//!   shard-aware [`ReportSink`] the harness binaries write through, plus
//!   CSV / Markdown / ASCII-plot emitters used by the benchmark harness
//!   binaries and the examples.
//!
//! ## The evaluation contract
//!
//! Everything in this crate revolves around one pipeline —
//! `Scenario` → `OperatingPoint` → `Evaluator` → `PointEstimate` — and the
//! guarantees each stage makes:
//!
//! * **Scenario totality.**  A [`Scenario`] is cheap-to-clone data around a
//!   shared topology handle (`Arc<dyn Topology>`): constructing one builds
//!   the topology's tables once, but never validates the *pairing* of
//!   topology and knobs, so harnesses can describe sweeps they may never
//!   run.  Validation happens when a backend is asked:
//!   [`Evaluator::supports`] answers cheaply (via
//!   [`Scenario::model_params`]) and [`Evaluator::evaluate`] may panic on
//!   scenarios the backend declared unsupported.
//! * **Replicate semantics.**  A stochastic backend answers one point as
//!   the aggregate of [`Scenario::replicates`] independent replications,
//!   replicate `i` seeded with
//!   `star_queueing::replicate_seed(scenario.seed_base, i)` — a pure,
//!   platform-independent derivation, so replicate `i` is the same
//!   simulation wherever and whenever it runs.  Every estimate carries the
//!   across-replicate mean and Student-t 95% confidence interval
//!   ([`PointEstimate::latency_stats`]); deterministic backends contribute
//!   a single degenerate replicate with a zero-width interval, so one
//!   report schema ([`RunReport`]) covers both.  A point is saturated as
//!   soon as any replicate saturates.
//!
//!   ```
//!   use star_workloads::{Evaluator, SimBackend, SimBudget, Scenario};
//!
//!   // 4 independently seeded replicates of one operating point, folded
//!   // into a mean ± Student-t 95% confidence interval
//!   let scenario = Scenario::star(4)
//!       .with_message_length(16)
//!       .with_replicates(4)
//!       .with_seed_base(7);
//!   let estimate = SimBackend::new(SimBudget::Quick).evaluate(&scenario.at(0.003));
//!   assert_eq!(estimate.replicates(), 4);
//!   assert!(estimate.latency_ci95() > 0.0);
//!   assert!(estimate.latency_rel_ci95() < 0.2, "4 seeds agree to well under 20%");
//!   println!("latency = {}", estimate.latency_stats.pretty()); // e.g. "26.2 ± 0.4"
//!   ```
//! * **Determinism.**  Both shipped backends are referentially transparent:
//!   the model is closed-form plus a deterministic fixed-point iteration,
//!   and the simulator derives every random stream from the scenario's seed
//!   base, so the same [`OperatingPoint`] always returns the same
//!   [`PointEstimate`], bit for bit.  The [`SweepRunner`] preserves this
//!   end-to-end: reports come back grouped by sweep in input order with one
//!   estimate per rate in rate order, **byte-identical for any
//!   `--threads` value** (work units are computed independently of
//!   scheduling, reassembled by index, and replicate groups are folded in
//!   replicate order).
//! * **Warm-start semantics.**  [`ModelBackend`] chains each rate's
//!   fixed-point seed from the previous rate of the *same sweep*
//!   ([`Evaluator::chains_rates`]), on both topologies.  This is an
//!   *iteration-count* optimisation, never an *answer* change: warm and
//!   cold solves agree to solver tolerance (1e-9 relative latency), and a
//!   saturated point yields an unusable seed that the next rate ignores in
//!   favour of a cold start.  The [`SweepRunner`] respects the chain by
//!   sharding chaining backends at sweep granularity (so a sweep's rates
//!   never split across workers) and independent backends at
//!   (point × replicate) granularity (so one heavy replicated point still
//!   fills every core); backends with a dynamic replicate count (adaptive
//!   [`CiTarget`] stopping) shard at point granularity.
//! * **`--threads` behaviour.**  Every harness binary forwards `--threads N`
//!   to [`SweepRunner::with_threads`]; `0` (the default) means all available
//!   parallelism.  Thread count affects wall-clock only, never output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod evaluator;
pub mod experiment;
pub mod report;
pub mod scenario;
pub mod sweep_runner;
pub mod wire;

pub use budget::SimBudget;
pub use evaluator::{
    CiTarget, EstimateDetail, Evaluator, ModelBackend, PointEstimate, ScenarioSpectrum, SimBackend,
};
pub use experiment::figure1_sweeps;
pub use report::{ascii_plot, markdown_table, write_csv, ReportSink, RunReport, RunRow};
#[allow(deprecated)]
pub use scenario::NetworkKind;
pub use scenario::{Discipline, OperatingPoint, Scenario, TopologyKind};
pub use star_exec::{ExecPool, ShardSpec};
pub use star_queueing::ReplicateStats;
pub use star_sim::SimCore;
pub use sweep_runner::{
    rate_indices, retain_shard, shard_sweeps, SweepReport, SweepRunner, SweepSpec,
};
pub use wire::{
    default_config_pool, encode_estimate, load_rate_grid, model_saturation_rate,
    scenario_fingerprint, WireError, WireScenario,
};
