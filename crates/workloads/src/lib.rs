//! # star-workloads
//!
//! The unified evaluation layer of the star-wormhole workspace:
//!
//! * [`scenario`] — topology-generic [`Scenario`]/[`OperatingPoint`] types
//!   naming what both evaluation backends must agree on (network kind and
//!   size, routing discipline, `V`, `M`, traffic pattern, rate);
//! * [`evaluator`] — the [`Evaluator`] trait with its common
//!   [`PointEstimate`] output, implemented by the analytical model
//!   ([`ModelBackend`], covering star **and** hypercube scenarios,
//!   warm-started across sweeps) and the flit-level simulator
//!   ([`SimBackend`]), so any harness can swap backends or run both and
//!   diff them;
//! * [`sweep_runner`] — the [`SweepRunner`] that owns the sweep loop every
//!   binary used to hand-roll, sharding independent points/sweeps across
//!   scoped threads with deterministic output order;
//! * [`experiment`] — the paper's Figure-1 sweeps as [`SweepSpec`]s;
//! * [`budget`] — simulation effort presets (quick smoke runs for CI,
//!   full-fidelity runs for regenerating the figures);
//! * [`report`] — CSV / Markdown / ASCII-plot emitters used by the benchmark
//!   harness binaries and the examples.
//!
//! ## The evaluation contract
//!
//! Everything in this crate revolves around one pipeline —
//! `Scenario` → `OperatingPoint` → `Evaluator` → `PointEstimate` — and the
//! guarantees each stage makes:
//!
//! * **Scenario totality.**  A [`Scenario`] is pure data (16 bytes of
//!   `Copy`): constructing one never validates anything, so harnesses can
//!   describe sweeps they may never run.  Validation happens when a backend
//!   is asked: [`Evaluator::supports`] answers cheaply and
//!   [`Evaluator::evaluate`] may panic on scenarios the backend declared
//!   unsupported.
//! * **Determinism.**  Both shipped backends are referentially transparent:
//!   the model is closed-form plus a deterministic fixed-point iteration,
//!   and the simulator derives every random stream from the seed in
//!   [`SimBackend`], so the same [`OperatingPoint`] always returns the same
//!   [`PointEstimate`], bit for bit.  The [`SweepRunner`] preserves this
//!   end-to-end: reports come back grouped by sweep in input order with one
//!   estimate per rate in rate order, **byte-identical for any
//!   `--threads` value** (work units are computed independently of
//!   scheduling and reassembled by index).
//! * **Warm-start semantics.**  [`ModelBackend`] chains each rate's
//!   fixed-point seed from the previous rate of the *same sweep*
//!   ([`Evaluator::chains_rates`]), on both topologies.  This is an
//!   *iteration-count* optimisation, never an *answer* change: warm and
//!   cold solves agree to solver tolerance (1e-9 relative latency), and a
//!   saturated point yields an unusable seed that the next rate ignores in
//!   favour of a cold start.  The [`SweepRunner`] respects the chain by
//!   sharding chaining backends at sweep granularity (so a sweep's rates
//!   never split across workers) and independent backends at point
//!   granularity (so one slow curve still fills every core).
//! * **`--threads` behaviour.**  Every harness binary forwards `--threads N`
//!   to [`SweepRunner::with_threads`]; `0` (the default) means all available
//!   parallelism.  Thread count affects wall-clock only, never output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod evaluator;
pub mod experiment;
pub mod report;
pub mod scenario;
pub mod sweep_runner;

pub use budget::SimBudget;
pub use evaluator::{EstimateDetail, Evaluator, ModelBackend, PointEstimate, SimBackend};
pub use experiment::figure1_sweeps;
pub use report::{ascii_plot, markdown_table, write_csv};
pub use scenario::{Discipline, NetworkKind, OperatingPoint, Scenario};
pub use sweep_runner::{SweepReport, SweepRunner, SweepSpec};
