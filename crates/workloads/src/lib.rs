//! # star-workloads
//!
//! Experiment definitions and report emitters for the star-wormhole
//! workspace:
//!
//! * [`experiment`] — the operating points of the paper's Figure 1 (and the
//!   extension studies listed in DESIGN.md) plus runners that evaluate the
//!   analytical model and the flit-level simulator at each point;
//! * [`budget`] — simulation effort presets (quick smoke runs for CI,
//!   full-fidelity runs for regenerating the figures);
//! * [`report`] — CSV / Markdown / ASCII-plot emitters used by the benchmark
//!   harness binaries and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod experiment;
pub mod report;

pub use budget::SimBudget;
pub use experiment::{
    figure1_experiments, run_model_point, run_sim_point, ExperimentPoint, Figure1Experiment,
};
pub use report::{ascii_plot, markdown_table, write_csv};
