//! The unified evaluation API: one [`Evaluator`] trait answered by both the
//! analytical model and the flit-level simulator.
//!
//! Both backends take an [`OperatingPoint`] and return a [`PointEstimate`]
//! with the same headline quantities (mean message latency and a saturation
//! flag) plus backend-specific diagnostics, so any harness can swap backends
//! — or run both and diff them, which is the paper's entire validation
//! methodology.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_core::{
    AnalyticalModel, DestinationSpectrum, HypercubeModel, HypercubeResult, HypercubeSpectrum,
    ModelResult,
};
use star_sim::{SimReport, Simulation};

use crate::budget::SimBudget;
use crate::scenario::{NetworkKind, OperatingPoint, Scenario};

/// Backend-specific diagnostics attached to a [`PointEstimate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EstimateDetail {
    /// The full star analytical-model result (fixed-point iterations,
    /// multiplexing degree, waiting times, …).
    Model(ModelResult),
    /// The full hypercube analytical-model result (same quantities, `Q_d`
    /// configuration).
    HypercubeModel(HypercubeResult),
    /// The full simulation report (cycles, confidence interval, observed
    /// multiplexing, …).
    Sim(Box<SimReport>),
}

/// What an [`Evaluator`] answers for one operating point: the common headline
/// quantities plus the backend's full diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointEstimate {
    /// The operating point that was evaluated.
    pub point: OperatingPoint,
    /// Name of the backend that produced the estimate (`"model"` / `"sim"`).
    pub backend: String,
    /// Whether the backend declared the point beyond saturation.
    pub saturated: bool,
    /// Mean message latency in cycles (infinite when saturated).
    pub mean_latency: f64,
    /// Backend diagnostics (solve iterations or simulation statistics).
    pub detail: EstimateDetail,
}

impl PointEstimate {
    /// The mean latency when the point is below saturation.
    #[must_use]
    pub fn latency(&self) -> Option<f64> {
        (!self.saturated).then_some(self.mean_latency)
    }

    /// The star analytical-model result, if this estimate came from the
    /// model on a star scenario.
    #[must_use]
    pub fn model_result(&self) -> Option<&ModelResult> {
        match &self.detail {
            EstimateDetail::Model(r) => Some(r),
            _ => None,
        }
    }

    /// The hypercube analytical-model result, if this estimate came from the
    /// model on a hypercube scenario.
    #[must_use]
    pub fn hypercube_result(&self) -> Option<&HypercubeResult> {
        match &self.detail {
            EstimateDetail::HypercubeModel(r) => Some(r),
            _ => None,
        }
    }

    /// The simulation report, if this estimate came from the simulator.
    #[must_use]
    pub fn sim_report(&self) -> Option<&SimReport> {
        match &self.detail {
            EstimateDetail::Sim(r) => Some(r),
            _ => None,
        }
    }

    /// Fixed-point iterations spent (model estimates only, either topology).
    #[must_use]
    pub fn iterations(&self) -> Option<usize> {
        match &self.detail {
            EstimateDetail::Model(r) => Some(r.iterations),
            EstimateDetail::HypercubeModel(r) => Some(r.iterations),
            EstimateDetail::Sim(_) => None,
        }
    }

    /// The latency as a plottable value: infinite when saturated.
    #[must_use]
    pub fn latency_or_infinity(&self) -> f64 {
        self.latency().unwrap_or(f64::INFINITY)
    }

    /// Formats the latency for tables (`"saturated"` beyond saturation).
    #[must_use]
    pub fn latency_cell(&self) -> String {
        self.latency().map_or_else(|| "saturated".to_string(), |l| format!("{l:.1}"))
    }
}

/// A backend that can answer operating points: the analytical model
/// ([`ModelBackend`], covering both the star and the hypercube), the
/// flit-level simulator ([`SimBackend`]), or anything else that can estimate
/// a latency (future: a learned surrogate, a remote service).
///
/// Implementations must be [`Sync`] so a [`crate::SweepRunner`] can shard
/// points across threads.
pub trait Evaluator: Sync {
    /// Short backend name used in reports (`"model"`, `"sim"`).
    fn name(&self) -> &'static str;

    /// Whether this backend can evaluate the scenario at all.
    fn supports(&self, scenario: &Scenario) -> bool;

    /// Evaluates one operating point.
    ///
    /// # Panics
    /// May panic if [`Self::supports`] is false for the scenario or its
    /// parameters are out of range.
    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate;

    /// Evaluates one scenario across a whole rate sweep.  The default runs
    /// [`Self::evaluate`] independently per rate; backends with useful state
    /// to carry between rates (the model's warm-started fixed point)
    /// override it.
    fn evaluate_sweep(&self, scenario: &Scenario, rates: &[f64]) -> Vec<PointEstimate> {
        rates.iter().map(|&r| self.evaluate(&scenario.at(r))).collect()
    }

    /// Whether consecutive rates of one sweep must stay on one worker because
    /// [`Self::evaluate_sweep`] chains state between them.  A
    /// [`crate::SweepRunner`] shards whole sweeps (not points) across threads
    /// when this is true, keeping results identical for any thread count.
    fn chains_rates(&self) -> bool {
        false
    }
}

/// The topology spectrum a model sweep shares across its rates: the star's
/// cycle-type destination spectrum or the hypercube's Hamming traversal
/// spectrum, behind one `Arc` so threads and rates reuse one allocation.
enum ModelSpectrum {
    Star(Arc<DestinationSpectrum>),
    Hypercube(Arc<HypercubeSpectrum>),
}

impl ModelSpectrum {
    fn for_scenario(scenario: &Scenario) -> Self {
        match scenario.network {
            NetworkKind::Star => Self::Star(Arc::new(DestinationSpectrum::new(scenario.size))),
            NetworkKind::Hypercube => {
                Self::Hypercube(Arc::new(HypercubeSpectrum::new(scenario.size)))
            }
        }
    }
}

/// The analytical model as an [`Evaluator`]: microseconds per point.  Covers
/// star networks with the three modelled disciplines and hypercube networks
/// with all four (deterministic routing on `Q_d` is dimension-order), under
/// uniform traffic.
///
/// ```
/// use star_workloads::{Evaluator, ModelBackend, Scenario};
///
/// let backend = ModelBackend::new();
/// // the same backend answers both topologies, model-only — this is what
/// // lets the star-vs-hypercube comparison run at S6/Q10 and S7/Q13 scale,
/// // far beyond the flit-level simulator's reach
/// let star = backend.evaluate(&Scenario::star(5).at(0.004));
/// let cube = backend.evaluate(&Scenario::hypercube(7).at(0.004));
/// assert!(!star.saturated && !cube.saturated);
/// assert!(star.model_result().is_some());
/// assert!(cube.hypercube_result().is_some());
/// // both are latency estimates above their zero-load bound M + d̄
/// assert!(star.mean_latency > 32.0);
/// assert!(cube.mean_latency > 32.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModelBackend {
    /// Warm-start each rate of a sweep from the previous rate's converged
    /// fixed point (on by default; matches cold starts to solver tolerance).
    pub warm_start: bool,
}

impl Default for ModelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBackend {
    /// A warm-starting model backend (the default).
    #[must_use]
    pub fn new() -> Self {
        Self { warm_start: true }
    }

    /// A backend that solves every rate from the cold zero-load state
    /// (for iteration-count comparisons and benchmarks).
    #[must_use]
    pub fn cold() -> Self {
        Self { warm_start: false }
    }

    fn estimate(
        &self,
        point: &OperatingPoint,
        spectrum: &ModelSpectrum,
        warm_state: &[f64],
    ) -> PointEstimate {
        let scenario = &point.scenario;
        let (saturated, mean_latency, detail) = match spectrum {
            ModelSpectrum::Star(spectrum) => {
                let config = scenario
                    .model_config(point.traffic_rate)
                    .unwrap_or_else(|e| panic!("invalid model scenario {}: {e}", scenario.label()))
                    .unwrap_or_else(|| panic!("{}", Self::unsupported_message(scenario)));
                let result = AnalyticalModel::with_spectrum(config, Arc::clone(spectrum))
                    .solve_from(warm_state);
                (result.saturated, result.mean_latency, EstimateDetail::Model(result))
            }
            ModelSpectrum::Hypercube(spectrum) => {
                let config = scenario
                    .hypercube_model_config(point.traffic_rate)
                    .unwrap_or_else(|e| panic!("invalid model scenario {}: {e}", scenario.label()))
                    .unwrap_or_else(|| panic!("{}", Self::unsupported_message(scenario)));
                let result = HypercubeModel::with_spectrum(config, Arc::clone(spectrum))
                    .solve_from(warm_state);
                (result.saturated, result.mean_latency, EstimateDetail::HypercubeModel(result))
            }
        };
        PointEstimate {
            point: *point,
            backend: self.name().to_string(),
            saturated,
            mean_latency,
            detail,
        }
    }

    fn unsupported_message(scenario: &Scenario) -> String {
        format!(
            "the analytical model does not cover scenario {} \
             (star: enhanced-nbc/nbc/nhop; hypercube: any discipline; \
             uniform traffic only)",
            scenario.label()
        )
    }

    /// The converged mean network latency an estimate contributes as the next
    /// rate's warm-start seed (either topology).
    fn warm_seed(estimate: &PointEstimate) -> Option<f64> {
        match &estimate.detail {
            // saturated points leave a non-finite seed, which solve_from
            // ignores in favour of the cold start
            EstimateDetail::Model(r) => Some(r.mean_network_latency),
            EstimateDetail::HypercubeModel(r) => Some(r.mean_network_latency),
            EstimateDetail::Sim(_) => None,
        }
    }
}

impl Evaluator for ModelBackend {
    fn name(&self) -> &'static str {
        "model"
    }

    fn supports(&self, scenario: &Scenario) -> bool {
        match scenario.network {
            NetworkKind::Star => matches!(scenario.model_config(0.0), Ok(Some(_))),
            NetworkKind::Hypercube => {
                matches!(scenario.hypercube_model_config(0.0), Ok(Some(_)))
            }
        }
    }

    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        self.estimate(point, &ModelSpectrum::for_scenario(&point.scenario), &[])
    }

    fn evaluate_sweep(&self, scenario: &Scenario, rates: &[f64]) -> Vec<PointEstimate> {
        let spectrum = ModelSpectrum::for_scenario(scenario);
        let mut warm_state: Vec<f64> = Vec::new();
        rates
            .iter()
            .map(|&rate| {
                let estimate = self.estimate(&scenario.at(rate), &spectrum, &warm_state);
                if self.warm_start {
                    if let Some(seed) = Self::warm_seed(&estimate) {
                        warm_state = vec![seed];
                    }
                }
                estimate
            })
            .collect()
    }

    fn chains_rates(&self) -> bool {
        self.warm_start
    }
}

/// The flit-level simulator as an [`Evaluator`]: seconds per point, any
/// topology and discipline the simulator supports.
///
/// ```
/// use star_workloads::{Evaluator, SimBackend, SimBudget, Scenario};
///
/// let backend = SimBackend::new(SimBudget::Quick, 42);
/// let point = Scenario::star(4).with_message_length(16).at(0.003);
/// let a = backend.evaluate(&point);
/// // the same seed reproduces the same report, cycle for cycle
/// let b = backend.evaluate(&point);
/// assert_eq!(a, b);
/// assert!(a.sim_report().unwrap().measured_messages > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimBackend {
    /// Simulation effort per operating point.
    pub budget: SimBudget,
    /// RNG seed; the same seed is used at every point of a sweep (matching
    /// the paper's methodology), so replicate sweeps differ only by seed.
    pub seed: u64,
}

impl SimBackend {
    /// A simulator backend with the given effort budget and seed.
    #[must_use]
    pub fn new(budget: SimBudget, seed: u64) -> Self {
        Self { budget, seed }
    }
}

impl Evaluator for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn supports(&self, _scenario: &Scenario) -> bool {
        true
    }

    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        let scenario = &point.scenario;
        let topology = scenario.topology();
        let routing = scenario.discipline.routing(topology.as_ref(), scenario.virtual_channels);
        let config = self.budget.apply(scenario.message_length, point.traffic_rate, self.seed);
        let report = Simulation::new(topology, routing, config, scenario.pattern).run();
        PointEstimate {
            point: *point,
            backend: self.name().to_string(),
            saturated: report.saturated,
            // keep the headline field's contract backend-agnostic: infinite
            // beyond saturation (the partial measurement stays in the report)
            mean_latency: if report.saturated {
                f64::INFINITY
            } else {
                report.mean_message_latency
            },
            detail: EstimateDetail::Sim(Box::new(report)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Discipline;

    fn s4() -> Scenario {
        Scenario::star(4).with_message_length(16)
    }

    #[test]
    fn model_backend_answers_star_scenarios() {
        let backend = ModelBackend::new();
        assert!(backend.supports(&s4()));
        let estimate = backend.evaluate(&s4().at(0.004));
        assert_eq!(estimate.backend, "model");
        assert!(!estimate.saturated);
        assert!(estimate.latency().unwrap() > 16.0);
        assert!(estimate.iterations().unwrap() > 0);
        assert!(estimate.sim_report().is_none());
    }

    #[test]
    fn model_backend_rejects_unmodelled_scenarios() {
        let backend = ModelBackend::new();
        // the star model has no deterministic variant
        assert!(!backend.supports(&s4().with_discipline(Discipline::Deterministic)));
        // too few virtual channels is a ConfigError, not a supported scenario
        assert!(!backend.supports(&s4().with_virtual_channels(3)));
        // hypercube scenarios check against the cube's own level minimum
        assert!(!backend.supports(&Scenario::hypercube(10).with_virtual_channels(6)));
        // non-uniform traffic is outside both models
        let hot = star_sim::TrafficPattern::HotSpot { node: 0, fraction: 0.2 };
        assert!(!backend.supports(&s4().with_pattern(hot)));
        assert!(!backend.supports(&Scenario::hypercube(4).with_pattern(hot)));
    }

    #[test]
    #[should_panic(expected = "does not cover scenario")]
    fn model_backend_panics_on_unsupported_evaluate() {
        let _ = ModelBackend::new()
            .evaluate(&s4().with_discipline(Discipline::Deterministic).at(0.001));
    }

    #[test]
    fn model_backend_answers_hypercube_scenarios() {
        let backend = ModelBackend::new();
        for discipline in Discipline::ALL {
            let scenario = Scenario::hypercube(4).with_discipline(discipline);
            assert!(backend.supports(&scenario), "{discipline:?} must be modelled on Q4");
            let estimate = backend.evaluate(&scenario.at(0.005));
            assert_eq!(estimate.backend, "model");
            assert!(!estimate.saturated);
            assert!(estimate.latency().unwrap() > 32.0);
            assert!(estimate.iterations().unwrap() > 0);
            assert!(estimate.hypercube_result().is_some());
            assert!(estimate.model_result().is_none());
            assert!(estimate.sim_report().is_none());
        }
    }

    #[test]
    fn warm_started_hypercube_sweep_matches_independent_evaluations() {
        let backend = ModelBackend::new();
        // rates approaching the knee, where warm seeds actually save work
        let scenario = Scenario::hypercube(6);
        let rates = [0.012, 0.020, 0.024];
        let swept = backend.evaluate_sweep(&scenario, &rates);
        let total_warm: usize = swept.iter().filter_map(PointEstimate::iterations).sum();
        let mut total_solo = 0;
        for (est, &rate) in swept.iter().zip(&rates) {
            let solo = backend.evaluate(&scenario.at(rate));
            total_solo += solo.iterations().unwrap();
            assert_eq!(est.saturated, solo.saturated);
            if !est.saturated {
                let rel = (est.mean_latency - solo.mean_latency).abs() / solo.mean_latency;
                assert!(rel < 1e-9, "rate {rate}: sweep vs solo differ by {rel}");
            }
        }
        assert!(
            total_warm < total_solo,
            "warm-starting must carry over to the hypercube ({total_warm} vs {total_solo})"
        );
    }

    #[test]
    fn model_only_parity_scales_to_q10_and_q13() {
        // the sizes behind the S6/S7 parity sweep; sub-millisecond per point,
        // no simulator anywhere near
        let backend = ModelBackend::new();
        for dims in [10usize, 13] {
            let scenario = Scenario::hypercube(dims).with_virtual_channels(8);
            let estimate = backend.evaluate(&scenario.at(0.002));
            assert!(!estimate.saturated, "Q{dims} must solve at light load");
            assert!(estimate.hypercube_result().is_some());
        }
    }

    #[test]
    fn warm_started_sweep_matches_independent_evaluations() {
        let backend = ModelBackend::new();
        let scenario = s4();
        let rates = [0.002, 0.008, 0.014];
        let swept = backend.evaluate_sweep(&scenario, &rates);
        assert!(backend.chains_rates());
        assert!(!ModelBackend::cold().chains_rates());
        for (est, &rate) in swept.iter().zip(&rates) {
            let solo = backend.evaluate(&scenario.at(rate));
            assert_eq!(est.saturated, solo.saturated);
            if !est.saturated {
                let rel = (est.mean_latency - solo.mean_latency).abs() / solo.mean_latency;
                assert!(rel < 1e-9, "rate {rate}: sweep vs solo differ by {rel}");
            }
        }
    }

    #[test]
    fn sim_backend_answers_any_scenario_deterministically() {
        let backend = SimBackend::new(SimBudget::Quick, 9);
        assert!(backend.supports(&Scenario::hypercube(3)));
        let point = s4().at(0.004);
        let a = backend.evaluate(&point);
        let b = backend.evaluate(&point);
        assert_eq!(a.backend, "sim");
        assert!(!a.saturated);
        assert_eq!(a, b, "same seed must reproduce the same report");
        let report = a.sim_report().unwrap();
        assert_eq!(report.virtual_channels, 6);
        assert!(a.model_result().is_none());
        assert!(a.iterations().is_none());
    }

    #[test]
    fn model_and_sim_agree_at_light_load() {
        let point = s4().at(0.004);
        let model = ModelBackend::new().evaluate(&point);
        let sim = SimBackend::new(SimBudget::Quick, 1).evaluate(&point);
        assert!(!model.saturated && !sim.saturated);
        let err = (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency;
        assert!(
            err < 0.25,
            "model {} vs sim {} differ by {err}",
            model.mean_latency,
            sim.mean_latency
        );
    }

    #[test]
    fn latency_cell_formats_saturation() {
        let backend = ModelBackend::new();
        let fine = backend.evaluate(&s4().at(0.004));
        assert!(fine.latency_cell().parse::<f64>().is_ok());
        let sat = backend.evaluate(&s4().at(0.5));
        assert!(sat.saturated);
        assert_eq!(sat.latency_cell(), "saturated");
        assert!(sat.latency().is_none());
        assert!(sat.latency_or_infinity().is_infinite());
    }
}
