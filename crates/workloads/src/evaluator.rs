//! The unified evaluation API: one [`Evaluator`] trait answered by both the
//! analytical model and the flit-level simulator.
//!
//! Both backends take an [`OperatingPoint`] and return a [`PointEstimate`]
//! with the same headline quantities — the across-replicate mean message
//! latency with its Student-t 95% confidence interval and a saturation flag
//! — plus backend-specific diagnostics, so any harness can swap backends
//! — or run both and diff them, which is the paper's entire validation
//! methodology.
//!
//! Evaluation is **replicate-aware** end to end: a stochastic backend (the
//! simulator) runs [`Scenario::replicates`] independently seeded replicates
//! per point (seed `i` derived as
//! `star_queueing::replicate_seed(scenario.seed_base, i)`), a deterministic
//! backend (the model) contributes a single degenerate replicate with a
//! zero-width interval, and both report through the same
//! [`crate::ReplicateStats`]-carrying estimate.  The
//! [`Evaluator::evaluate_replicate`] / [`Evaluator::aggregate`] split lets a
//! [`crate::SweepRunner`] shard (point × replicate) work items across
//! threads and reassemble them byte-identically for any thread count.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_core::{
    AnalyticalModel, DestinationSpectrum, HypercubeModel, HypercubeResult, HypercubeSpectrum,
    ModelParams, ModelResult, SpectrumModel, SpectrumResult, TraversalSpectrum,
};
use star_graph::{Hypercube, StarGraph};
use star_queueing::ReplicateStats;
use star_sim::{ReplicateReport, ReplicateRun, SimReport};

use crate::budget::SimBudget;
use crate::scenario::{OperatingPoint, Scenario};

/// Backend-specific diagnostics attached to a [`PointEstimate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EstimateDetail {
    /// The full star analytical-model result (fixed-point iterations,
    /// multiplexing degree, waiting times, …).
    Model(ModelResult),
    /// The full hypercube analytical-model result (same quantities, `Q_d`
    /// configuration).
    HypercubeModel(HypercubeResult),
    /// The generic spectrum-model result, for topologies without a
    /// closed-form spectrum (torus, ring, any plugged-in [`Topology`]
    /// implementation).
    ///
    /// [`Topology`]: star_graph::Topology
    Spectrum(SpectrumResult),
    /// The replicate set of simulation reports with across-replicate
    /// statistics (cycles, observed multiplexing, … per replicate).
    Sim(Box<ReplicateReport>),
}

/// What an [`Evaluator`] answers for one operating point: the common headline
/// quantities plus the backend's full diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointEstimate {
    /// The operating point that was evaluated.
    pub point: OperatingPoint,
    /// Name of the backend that produced the estimate (`"model"` / `"sim"`).
    pub backend: String,
    /// Whether the backend declared the point beyond saturation (for
    /// replicated estimates: whether **any** replicate saturated).
    pub saturated: bool,
    /// Across-replicate mean message latency in cycles (infinite when
    /// saturated).
    pub mean_latency: f64,
    /// Across-replicate statistics of the mean message latency: replicate
    /// count, sample standard deviation and Student-t 95% confidence
    /// half-width.  Deterministic backends report a single degenerate
    /// replicate (zero-width interval), keeping one report schema across
    /// backends.
    pub latency_stats: ReplicateStats,
    /// Backend diagnostics (solve iterations or per-replicate simulation
    /// statistics).
    pub detail: EstimateDetail,
}

impl PointEstimate {
    /// The mean latency when the point is below saturation.
    #[must_use]
    pub fn latency(&self) -> Option<f64> {
        (!self.saturated).then_some(self.mean_latency)
    }

    /// The star analytical-model result, if this estimate came from the
    /// model on a star scenario.
    #[must_use]
    pub fn model_result(&self) -> Option<&ModelResult> {
        match &self.detail {
            EstimateDetail::Model(r) => Some(r),
            _ => None,
        }
    }

    /// The hypercube analytical-model result, if this estimate came from the
    /// model on a hypercube scenario.
    #[must_use]
    pub fn hypercube_result(&self) -> Option<&HypercubeResult> {
        match &self.detail {
            EstimateDetail::HypercubeModel(r) => Some(r),
            _ => None,
        }
    }

    /// The generic spectrum-model result, if this estimate came from the
    /// model on a topology outside the two closed forms.
    #[must_use]
    pub fn spectrum_result(&self) -> Option<&SpectrumResult> {
        match &self.detail {
            EstimateDetail::Spectrum(r) => Some(r),
            _ => None,
        }
    }

    /// The replicate set of simulation reports, if this estimate came from
    /// the simulator.
    #[must_use]
    pub fn sim_report(&self) -> Option<&ReplicateReport> {
        match &self.detail {
            EstimateDetail::Sim(r) => Some(r),
            _ => None,
        }
    }

    /// Number of replicates evaluated for this estimate — always 1 for the
    /// deterministic model (saturated or not), the full run count for the
    /// simulator.  The number of replicates that produced a *finite*
    /// measurement ([`Self::latency_stats`]`.replicates`) may be lower on a
    /// saturated point; see [`Self::sim_report`] for the full set.
    #[must_use]
    pub fn replicates(&self) -> u64 {
        match &self.detail {
            EstimateDetail::Sim(r) => r.replicates() as u64,
            _ => 1,
        }
    }

    /// Student-t 95% confidence half-width of the mean latency across
    /// replicates (0 for deterministic backends and single replicates).
    #[must_use]
    pub fn latency_ci95(&self) -> f64 {
        self.latency_stats.ci95
    }

    /// Relative 95% confidence half-width (`ci95 / mean`).
    #[must_use]
    pub fn latency_rel_ci95(&self) -> f64 {
        self.latency_stats.relative_ci95()
    }

    /// Fixed-point iterations spent (model estimates only, any topology).
    #[must_use]
    pub fn iterations(&self) -> Option<usize> {
        match &self.detail {
            EstimateDetail::Model(r) => Some(r.iterations),
            EstimateDetail::HypercubeModel(r) => Some(r.iterations),
            EstimateDetail::Spectrum(r) => Some(r.iterations),
            EstimateDetail::Sim(_) => None,
        }
    }

    /// The latency as a plottable value: infinite when saturated.
    #[must_use]
    pub fn latency_or_infinity(&self) -> f64 {
        self.latency().unwrap_or(f64::INFINITY)
    }

    /// Formats the latency for tables (`"saturated"` beyond saturation).
    #[must_use]
    pub fn latency_cell(&self) -> String {
        self.latency().map_or_else(|| "saturated".to_string(), |l| format!("{l:.1}"))
    }

    /// Formats the latency with its confidence interval for tables
    /// (`"74.3 ± 1.2"`; the `± 0.0` is omitted for degenerate intervals,
    /// `"saturated"` beyond saturation).
    #[must_use]
    pub fn latency_ci_cell(&self) -> String {
        match self.latency() {
            None => "saturated".to_string(),
            Some(_) if self.latency_stats.ci95 > 0.0 => self.latency_stats.pretty(),
            Some(l) => format!("{l:.1}"),
        }
    }
}

/// A backend that can answer operating points: the analytical model
/// ([`ModelBackend`], covering both the star and the hypercube), the
/// flit-level simulator ([`SimBackend`]), or anything else that can estimate
/// a latency (future: a learned surrogate, a remote service).
///
/// The unit of work is the **replicate**, not the point: a backend answers
/// [`Self::evaluate_replicate`] for each replicate index and folds the
/// per-replicate estimates with [`Self::aggregate`]; [`Self::evaluate`] is
/// the sequential composition of the two.  Deterministic backends keep the
/// defaults (one replicate, identity aggregation); stochastic backends
/// advertise their fan-out through [`Self::fixed_replicates`] so a
/// [`crate::SweepRunner`] can shard (point × replicate) work items across
/// threads.
///
/// Implementations must be [`Sync`] so a [`crate::SweepRunner`] can shard
/// work across threads.
pub trait Evaluator: Sync {
    /// Short backend name used in reports (`"model"`, `"sim"`).
    fn name(&self) -> &'static str;

    /// Whether this backend can evaluate the scenario at all.
    fn supports(&self, scenario: &Scenario) -> bool;

    /// Number of replicates one point evaluation fans out to, when that
    /// count is known up front: `Some(R)` lets a runner schedule the R
    /// replicates as independent work items; `None` means the backend
    /// decides dynamically (adaptive confidence targeting), so the runner
    /// must hand it whole points via [`Self::evaluate`].
    fn fixed_replicates(&self, scenario: &Scenario) -> Option<usize> {
        let _ = scenario;
        Some(1)
    }

    /// Evaluates one replicate of one operating point.  Deterministic
    /// backends ignore the replicate index.
    ///
    /// # Panics
    /// May panic if [`Self::supports`] is false for the scenario or its
    /// parameters are out of range.
    fn evaluate_replicate(&self, point: &OperatingPoint, replicate: usize) -> PointEstimate;

    /// Folds per-replicate estimates — in replicate-index order — into the
    /// point's aggregate estimate.  The fold must be a pure function of the
    /// ordered input so any scheduler that reassembles replicates by index
    /// reproduces the sequential result byte for byte.  The default is the
    /// single-replicate identity.
    ///
    /// # Panics
    /// The default panics when handed anything but exactly one estimate;
    /// backends with a real fan-out must override it.
    fn aggregate(&self, replicates: Vec<PointEstimate>) -> PointEstimate {
        assert_eq!(
            replicates.len(),
            1,
            "the default aggregation covers single-replicate backends only"
        );
        replicates.into_iter().next().expect("one replicate in, one estimate out")
    }

    /// Evaluates one operating point: all replicates, sequentially, folded
    /// with [`Self::aggregate`].
    ///
    /// # Panics
    /// As [`Self::evaluate_replicate`].
    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        let replicates = self.fixed_replicates(&point.scenario).unwrap_or(1).max(1);
        self.aggregate((0..replicates).map(|i| self.evaluate_replicate(point, i)).collect())
    }

    /// Evaluates one scenario across a whole rate sweep.  The default runs
    /// [`Self::evaluate`] independently per rate; backends with useful state
    /// to carry between rates (the model's warm-started fixed point)
    /// override it.
    fn evaluate_sweep(&self, scenario: &Scenario, rates: &[f64]) -> Vec<PointEstimate> {
        rates.iter().map(|&r| self.evaluate(&scenario.at(r))).collect()
    }

    /// Whether consecutive rates of one sweep must stay on one worker because
    /// [`Self::evaluate_sweep`] chains state between them.  A
    /// [`crate::SweepRunner`] shards whole sweeps (not points) across threads
    /// when this is true, keeping results identical for any thread count.
    fn chains_rates(&self) -> bool {
        false
    }
}

/// The topology spectrum a model sweep shares across its rates: the star's
/// cycle-type destination spectrum, the hypercube's Hamming traversal
/// spectrum, or the generic BFS traversal census for any other
/// [`star_graph::Topology`] — behind one `Arc` so threads and rates reuse
/// one allocation.
///
/// Dispatch is by downcast on the scenario's topology *value*, not by a kind
/// enum: the two closed forms are an optimisation (and the oracles the
/// generic census is tested against), everything else flows through
/// [`TraversalSpectrum`].
enum ModelSpectrum {
    Star { symbols: usize, spectrum: Arc<DestinationSpectrum> },
    Hypercube { dims: usize, spectrum: Arc<HypercubeSpectrum> },
    Generic(Arc<TraversalSpectrum>),
}

/// The spectrum build a scenario's model evaluations share, as a reusable
/// value: the expensive topology-dependent half of a model solve (the
/// star's cycle-type census, the hypercube's Hamming populations, or the
/// generic BFS traversal census), `Arc`-shared internally so clones and
/// concurrent evaluations reuse one allocation.
///
/// [`Evaluator::evaluate`] builds one per call; callers that answer *many*
/// points of one scenario family — the serving daemon's topology/spectrum
/// cache, long-lived REPL sessions — build it once with
/// [`ScenarioSpectrum::build`] and pass it to
/// [`ModelBackend::estimate_with`], which is exactly the
/// [`Evaluator::evaluate`] computation with the spectrum build hoisted out
/// (the answers are bit-identical).
pub struct ScenarioSpectrum(ModelSpectrum);

impl std::fmt::Debug for ScenarioSpectrum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let family = match &self.0 {
            ModelSpectrum::Star { symbols, .. } => format!("Star(S{symbols})"),
            ModelSpectrum::Hypercube { dims, .. } => format!("Hypercube(Q{dims})"),
            ModelSpectrum::Generic(_) => "Generic".to_string(),
        };
        f.debug_tuple("ScenarioSpectrum").field(&family).finish()
    }
}

impl ScenarioSpectrum {
    /// Builds the spectrum for a scenario's topology (closed-form star and
    /// hypercube spectra, generic BFS census otherwise).  Only the topology
    /// matters: every `V`/`M`/rate/discipline of the same network shares
    /// the build.
    #[must_use]
    pub fn build(scenario: &Scenario) -> Self {
        Self(ModelSpectrum::for_scenario(scenario))
    }
}

impl ModelSpectrum {
    fn for_scenario(scenario: &Scenario) -> Self {
        let topology = scenario.topology();
        if let Some(star) = topology.as_any().downcast_ref::<StarGraph>() {
            Self::Star {
                symbols: star.symbols(),
                spectrum: Arc::new(DestinationSpectrum::new(star.symbols())),
            }
        } else if let Some(cube) = topology.as_any().downcast_ref::<Hypercube>() {
            Self::Hypercube {
                dims: cube.dims(),
                spectrum: Arc::new(HypercubeSpectrum::new(cube.dims())),
            }
        } else {
            Self::Generic(Arc::new(TraversalSpectrum::new(topology.as_ref())))
        }
    }
}

/// The analytical model as an [`Evaluator`]: microseconds per point.  Covers
/// star networks with the three modelled disciplines and every other
/// topology with all four (deterministic routing on `Q_d` is
/// dimension-order), under uniform traffic.  Star and hypercube scenarios
/// use the closed-form spectra; any other topology (torus, ring, plugged-in
/// implementations) goes through the generic [`TraversalSpectrum`].
///
/// ```
/// use star_workloads::{Evaluator, ModelBackend, Scenario};
///
/// let backend = ModelBackend::new();
/// // the same backend answers every topology, model-only — this is what
/// // lets the star-vs-hypercube comparison run at S6/Q10 and S7/Q13 scale,
/// // far beyond the flit-level simulator's reach
/// let star = backend.evaluate(&Scenario::star(5).at(0.004));
/// let cube = backend.evaluate(&Scenario::hypercube(7).at(0.004));
/// let torus = backend.evaluate(&Scenario::torus(8).at(0.004));
/// assert!(!star.saturated && !cube.saturated && !torus.saturated);
/// assert!(star.model_result().is_some());
/// assert!(cube.hypercube_result().is_some());
/// assert!(torus.spectrum_result().is_some());
/// // all are latency estimates above their zero-load bound M + d̄
/// assert!(star.mean_latency > 32.0);
/// assert!(cube.mean_latency > 32.0);
/// assert!(torus.mean_latency > 32.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModelBackend {
    /// Warm-start each rate of a sweep from the previous rate's converged
    /// fixed point (on by default; matches cold starts to solver tolerance).
    pub warm_start: bool,
}

impl Default for ModelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBackend {
    /// A warm-starting model backend (the default).
    #[must_use]
    pub fn new() -> Self {
        Self { warm_start: true }
    }

    /// A backend that solves every rate from the cold zero-load state
    /// (for iteration-count comparisons and benchmarks).
    #[must_use]
    pub fn cold() -> Self {
        Self { warm_start: false }
    }

    fn estimate(
        &self,
        point: &OperatingPoint,
        spectrum: &ModelSpectrum,
        warm_state: &[f64],
    ) -> PointEstimate {
        let scenario = &point.scenario;
        let params: ModelParams = scenario
            .model_params(point.traffic_rate)
            .unwrap_or_else(|e| panic!("invalid model scenario {}: {e}", scenario.label()))
            .unwrap_or_else(|| panic!("{}", Self::unsupported_message(scenario)));
        let (saturated, mean_latency, detail) = match spectrum {
            ModelSpectrum::Star { symbols, spectrum } => {
                let config = params
                    .star_config(*symbols)
                    .unwrap_or_else(|| panic!("{}", Self::unsupported_message(scenario)));
                let result = AnalyticalModel::with_spectrum(config, Arc::clone(spectrum))
                    .solve_from(warm_state);
                (result.saturated, result.mean_latency, EstimateDetail::Model(result))
            }
            ModelSpectrum::Hypercube { dims, spectrum } => {
                let result = HypercubeModel::with_spectrum(
                    params.hypercube_config(*dims),
                    Arc::clone(spectrum),
                )
                .solve_from(warm_state);
                (result.saturated, result.mean_latency, EstimateDetail::HypercubeModel(result))
            }
            ModelSpectrum::Generic(spectrum) => {
                let result =
                    SpectrumModel::new(params, Arc::clone(spectrum)).solve_from(warm_state);
                (result.saturated, result.mean_latency, EstimateDetail::Spectrum(result))
            }
        };
        PointEstimate {
            point: point.clone(),
            backend: self.name().to_string(),
            saturated,
            mean_latency,
            // the model is deterministic: one degenerate replicate, CI of
            // zero width (no finite observation at all when saturated)
            latency_stats: if saturated {
                ReplicateStats::empty()
            } else {
                ReplicateStats::degenerate(mean_latency)
            },
            detail,
        }
    }

    fn unsupported_message(scenario: &Scenario) -> String {
        format!(
            "the analytical model does not cover scenario {} \
             (star: enhanced-nbc/nbc/nhop; any other topology: any \
             discipline; uniform traffic only)",
            scenario.label()
        )
    }

    /// [`Evaluator::evaluate`] with the spectrum build hoisted out: answers
    /// the point reusing a prebuilt [`ScenarioSpectrum`] (which must belong
    /// to the point's topology) and an optional warm-start state (empty
    /// slice = cold start, the [`Evaluator::evaluate`] behaviour).
    ///
    /// With an empty `warm_state` the returned estimate is **bit-identical**
    /// to [`Evaluator::evaluate`] on the same point — this is the contract
    /// the serving daemon's byte-identity guarantee rests on.  With a warm
    /// seed (see [`Self::warm_seed`]) the answer agrees to solver tolerance
    /// (1e-9 relative latency) with fewer iterations, exactly like the
    /// sweep chain of [`Evaluator::evaluate_sweep`].
    ///
    /// # Panics
    /// As [`Evaluator::evaluate`]; also if the spectrum was built for a
    /// different topology family or size than the point's.
    #[must_use]
    pub fn estimate_with(
        &self,
        point: &OperatingPoint,
        spectrum: &ScenarioSpectrum,
        warm_state: &[f64],
    ) -> PointEstimate {
        match (&spectrum.0, point.scenario.topology().name().as_str()) {
            (ModelSpectrum::Star { symbols, .. }, name) => {
                assert_eq!(name, format!("S{symbols}"), "spectrum built for another topology");
            }
            (ModelSpectrum::Hypercube { dims, .. }, name) => {
                assert_eq!(name, format!("Q{dims}"), "spectrum built for another topology");
            }
            (ModelSpectrum::Generic(s), name) => {
                assert_eq!(name, s.topology_name(), "spectrum built for another topology");
            }
        }
        self.estimate(point, &spectrum.0, warm_state)
    }

    /// The converged mean network latency an estimate contributes as the next
    /// rate's warm-start seed (any topology): the value
    /// [`Evaluator::evaluate_sweep`] chains between rates, and the value the
    /// serving daemon's solve cache stores per chain point.  `None` for
    /// simulator estimates; non-finite (and ignored by `solve_from` in
    /// favour of a cold start) for saturated points.
    #[must_use]
    pub fn warm_seed(estimate: &PointEstimate) -> Option<f64> {
        match &estimate.detail {
            // saturated points leave a non-finite seed, which solve_from
            // ignores in favour of the cold start
            EstimateDetail::Model(r) => Some(r.mean_network_latency),
            EstimateDetail::HypercubeModel(r) => Some(r.mean_network_latency),
            EstimateDetail::Spectrum(r) => Some(r.mean_network_latency),
            EstimateDetail::Sim(_) => None,
        }
    }
}

impl Evaluator for ModelBackend {
    fn name(&self) -> &'static str {
        "model"
    }

    fn supports(&self, scenario: &Scenario) -> bool {
        matches!(scenario.model_params(0.0), Ok(Some(_)))
    }

    fn evaluate_replicate(&self, point: &OperatingPoint, _replicate: usize) -> PointEstimate {
        // the model is deterministic — every replicate is the same solve
        self.estimate(point, &ModelSpectrum::for_scenario(&point.scenario), &[])
    }

    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        self.estimate(point, &ModelSpectrum::for_scenario(&point.scenario), &[])
    }

    fn evaluate_sweep(&self, scenario: &Scenario, rates: &[f64]) -> Vec<PointEstimate> {
        let spectrum = ModelSpectrum::for_scenario(scenario);
        let mut warm_state: Vec<f64> = Vec::new();
        rates
            .iter()
            .map(|&rate| {
                let estimate = self.estimate(&scenario.at(rate), &spectrum, &warm_state);
                if self.warm_start {
                    if let Some(seed) = Self::warm_seed(&estimate) {
                        warm_state = vec![seed];
                    }
                }
                estimate
            })
            .collect()
    }

    fn chains_rates(&self) -> bool {
        self.warm_start
    }
}

/// Adaptive stopping rule for replicated simulation: keep running replicate
/// batches until the relative 95% confidence half-width of the mean latency
/// falls below the target, or the replicate cap is hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiTarget {
    /// Target relative half-width (`ci95 / mean`), e.g. `0.05` for ±5%.
    pub relative: f64,
    /// Hard cap on replicates per point (the stopping rule gives up there).
    pub max_replicates: usize,
}

impl CiTarget {
    /// Default replicate cap of the adaptive stopping rule.
    pub const DEFAULT_MAX_REPLICATES: usize = 32;

    /// A target with the default replicate cap.
    ///
    /// # Panics
    /// Panics unless `relative` is in `(0, 1)`.
    #[must_use]
    pub fn new(relative: f64) -> Self {
        assert!(relative > 0.0 && relative < 1.0, "relative CI target must be in (0, 1)");
        Self { relative, max_replicates: Self::DEFAULT_MAX_REPLICATES }
    }
}

/// The flit-level simulator as an [`Evaluator`]: seconds per point, any
/// topology and discipline the simulator supports.
///
/// The backend is replicate-aware: each point runs the
/// [`Scenario::replicates`] independently seeded replicates (seed `i`
/// derived from [`Scenario::seed_base`]), and the estimate carries the
/// across-replicate mean and Student-t 95% confidence interval.  There is no
/// single-seed mode — one replicate is simply `replicates = 1`, whose seed
/// is still derived from the base.
///
/// ```
/// use star_workloads::{Evaluator, SimBackend, SimBudget, Scenario};
///
/// let backend = SimBackend::new(SimBudget::Quick);
/// let scenario = Scenario::star(4)
///     .with_message_length(16)
///     .with_replicates(2)
///     .with_seed_base(42);
/// let a = backend.evaluate(&scenario.at(0.003));
/// // the same seed base reproduces the same replicate set, cycle for cycle
/// let b = backend.evaluate(&scenario.at(0.003));
/// assert_eq!(a, b);
/// assert_eq!(a.replicates(), 2);
/// // two independent seeds yield a real (non-degenerate) interval
/// assert!(a.latency_ci95() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimBackend {
    /// Simulation effort per replicate.
    pub budget: SimBudget,
    /// Optional adaptive stopping rule: run replicate batches beyond the
    /// scenario's base count until the relative CI half-width meets the
    /// target (or the cap).  `None` runs exactly
    /// [`Scenario::replicates`] replicates.
    pub ci_target: Option<CiTarget>,
}

impl SimBackend {
    /// A simulator backend with the given effort budget, running exactly the
    /// scenario's replicate count per point.
    #[must_use]
    pub fn new(budget: SimBudget) -> Self {
        Self { budget, ci_target: None }
    }

    /// Enables the adaptive stopping rule (see [`CiTarget`]).
    #[must_use]
    pub fn with_ci_target(mut self, target: CiTarget) -> Self {
        self.ci_target = Some(target);
        self
    }

    /// The replicate fan-out of one operating point.
    fn replicate_run(&self, point: &OperatingPoint) -> ReplicateRun {
        let scenario = &point.scenario;
        let topology = scenario.topology();
        let routing = scenario.discipline.routing(topology.as_ref(), scenario.virtual_channels);
        let mut config =
            self.budget.apply(scenario.message_length, point.traffic_rate, scenario.seed_base);
        config.core = scenario.core;
        ReplicateRun::new(topology, routing, config, scenario.pattern, scenario.replicates.max(1))
    }

    /// Wraps a replicate set as the point's estimate.
    fn estimate(&self, point: &OperatingPoint, runs: Vec<SimReport>) -> PointEstimate {
        let report = ReplicateReport::from_runs(runs);
        // a deadlock-watchdog trip (a simulator bug, never a protocol
        // property of the shipped algorithms) also invalidates the point:
        // without this, an all-deadlocked set would publish its empty-stats
        // mean of 0.0 as a valid finite latency
        let unusable = report.saturated || report.deadlock_detected;
        PointEstimate {
            point: point.clone(),
            backend: self.name().to_string(),
            saturated: unusable,
            // keep the headline field's contract backend-agnostic: infinite
            // beyond saturation (partial measurements stay in the report)
            mean_latency: if unusable { f64::INFINITY } else { report.latency.mean },
            latency_stats: report.latency,
            detail: EstimateDetail::Sim(Box::new(report)),
        }
    }
}

impl Evaluator for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn supports(&self, _scenario: &Scenario) -> bool {
        true
    }

    fn fixed_replicates(&self, scenario: &Scenario) -> Option<usize> {
        // under a CI target the count is decided while evaluating, so the
        // runner must hand this backend whole points
        if self.ci_target.is_some() {
            None
        } else {
            Some(scenario.replicates.max(1))
        }
    }

    fn evaluate_replicate(&self, point: &OperatingPoint, replicate: usize) -> PointEstimate {
        let run = self.replicate_run(point);
        self.estimate(point, vec![run.run_replicate(replicate as u64)])
    }

    fn aggregate(&self, replicates: Vec<PointEstimate>) -> PointEstimate {
        assert!(!replicates.is_empty(), "a point aggregates at least one replicate");
        let point = replicates[0].point.clone();
        let runs: Vec<SimReport> = replicates
            .into_iter()
            .flat_map(|estimate| match estimate.detail {
                EstimateDetail::Sim(report) => report.runs,
                _ => panic!("the sim backend can only aggregate sim replicates"),
            })
            .collect();
        self.estimate(&point, runs)
    }

    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        let run = self.replicate_run(point);
        let base = run.replicates() as u64;
        let mut runs: Vec<SimReport> = (0..base).map(|i| run.run_replicate(i)).collect();
        if let Some(target) = self.ci_target {
            // adaptive stopping: a CI needs at least two observations, then
            // grow in base-sized batches until the target or the cap.  The
            // replicate sequence is a pure function of (seed base, index),
            // so adaptive runs extend — never reshuffle — fixed runs.
            let cap = target.max_replicates.max(base as usize) as u64;
            loop {
                let report = ReplicateReport::from_runs(runs);
                let n = report.runs.len() as u64;
                let resolved = report.saturated
                    || report.deadlock_detected
                    || (n >= 2 && report.latency.relative_ci95() <= target.relative);
                if resolved || n >= cap {
                    return self.estimate(point, report.runs);
                }
                let batch = base.min(cap - n);
                runs = report.runs;
                for i in n..n + batch {
                    runs.push(run.run_replicate(i));
                }
            }
        }
        self.estimate(point, runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Discipline;

    fn s4() -> Scenario {
        Scenario::star(4).with_message_length(16)
    }

    #[test]
    fn model_backend_answers_star_scenarios() {
        let backend = ModelBackend::new();
        assert!(backend.supports(&s4()));
        let estimate = backend.evaluate(&s4().at(0.004));
        assert_eq!(estimate.backend, "model");
        assert!(!estimate.saturated);
        assert!(estimate.latency().unwrap() > 16.0);
        assert!(estimate.iterations().unwrap() > 0);
        assert!(estimate.sim_report().is_none());
    }

    #[test]
    fn model_backend_rejects_unmodelled_scenarios() {
        let backend = ModelBackend::new();
        // the star model has no deterministic variant
        assert!(!backend.supports(&s4().with_discipline(Discipline::Deterministic)));
        // too few virtual channels is a ConfigError, not a supported scenario
        assert!(!backend.supports(&s4().with_virtual_channels(3)));
        // hypercube scenarios check against the cube's own level minimum
        assert!(!backend.supports(&Scenario::hypercube(10).with_virtual_channels(6)));
        // generic topologies check against their diameter's level minimum
        assert!(!backend.supports(&Scenario::torus(12).with_virtual_channels(7)));
        assert!(backend.supports(&Scenario::torus(12).with_virtual_channels(8)));
        // non-uniform traffic is outside the model on every topology
        let hot = star_sim::TrafficPattern::HotSpot { node: 0, fraction: 0.2 };
        assert!(!backend.supports(&s4().with_pattern(hot)));
        assert!(!backend.supports(&Scenario::hypercube(4).with_pattern(hot)));
        assert!(!backend.supports(&Scenario::torus(8).with_pattern(hot)));
    }

    #[test]
    #[should_panic(expected = "does not cover scenario")]
    fn model_backend_panics_on_unsupported_evaluate() {
        let _ = ModelBackend::new()
            .evaluate(&s4().with_discipline(Discipline::Deterministic).at(0.001));
    }

    #[test]
    fn model_backend_answers_hypercube_scenarios() {
        let backend = ModelBackend::new();
        for discipline in Discipline::ALL {
            let scenario = Scenario::hypercube(4).with_discipline(discipline);
            assert!(backend.supports(&scenario), "{discipline:?} must be modelled on Q4");
            let estimate = backend.evaluate(&scenario.at(0.005));
            assert_eq!(estimate.backend, "model");
            assert!(!estimate.saturated);
            assert!(estimate.latency().unwrap() > 32.0);
            assert!(estimate.iterations().unwrap() > 0);
            assert!(estimate.hypercube_result().is_some());
            assert!(estimate.model_result().is_none());
            assert!(estimate.sim_report().is_none());
        }
    }

    #[test]
    fn model_backend_answers_torus_and_ring_scenarios() {
        // the generic spectrum path: no closed form anywhere, every
        // discipline covered (deterministic routing has one admissible port
        // per hop on the torus's BFS DAG)
        let backend = ModelBackend::new();
        for discipline in Discipline::ALL {
            let scenario = Scenario::torus(8).with_discipline(discipline);
            assert!(backend.supports(&scenario), "{discipline:?} must be modelled on T8");
            let estimate = backend.evaluate(&scenario.at(0.004));
            assert_eq!(estimate.backend, "model");
            assert!(!estimate.saturated);
            assert!(estimate.latency().unwrap() > 32.0);
            assert!(estimate.iterations().unwrap() > 0);
            assert!(estimate.spectrum_result().is_some());
            assert!(estimate.model_result().is_none());
            assert!(estimate.hypercube_result().is_none());
        }
        let ring = backend.evaluate(&Scenario::ring(8).with_virtual_channels(4).at(0.004));
        assert!(!ring.saturated);
        assert_eq!(ring.spectrum_result().unwrap().topology, "R8");
    }

    #[test]
    fn warm_started_torus_sweep_matches_independent_evaluations() {
        // the generic spectrum model participates in the same warm-start
        // chain as the closed forms
        let backend = ModelBackend::new();
        let scenario = Scenario::torus(8);
        let rates = [0.006, 0.010, 0.013];
        let swept = backend.evaluate_sweep(&scenario, &rates);
        let total_warm: usize = swept.iter().filter_map(PointEstimate::iterations).sum();
        let mut total_solo = 0;
        for (est, &rate) in swept.iter().zip(&rates) {
            let solo = backend.evaluate(&scenario.at(rate));
            total_solo += solo.iterations().unwrap();
            assert_eq!(est.saturated, solo.saturated);
            if !est.saturated {
                let rel = (est.mean_latency - solo.mean_latency).abs() / solo.mean_latency;
                assert!(rel < 1e-9, "rate {rate}: sweep vs solo differ by {rel}");
            }
        }
        assert!(
            total_warm < total_solo,
            "warm-starting must carry over to the torus ({total_warm} vs {total_solo})"
        );
    }

    #[test]
    fn warm_started_hypercube_sweep_matches_independent_evaluations() {
        let backend = ModelBackend::new();
        // rates approaching the knee, where warm seeds actually save work
        let scenario = Scenario::hypercube(6);
        let rates = [0.012, 0.020, 0.024];
        let swept = backend.evaluate_sweep(&scenario, &rates);
        let total_warm: usize = swept.iter().filter_map(PointEstimate::iterations).sum();
        let mut total_solo = 0;
        for (est, &rate) in swept.iter().zip(&rates) {
            let solo = backend.evaluate(&scenario.at(rate));
            total_solo += solo.iterations().unwrap();
            assert_eq!(est.saturated, solo.saturated);
            if !est.saturated {
                let rel = (est.mean_latency - solo.mean_latency).abs() / solo.mean_latency;
                assert!(rel < 1e-9, "rate {rate}: sweep vs solo differ by {rel}");
            }
        }
        assert!(
            total_warm < total_solo,
            "warm-starting must carry over to the hypercube ({total_warm} vs {total_solo})"
        );
    }

    #[test]
    fn model_only_parity_scales_to_q10_and_q13() {
        // the sizes behind the S6/S7 parity sweep; sub-millisecond per point,
        // no simulator anywhere near
        let backend = ModelBackend::new();
        for dims in [10usize, 13] {
            let scenario = Scenario::hypercube(dims).with_virtual_channels(8);
            let estimate = backend.evaluate(&scenario.at(0.002));
            assert!(!estimate.saturated, "Q{dims} must solve at light load");
            assert!(estimate.hypercube_result().is_some());
        }
    }

    #[test]
    fn warm_started_sweep_matches_independent_evaluations() {
        let backend = ModelBackend::new();
        let scenario = s4();
        let rates = [0.002, 0.008, 0.014];
        let swept = backend.evaluate_sweep(&scenario, &rates);
        assert!(backend.chains_rates());
        assert!(!ModelBackend::cold().chains_rates());
        for (est, &rate) in swept.iter().zip(&rates) {
            let solo = backend.evaluate(&scenario.at(rate));
            assert_eq!(est.saturated, solo.saturated);
            if !est.saturated {
                let rel = (est.mean_latency - solo.mean_latency).abs() / solo.mean_latency;
                assert!(rel < 1e-9, "rate {rate}: sweep vs solo differ by {rel}");
            }
        }
    }

    #[test]
    fn sim_backend_answers_any_scenario_deterministically() {
        let backend = SimBackend::new(SimBudget::Quick);
        assert!(backend.supports(&Scenario::hypercube(3)));
        let point = s4().with_seed_base(9).at(0.004);
        let a = backend.evaluate(&point);
        let b = backend.evaluate(&point);
        assert_eq!(a.backend, "sim");
        assert!(!a.saturated);
        assert_eq!(a, b, "same seed base must reproduce the same report");
        let report = a.sim_report().unwrap();
        assert_eq!(report.replicates(), 1);
        assert_eq!(report.first().virtual_channels, 6);
        assert_eq!(a.latency_ci95(), 0.0, "one replicate has a degenerate interval");
        assert!(a.model_result().is_none());
        assert!(a.iterations().is_none());
    }

    #[test]
    fn replicate_fan_out_aggregates_byte_identically() {
        // the contract the sweep runner's (point × replicate) sharding rests
        // on: per-index evaluation + index-ordered aggregation equals the
        // sequential evaluation
        let backend = SimBackend::new(SimBudget::Quick);
        let point = s4().with_replicates(3).with_seed_base(5).at(0.004);
        assert_eq!(backend.fixed_replicates(&point.scenario), Some(3));
        let sequential = backend.evaluate(&point);
        let sharded =
            backend.aggregate((0..3).map(|i| backend.evaluate_replicate(&point, i)).collect());
        assert_eq!(sequential, sharded);
        assert_eq!(sequential.replicates(), 3);
        assert!(sequential.latency_ci95() > 0.0);
        assert!(sequential.latency_rel_ci95() > 0.0);
        // replicate estimates really came from different seeds
        let means: Vec<f64> =
            sequential.sim_report().unwrap().runs.iter().map(|r| r.mean_message_latency).collect();
        assert!(means.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ci_target_runs_batches_until_resolved_or_capped() {
        let point = s4().with_replicates(2).with_seed_base(11).at(0.004);
        // a loose target resolves quickly…
        let loose =
            SimBackend::new(SimBudget::Quick).with_ci_target(CiTarget::new(0.5)).evaluate(&point);
        assert!(loose.latency_rel_ci95() <= 0.5);
        assert!(loose.replicates() >= 2, "a CI needs at least two replicates");
        // …an unreachable one stops at the cap
        let capped = SimBackend::new(SimBudget::Quick)
            .with_ci_target(CiTarget { relative: 1e-9, max_replicates: 4 })
            .evaluate(&point);
        assert_eq!(capped.replicates(), 4);
        assert!(capped.latency_rel_ci95() > 1e-9);
        // the adaptive prefix extends (never reshuffles) the fixed fan-out
        let fixed = SimBackend::new(SimBudget::Quick)
            .evaluate(&s4().with_replicates(4).with_seed_base(11).at(0.004));
        assert_eq!(
            capped.sim_report().unwrap().runs,
            fixed.sim_report().unwrap().runs,
            "replicate i must be the same simulation however the count was reached"
        );
        // dynamic counts cannot be pre-sharded
        assert_eq!(
            SimBackend::new(SimBudget::Quick)
                .with_ci_target(CiTarget::new(0.1))
                .fixed_replicates(&point.scenario),
            None
        );
    }

    #[test]
    fn deadlocked_replicates_invalidate_the_point() {
        // the watchdog firing means a simulator bug, not a measurement: the
        // point must not publish the empty-stats mean of 0.0 as a latency
        let backend = SimBackend::new(SimBudget::Quick);
        let point = s4().with_seed_base(9).at(0.004);
        let healthy = backend.evaluate_replicate(&point, 0);
        let mut runs = healthy.sim_report().unwrap().runs.clone();
        runs[0].deadlock_detected = true;
        let estimate = backend.estimate(&point, runs);
        assert!(estimate.saturated, "a deadlocked set is unusable");
        assert!(estimate.latency().is_none());
        assert!(estimate.mean_latency.is_infinite());
        assert_eq!(estimate.latency_stats.replicates, 0);
        // …and under a CI target the adaptive loop stops instead of
        // chasing a zero-mean interval (exercised via aggregate semantics:
        // the unusable flag comes straight from the replicate report)
        assert!(estimate.sim_report().unwrap().deadlock_detected);
    }

    #[test]
    fn saturated_model_points_still_count_one_replicate() {
        let sat = ModelBackend::new().evaluate(&s4().at(0.5));
        assert!(sat.saturated);
        assert_eq!(sat.replicates(), 1, "the model is always one deterministic replicate");
        assert_eq!(sat.latency_stats.replicates, 0, "…with no finite observation");
    }

    #[test]
    fn model_reports_zero_width_interval() {
        let estimate = ModelBackend::new().evaluate(&s4().with_replicates(8).at(0.004));
        // the model is deterministic: replicates are ignored, the interval
        // is degenerate, and the schema still carries the stats fields
        assert_eq!(estimate.replicates(), 1);
        assert_eq!(estimate.latency_ci95(), 0.0);
        assert_eq!(estimate.latency_rel_ci95(), 0.0);
        assert_eq!(estimate.latency_stats.mean, estimate.mean_latency);
    }

    #[test]
    fn model_and_sim_agree_at_light_load() {
        let scenario = s4().with_replicates(2).with_seed_base(1);
        let model = ModelBackend::new().evaluate(&scenario.at(0.004));
        let sim = SimBackend::new(SimBudget::Quick).evaluate(&scenario.at(0.004));
        assert!(!model.saturated && !sim.saturated);
        let err = (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency;
        assert!(
            err < 0.25,
            "model {} vs sim {} ± {} differ by {err}",
            model.mean_latency,
            sim.mean_latency,
            sim.latency_ci95()
        );
    }

    #[test]
    fn latency_cell_formats_saturation() {
        let backend = ModelBackend::new();
        let fine = backend.evaluate(&s4().at(0.004));
        assert!(fine.latency_cell().parse::<f64>().is_ok());
        let sat = backend.evaluate(&s4().at(0.5));
        assert!(sat.saturated);
        assert_eq!(sat.latency_cell(), "saturated");
        assert!(sat.latency().is_none());
        assert!(sat.latency_or_infinity().is_infinite());
    }
}
