//! The unified evaluation API: one [`Evaluator`] trait answered by both the
//! analytical model and the flit-level simulator.
//!
//! Both backends take an [`OperatingPoint`] and return a [`PointEstimate`]
//! with the same headline quantities (mean message latency and a saturation
//! flag) plus backend-specific diagnostics, so any harness can swap backends
//! — or run both and diff them, which is the paper's entire validation
//! methodology.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use star_core::{AnalyticalModel, DestinationSpectrum, ModelResult};
use star_sim::{SimReport, Simulation};

use crate::budget::SimBudget;
use crate::scenario::{OperatingPoint, Scenario};

/// Backend-specific diagnostics attached to a [`PointEstimate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EstimateDetail {
    /// The full analytical-model result (fixed-point iterations,
    /// multiplexing degree, waiting times, …).
    Model(ModelResult),
    /// The full simulation report (cycles, confidence interval, observed
    /// multiplexing, …).
    Sim(Box<SimReport>),
}

/// What an [`Evaluator`] answers for one operating point: the common headline
/// quantities plus the backend's full diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointEstimate {
    /// The operating point that was evaluated.
    pub point: OperatingPoint,
    /// Name of the backend that produced the estimate (`"model"` / `"sim"`).
    pub backend: String,
    /// Whether the backend declared the point beyond saturation.
    pub saturated: bool,
    /// Mean message latency in cycles (infinite when saturated).
    pub mean_latency: f64,
    /// Backend diagnostics (solve iterations or simulation statistics).
    pub detail: EstimateDetail,
}

impl PointEstimate {
    /// The mean latency when the point is below saturation.
    #[must_use]
    pub fn latency(&self) -> Option<f64> {
        (!self.saturated).then_some(self.mean_latency)
    }

    /// The analytical-model result, if this estimate came from the model.
    #[must_use]
    pub fn model_result(&self) -> Option<&ModelResult> {
        match &self.detail {
            EstimateDetail::Model(r) => Some(r),
            EstimateDetail::Sim(_) => None,
        }
    }

    /// The simulation report, if this estimate came from the simulator.
    #[must_use]
    pub fn sim_report(&self) -> Option<&SimReport> {
        match &self.detail {
            EstimateDetail::Sim(r) => Some(r),
            EstimateDetail::Model(_) => None,
        }
    }

    /// Fixed-point iterations spent (model estimates only).
    #[must_use]
    pub fn iterations(&self) -> Option<usize> {
        self.model_result().map(|r| r.iterations)
    }

    /// The latency as a plottable value: infinite when saturated.
    #[must_use]
    pub fn latency_or_infinity(&self) -> f64 {
        self.latency().unwrap_or(f64::INFINITY)
    }

    /// Formats the latency for tables (`"saturated"` beyond saturation).
    #[must_use]
    pub fn latency_cell(&self) -> String {
        self.latency().map_or_else(|| "saturated".to_string(), |l| format!("{l:.1}"))
    }
}

/// A backend that can answer operating points: the analytical model
/// ([`ModelBackend`]), the flit-level simulator ([`SimBackend`]), or anything
/// else that can estimate a latency (future: the hypercube model, a learned
/// surrogate, a remote service).
///
/// Implementations must be [`Sync`] so a [`crate::SweepRunner`] can shard
/// points across threads.
pub trait Evaluator: Sync {
    /// Short backend name used in reports (`"model"`, `"sim"`).
    fn name(&self) -> &'static str;

    /// Whether this backend can evaluate the scenario at all.
    fn supports(&self, scenario: &Scenario) -> bool;

    /// Evaluates one operating point.
    ///
    /// # Panics
    /// May panic if [`Self::supports`] is false for the scenario or its
    /// parameters are out of range.
    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate;

    /// Evaluates one scenario across a whole rate sweep.  The default runs
    /// [`Self::evaluate`] independently per rate; backends with useful state
    /// to carry between rates (the model's warm-started fixed point)
    /// override it.
    fn evaluate_sweep(&self, scenario: &Scenario, rates: &[f64]) -> Vec<PointEstimate> {
        rates.iter().map(|&r| self.evaluate(&scenario.at(r))).collect()
    }

    /// Whether consecutive rates of one sweep must stay on one worker because
    /// [`Self::evaluate_sweep`] chains state between them.  A
    /// [`crate::SweepRunner`] shards whole sweeps (not points) across threads
    /// when this is true, keeping results identical for any thread count.
    fn chains_rates(&self) -> bool {
        false
    }
}

/// The analytical model as an [`Evaluator`]: microseconds per point, star
/// networks with the three modelled disciplines under uniform traffic.
#[derive(Debug, Clone)]
pub struct ModelBackend {
    /// Warm-start each rate of a sweep from the previous rate's converged
    /// fixed point (on by default; matches cold starts to solver tolerance).
    pub warm_start: bool,
}

impl Default for ModelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBackend {
    /// A warm-starting model backend (the default).
    #[must_use]
    pub fn new() -> Self {
        Self { warm_start: true }
    }

    /// A backend that solves every rate from the cold zero-load state
    /// (for iteration-count comparisons and benchmarks).
    #[must_use]
    pub fn cold() -> Self {
        Self { warm_start: false }
    }

    fn estimate(
        &self,
        point: &OperatingPoint,
        spectrum: &Arc<DestinationSpectrum>,
        warm_state: &[f64],
    ) -> PointEstimate {
        let config = point
            .scenario
            .model_config(point.traffic_rate)
            .unwrap_or_else(|e| panic!("invalid model scenario {}: {e}", point.scenario.label()))
            .unwrap_or_else(|| {
                panic!(
                    "the analytical model does not cover scenario {} \
                     (star network, enhanced-nbc/nbc/nhop, uniform traffic only)",
                    point.scenario.label()
                )
            });
        let result =
            AnalyticalModel::with_spectrum(config, Arc::clone(spectrum)).solve_from(warm_state);
        PointEstimate {
            point: *point,
            backend: self.name().to_string(),
            saturated: result.saturated,
            mean_latency: result.mean_latency,
            detail: EstimateDetail::Model(result),
        }
    }
}

impl Evaluator for ModelBackend {
    fn name(&self) -> &'static str {
        "model"
    }

    fn supports(&self, scenario: &Scenario) -> bool {
        matches!(scenario.model_config(0.0), Ok(Some(_)))
    }

    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        let spectrum = Arc::new(DestinationSpectrum::new(point.scenario.size));
        self.estimate(point, &spectrum, &[])
    }

    fn evaluate_sweep(&self, scenario: &Scenario, rates: &[f64]) -> Vec<PointEstimate> {
        let spectrum = Arc::new(DestinationSpectrum::new(scenario.size));
        let mut warm_state: Vec<f64> = Vec::new();
        rates
            .iter()
            .map(|&rate| {
                let estimate = self.estimate(&scenario.at(rate), &spectrum, &warm_state);
                if self.warm_start {
                    if let EstimateDetail::Model(r) = &estimate.detail {
                        // saturated points leave a non-finite seed, which
                        // solve_from ignores in favour of the cold start
                        warm_state = vec![r.mean_network_latency];
                    }
                }
                estimate
            })
            .collect()
    }

    fn chains_rates(&self) -> bool {
        self.warm_start
    }
}

/// The flit-level simulator as an [`Evaluator`]: seconds per point, any
/// topology and discipline the simulator supports.
#[derive(Debug, Clone)]
pub struct SimBackend {
    /// Simulation effort per operating point.
    pub budget: SimBudget,
    /// RNG seed; the same seed is used at every point of a sweep (matching
    /// the paper's methodology), so replicate sweeps differ only by seed.
    pub seed: u64,
}

impl SimBackend {
    /// A simulator backend with the given effort budget and seed.
    #[must_use]
    pub fn new(budget: SimBudget, seed: u64) -> Self {
        Self { budget, seed }
    }
}

impl Evaluator for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn supports(&self, _scenario: &Scenario) -> bool {
        true
    }

    fn evaluate(&self, point: &OperatingPoint) -> PointEstimate {
        let scenario = &point.scenario;
        let topology = scenario.topology();
        let routing = scenario.discipline.routing(topology.as_ref(), scenario.virtual_channels);
        let config = self.budget.apply(scenario.message_length, point.traffic_rate, self.seed);
        let report = Simulation::new(topology, routing, config, scenario.pattern).run();
        PointEstimate {
            point: *point,
            backend: self.name().to_string(),
            saturated: report.saturated,
            // keep the headline field's contract backend-agnostic: infinite
            // beyond saturation (the partial measurement stays in the report)
            mean_latency: if report.saturated {
                f64::INFINITY
            } else {
                report.mean_message_latency
            },
            detail: EstimateDetail::Sim(Box::new(report)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Discipline;

    fn s4() -> Scenario {
        Scenario::star(4).with_message_length(16)
    }

    #[test]
    fn model_backend_answers_star_scenarios() {
        let backend = ModelBackend::new();
        assert!(backend.supports(&s4()));
        let estimate = backend.evaluate(&s4().at(0.004));
        assert_eq!(estimate.backend, "model");
        assert!(!estimate.saturated);
        assert!(estimate.latency().unwrap() > 16.0);
        assert!(estimate.iterations().unwrap() > 0);
        assert!(estimate.sim_report().is_none());
    }

    #[test]
    fn model_backend_rejects_unmodelled_scenarios() {
        let backend = ModelBackend::new();
        assert!(!backend.supports(&Scenario::hypercube(4)));
        assert!(!backend.supports(&s4().with_discipline(Discipline::Deterministic)));
        // too few virtual channels is a ConfigError, not a supported scenario
        assert!(!backend.supports(&s4().with_virtual_channels(3)));
    }

    #[test]
    #[should_panic(expected = "does not cover scenario")]
    fn model_backend_panics_on_unsupported_evaluate() {
        let _ = ModelBackend::new().evaluate(&Scenario::hypercube(3).at(0.001));
    }

    #[test]
    fn warm_started_sweep_matches_independent_evaluations() {
        let backend = ModelBackend::new();
        let scenario = s4();
        let rates = [0.002, 0.008, 0.014];
        let swept = backend.evaluate_sweep(&scenario, &rates);
        assert!(backend.chains_rates());
        assert!(!ModelBackend::cold().chains_rates());
        for (est, &rate) in swept.iter().zip(&rates) {
            let solo = backend.evaluate(&scenario.at(rate));
            assert_eq!(est.saturated, solo.saturated);
            if !est.saturated {
                let rel = (est.mean_latency - solo.mean_latency).abs() / solo.mean_latency;
                assert!(rel < 1e-9, "rate {rate}: sweep vs solo differ by {rel}");
            }
        }
    }

    #[test]
    fn sim_backend_answers_any_scenario_deterministically() {
        let backend = SimBackend::new(SimBudget::Quick, 9);
        assert!(backend.supports(&Scenario::hypercube(3)));
        let point = s4().at(0.004);
        let a = backend.evaluate(&point);
        let b = backend.evaluate(&point);
        assert_eq!(a.backend, "sim");
        assert!(!a.saturated);
        assert_eq!(a, b, "same seed must reproduce the same report");
        let report = a.sim_report().unwrap();
        assert_eq!(report.virtual_channels, 6);
        assert!(a.model_result().is_none());
        assert!(a.iterations().is_none());
    }

    #[test]
    fn model_and_sim_agree_at_light_load() {
        let point = s4().at(0.004);
        let model = ModelBackend::new().evaluate(&point);
        let sim = SimBackend::new(SimBudget::Quick, 1).evaluate(&point);
        assert!(!model.saturated && !sim.saturated);
        let err = (model.mean_latency - sim.mean_latency).abs() / sim.mean_latency;
        assert!(
            err < 0.25,
            "model {} vs sim {} differ by {err}",
            model.mean_latency,
            sim.mean_latency
        );
    }

    #[test]
    fn latency_cell_formats_saturation() {
        let backend = ModelBackend::new();
        let fine = backend.evaluate(&s4().at(0.004));
        assert!(fine.latency_cell().parse::<f64>().is_ok());
        let sat = backend.evaluate(&s4().at(0.5));
        assert!(sat.saturated);
        assert_eq!(sat.latency_cell(), "saturated");
        assert!(sat.latency().is_none());
        assert!(sat.latency_or_infinity().is_infinite());
    }
}
